"""Storage substrate: the per-iod disk, local file store, and the
iod node's OS page cache.

The paper's iod daemons store stripe data in files on a local ext2
filesystem (20 GB Maxtor IDE disks, circa 2002).  Three pieces model
that stack:

* :class:`~repro.disk.model.DiskModel` — mechanical timing: seek +
  rotational latency for non-sequential accesses, media transfer rate,
  FIFO queueing of concurrent requests.
* :class:`~repro.disk.queued.QueuedDiskModel` — the analytic
  alternative: the spindle as a computed FIFO queue, O(batches) events
  instead of O(requests); selected via ``ClusterConfig.disk_model``.
* :class:`~repro.disk.filesystem.LocalFileStore` — the data authority:
  an in-memory block store holding the actual bytes, so end-to-end
  read-your-writes correctness is testable through every cache path.
* :class:`~repro.disk.pagecache.PageCache` — the iod node's OS page
  cache.  Even the *no-caching* PVFS baseline benefits from it (reads
  that hit server memory skip the disk), which is essential to
  reproduce the paper's network-bound baseline curves.
"""

from repro.disk.filesystem import LocalFileStore
from repro.disk.model import DiskModel
from repro.disk.pagecache import PageCache
from repro.disk.queued import QueuedDiskModel

__all__ = ["DiskModel", "LocalFileStore", "PageCache", "QueuedDiskModel"]
