"""The iod's local block store: the data authority of the simulation.

Purely functional (no simulated time): timing is charged by
:class:`~repro.disk.model.DiskModel`; this class answers *what bytes
live where* so correctness is checkable end to end.

Blocks are fixed-size (the PVFS stripe fragments are addressed here in
cache-block units, 4 KB by default, matching the paper).  A block that
was never written reads back as zeros, like a sparse file.
"""

from __future__ import annotations

BLOCK_SIZE = 4096


class LocalFileStore:
    """Block-addressed storage for one iod."""

    def __init__(self, block_size: int = BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        # Full-block payloads stay immutable ``bytes``; a block that
        # has seen a partial patch is promoted to a ``bytearray`` once
        # and patched in place from then on (the zero-copy write path).
        self._blocks: dict[tuple[int, int], bytes | bytearray] = {}

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def write_block(self, file_id: int, block_no: int, data: bytes | None) -> None:
        """Store one block.

        ``data=None`` marks a size-only write (performance workloads
        that do not carry payloads); it still allocates the block so
        existence checks behave identically.
        """
        if data is not None:
            if len(data) > self.block_size:
                raise ValueError(
                    f"block payload of {len(data)} exceeds block size "
                    f"{self.block_size}"
                )
            if len(data) < self.block_size:
                data = data + b"\x00" * (self.block_size - len(data))
        self._blocks[(file_id, block_no)] = (
            data if data is not None else b""
        )

    def read_block(self, file_id: int, block_no: int) -> bytes:
        """Fetch one block; unwritten blocks read as zeros."""
        data = self._blocks.get((file_id, block_no))
        if not data:
            return b"\x00" * self.block_size
        # Never hand out the internal mutable buffer.
        return bytes(data) if isinstance(data, bytearray) else data

    def read_range(self, file_id: int, offset: int, nbytes: int) -> bytes:
        """Assemble ``[offset, offset+nbytes)`` into one buffer.

        The zero-copy read path: one output ``bytearray`` is allocated
        and block payloads land in it through ``memoryview`` slice
        assignment — no per-block ``bytes`` temporaries, no final
        ``join``.  Unwritten and size-only blocks read as zeros (the
        buffer starts zeroed, so they cost nothing at all).
        """
        if nbytes == 0:
            return b""
        block_size = self.block_size
        out = bytearray(nbytes)
        view = memoryview(out)
        blocks = self._blocks
        for block in blocks_spanned(offset, nbytes, block_size):
            data = blocks.get((file_id, block))
            if not data:
                continue
            start, length = slice_for_block(offset, nbytes, block, block_size)
            pos = block * block_size + start - offset
            view[pos : pos + length] = memoryview(data)[start : start + length]
        view.release()
        return bytes(out)

    def write_range(
        self, file_id: int, offset: int, nbytes: int, data: bytes | None
    ) -> None:
        """Patch ``[offset, offset+nbytes)`` with ``data`` in one pass.

        ``data=None`` is the size-only write: missing blocks are
        allocated, existing payloads are left untouched.  With a
        payload, full blocks are replaced outright and partial blocks
        are patched in place on a ``bytearray`` — no
        ``old[:start] + piece + old[start+length:]`` triple copy.
        """
        if nbytes == 0:
            return
        block_size = self.block_size
        blocks = self._blocks
        if data is None:
            for block in blocks_spanned(offset, nbytes, block_size):
                key = (file_id, block)
                if key not in blocks:
                    blocks[key] = b""
            return
        if len(data) < nbytes:
            # Short payloads (never produced by the protocol layer, but
            # tolerated like the block-at-a-time path did) zero-fill.
            data = bytes(data) + b"\x00" * (nbytes - len(data))
        src = memoryview(data)
        for block in blocks_spanned(offset, nbytes, block_size):
            start, length = slice_for_block(offset, nbytes, block, block_size)
            pos = block * block_size + start - offset
            piece = src[pos : pos + length]
            key = (file_id, block)
            if length == block_size:
                blocks[key] = bytes(piece)
                continue
            old = blocks.get(key)
            if isinstance(old, bytearray):
                buf = old  # already mutable: patch in place, zero copies
            elif old:
                buf = bytearray(old)
            else:
                buf = bytearray(block_size)
            buf[start : start + length] = piece
            blocks[key] = buf
        src.release()

    def has_block(self, file_id: int, block_no: int) -> bool:
        """True if the block was ever written."""
        return (file_id, block_no) in self._blocks

    def blocks_of(self, file_id: int) -> list[int]:
        """Sorted block numbers present for ``file_id``."""
        return sorted(b for (f, b) in self._blocks if f == file_id)

    def delete_file(self, file_id: int) -> int:
        """Drop all blocks of ``file_id``; returns how many were dropped."""
        victims = [k for k in self._blocks if k[0] == file_id]
        for key in victims:
            del self._blocks[key]
        return len(victims)


def blocks_spanned(
    offset: int, nbytes: int, block_size: int = BLOCK_SIZE
) -> range:
    """Block numbers touched by a byte range ``[offset, offset+nbytes)``."""
    if offset < 0 or nbytes < 0:
        raise ValueError(f"invalid range offset={offset} nbytes={nbytes}")
    if nbytes == 0:
        return range(0)
    first = offset // block_size
    last = (offset + nbytes - 1) // block_size
    return range(first, last + 1)


def slice_for_block(
    offset: int,
    nbytes: int,
    block_no: int,
    block_size: int = BLOCK_SIZE,
) -> tuple[int, int]:
    """Overlap of ``[offset, offset+nbytes)`` with ``block_no``.

    Returns ``(start_within_block, length)``; length may be zero when
    the request does not touch the block.
    """
    block_start = block_no * block_size
    lo = max(offset, block_start)
    hi = min(offset + nbytes, block_start + block_size)
    if hi <= lo:
        return (0, 0)
    return (lo - block_start, hi - lo)
