"""The iod node's OS page cache (timing-only LRU).

The paper's iods issue plain filesystem calls, so Linux's page cache
sits under them.  This is why the *no-caching* PVFS baseline is
network-bound (not disk-bound) once a file's working set has been read
once — a property several of the paper's figures depend on.

This cache tracks only *which* blocks are memory-resident; the bytes
themselves live in :class:`~repro.disk.filesystem.LocalFileStore`.
"""

from __future__ import annotations

from collections import OrderedDict


class PageCache:
    """Exact-LRU set of ``(file_id, block_no)`` keys."""

    def __init__(self, capacity_blocks: int = 16384) -> None:
        if capacity_blocks < 0:
            raise ValueError(f"negative capacity {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self._lru: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._lru)

    def lookup(self, file_id: int, block_no: int) -> bool:
        """Check residency and update recency; counts hit/miss."""
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, file_id: int, block_no: int) -> None:
        """Make a block resident, evicting the LRU block if full."""
        if self.capacity_blocks == 0:
            return
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            return
        while len(self._lru) >= self.capacity_blocks:
            self._lru.popitem(last=False)
        self._lru[key] = None

    def contains(self, file_id: int, block_no: int) -> bool:
        """Residency probe without recency update or counters."""
        return (file_id, block_no) in self._lru

    def invalidate(self, file_id: int, block_no: int) -> bool:
        """Drop a block (e.g. on file deletion); True if it was present."""
        sentinel = object()
        return self._lru.pop((file_id, block_no), sentinel) is not sentinel

    @property
    def hit_ratio(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
