"""The iod node's OS page cache (timing-only LRU).

The paper's iods issue plain filesystem calls, so Linux's page cache
sits under them.  This is why the *no-caching* PVFS baseline is
network-bound (not disk-bound) once a file's working set has been read
once — a property several of the paper's figures depend on.

This cache tracks only *which* blocks are memory-resident; the bytes
themselves live in :class:`~repro.disk.filesystem.LocalFileStore`.
"""

from __future__ import annotations

import typing as _t
from collections import OrderedDict


class PageCache:
    """Exact-LRU set of ``(file_id, block_no)`` keys."""

    def __init__(self, capacity_blocks: int = 16384) -> None:
        if capacity_blocks < 0:
            raise ValueError(f"negative capacity {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self._lru: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._lru)

    def lookup(self, file_id: int, block_no: int) -> bool:
        """Check residency and update recency; counts hit/miss."""
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def lookup_many(
        self, file_id: int, block_nos: _t.Iterable[int]
    ) -> tuple[int, list[tuple[int, int]]]:
        """Probe a whole request's blocks in one pass.

        Returns ``(hits, missing_runs)`` where ``missing_runs``
        coalesces consecutive missing block numbers into
        ``(first_block, n_blocks)`` disk-run candidates.  Exactly like
        per-block :meth:`lookup` calls followed by the caller
        coalescing: recency and the hit/miss counters update per
        block, and a non-consecutive (or repeated) missing block
        closes the current run.
        """
        lru = self._lru
        move = lru.move_to_end
        hits = 0
        misses = 0
        runs: list[tuple[int, int]] = []
        run_start: int | None = None
        prev = 0
        for block in block_nos:
            key = (file_id, block)
            if key in lru:
                move(key)
                hits += 1
                continue
            misses += 1
            if run_start is None:
                run_start = prev = block
            elif block == prev + 1:
                prev = block
            else:
                runs.append((run_start, prev - run_start + 1))
                run_start = prev = block
        if run_start is not None:
            runs.append((run_start, prev - run_start + 1))
        self.hits += hits
        self.misses += misses
        return hits, runs

    def insert(self, file_id: int, block_no: int) -> None:
        """Make a block resident, evicting the LRU block if full."""
        if self.capacity_blocks == 0:
            return
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            return
        while len(self._lru) >= self.capacity_blocks:
            self._lru.popitem(last=False)
        self._lru[key] = None

    def insert_many(
        self, file_id: int, first_block: int, n_blocks: int
    ) -> None:
        """Make a run of ``n_blocks`` consecutive blocks resident.

        Bulk :meth:`insert`: existing blocks refresh recency, new ones
        evict from the LRU end while the cache is full, and a
        zero-capacity cache retains nothing (runs larger than the
        capacity leave only the run's tail resident, matching the
        per-block insertion order).
        """
        if self.capacity_blocks == 0 or n_blocks <= 0:
            return
        lru = self._lru
        capacity = self.capacity_blocks
        for block in range(first_block, first_block + n_blocks):
            key = (file_id, block)
            if key in lru:
                lru.move_to_end(key)
                continue
            while len(lru) >= capacity:
                lru.popitem(last=False)
            lru[key] = None

    def contains(self, file_id: int, block_no: int) -> bool:
        """Residency probe without recency update or counters."""
        return (file_id, block_no) in self._lru

    def invalidate(self, file_id: int, block_no: int) -> bool:
        """Drop a block (e.g. on file deletion); True if it was present."""
        sentinel = object()
        return self._lru.pop((file_id, block_no), sentinel) is not sentinel

    @property
    def hit_ratio(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
