"""Mechanical disk timing model."""

from __future__ import annotations

import typing as _t

from repro.sim import Environment, Resource


class DiskModel:
    """A single spindle with FIFO request service.

    Timing follows the classic decomposition: a request pays seek +
    rotational latency unless it is *sequential* (starts exactly where
    the previous request on the same file ended), plus media transfer
    time proportional to its size.  Defaults approximate a 2002-era
    5400 RPM IDE disk (Maxtor, as in the paper's testbed).
    """

    def __init__(
        self,
        env: Environment,
        avg_seek_s: float = 8.5e-3,
        half_rotation_s: float = 5.6e-3,
        transfer_bytes_per_s: float = 20e6,
    ) -> None:
        if transfer_bytes_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        self.env = env
        self.avg_seek_s = float(avg_seek_s)
        self.half_rotation_s = float(half_rotation_s)
        self.transfer_bytes_per_s = float(transfer_bytes_per_s)
        self._spindle = Resource(env, capacity=1)
        #: (file_id -> end offset of the last access) for sequential
        #: run detection.
        self._head_pos: dict[int, int] = {}
        self._last_file: int | None = None
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0

    def is_sequential(self, file_id: int, offset: int) -> bool:
        """Would an access at ``offset`` continue the previous one?"""
        return (
            self._last_file == file_id
            and self._head_pos.get(file_id) == offset
        )

    def access_time(self, nbytes: int, sequential: bool) -> float:
        """Service time for one request, excluding queueing."""
        positioning = 0.0 if sequential else (
            self.avg_seek_s + self.half_rotation_s
        )
        return positioning + nbytes / self.transfer_bytes_per_s

    def io(
        self, file_id: int, offset: int, nbytes: int, write: bool
    ) -> _t.Generator:
        """Process body: perform one disk request (queue + service)."""
        if nbytes < 0:
            raise ValueError(f"negative I/O size {nbytes}")
        with self._spindle.request() as req:
            yield req
            sequential = self.is_sequential(file_id, offset)
            if not sequential:
                self.seeks += 1
            yield self.env.timeout(self.access_time(nbytes, sequential))
            self._head_pos[file_id] = offset + nbytes
            self._last_file = file_id
        if write:
            self.writes += 1
            self.bytes_written += nbytes
        else:
            self.reads += 1
            self.bytes_read += nbytes

    @property
    def queue_length(self) -> int:
        """Requests waiting for the spindle."""
        return self._spindle.queue_length
