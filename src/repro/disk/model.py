"""Mechanical disk timing model."""

from __future__ import annotations

import typing as _t

from repro.sim import Environment, Resource


class DiskModel:
    """A single spindle with FIFO request service.

    Timing follows the classic decomposition: a request pays seek +
    rotational latency unless it is *sequential* (starts exactly where
    the previous request on the same file ended), plus media transfer
    time proportional to its size.  Defaults approximate a 2002-era
    5400 RPM IDE disk (Maxtor, as in the paper's testbed).
    """

    #: Whether :meth:`io_batch` services a run list as one analytic
    #: queue entry (:class:`~repro.disk.queued.QueuedDiskModel`) or
    #: replays the validated per-request schedule (this class).
    batched: _t.ClassVar[bool] = False

    def __init__(
        self,
        env: Environment,
        avg_seek_s: float = 8.5e-3,
        half_rotation_s: float = 5.6e-3,
        transfer_bytes_per_s: float = 20e6,
    ) -> None:
        if transfer_bytes_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        self.env = env
        self.avg_seek_s = float(avg_seek_s)
        self.half_rotation_s = float(half_rotation_s)
        self.transfer_bytes_per_s = float(transfer_bytes_per_s)
        self._spindle = Resource(env, capacity=1)
        # Sequential-run detection only ever consults the *last*
        # access (a new file in between moves the head away), so the
        # head state is two scalars — not the per-file dict it once
        # was, which grew one entry per file touched and was never
        # pruned (a leak on long multi-file sweeps).
        self._last_file: int | None = None
        self._last_end: int = 0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0

    def is_sequential(self, file_id: int, offset: int) -> bool:
        """Would an access at ``offset`` continue the previous one?"""
        return self._last_file == file_id and self._last_end == offset

    def access_time(self, nbytes: int, sequential: bool) -> float:
        """Service time for one request, excluding queueing."""
        positioning = 0.0 if sequential else (
            self.avg_seek_s + self.half_rotation_s
        )
        return positioning + nbytes / self.transfer_bytes_per_s

    def io(
        self, file_id: int, offset: int, nbytes: int, write: bool
    ) -> _t.Generator:
        """Process body: perform one disk request (queue + service)."""
        if nbytes < 0:
            raise ValueError(f"negative I/O size {nbytes}")
        with self._spindle.request() as req:
            yield req
            sequential = self.is_sequential(file_id, offset)
            if not sequential:
                self.seeks += 1
            yield self.env.timeout(self.access_time(nbytes, sequential))
            self._last_file = file_id
            self._last_end = offset + nbytes
        if write:
            self.writes += 1
            self.bytes_written += nbytes
        else:
            self.reads += 1
            self.bytes_read += nbytes

    def io_batch(
        self,
        file_id: int,
        runs: _t.Sequence[tuple[int, int]],
        write: bool = False,
        on_run_complete: _t.Callable[[int], None] | None = None,
    ) -> _t.Generator:
        """Process body: service a coalesced run list
        ``[(offset, nbytes), ...]`` against one file.

        This is the model seam the iod's miss path drives
        (:meth:`repro.pvfs.iod.Iod._ensure_resident`):
        ``on_run_complete(i)`` is invoked as run ``i``'s data lands,
        which is where the caller populates its page cache.

        The mechanical model deliberately replays the *request-level*
        schedule it always had — one spindle acquisition per run, so
        concurrent requests (e.g. the writeback daemon) interleave
        between runs exactly as before and same-seed trace hashes stay
        bit-identical to the pre-batch code.  Analytic subclasses
        (``batched = True``) instead service the whole list as a single
        queue entry with one computed service time.
        """
        for index, (offset, nbytes) in enumerate(runs):
            yield self.env.process(self.io(file_id, offset, nbytes, write))
            if on_run_complete is not None:
                on_run_complete(index)

    @property
    def queue_length(self) -> int:
        """Requests waiting for the spindle."""
        return self._spindle.queue_length
