"""Analytic queued disk model: the storage-layer fluid analogue.

The mechanical model (:class:`~repro.disk.model.DiskModel`) simulates
the spindle as a capacity-1 :class:`~repro.sim.Resource`: every
request costs a process spawn, a resource acquire, a service timeout,
and a release — four heap events plus generator round-trips, O(requests)
in total.  Cache-aware analytic storage models (CAWL; Do et al.'s
page-cache model) show that disk service times can be *computed*
rather than simulated without losing accuracy, the same trade the
fluid network model (DESIGN.md §12) makes one layer up.

:class:`QueuedDiskModel` models the spindle as an analytic FIFO
queue.  A whole coalesced run list (one :meth:`io_batch` call) becomes
a single queue entry: its service time is computed in one pass with
the same seek/rotation/transfer decomposition the mechanical model
charges, its start time is the queue's ``busy-until`` horizon, and one
shared reschedulable :class:`~repro.sim.events.Timer` fires at batch
completions — O(batches) events, no Resource or per-request process.

Divergence from the mechanical model (DESIGN.md §13): a batch is
serviced *atomically*.  The mechanical model re-acquires the spindle
per run, so a concurrent request can interleave between the runs of a
batch and steal the earlier service slot.  FIFO order, total service
demand, and sequential-run detection are otherwise identical, so
makespans of order-insensitive workloads match exactly and contended
per-request completions differ by at most a batch's service time.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.disk.model import DiskModel
from repro.sim import Environment, Event, Timer


class QueuedDiskModel(DiskModel):
    """Analytic FIFO spindle queue with batched service.

    Accepts the same constructor parameters and exposes the same
    counters, :meth:`io`, and :meth:`io_batch` surface as the
    mechanical model, so it is a drop-in behind the
    ``ClusterConfig.disk_model`` seam.
    """

    batched: _t.ClassVar[bool] = True

    def __init__(
        self,
        env: Environment,
        avg_seek_s: float = 8.5e-3,
        half_rotation_s: float = 5.6e-3,
        transfer_bytes_per_s: float = 20e6,
    ) -> None:
        super().__init__(
            env,
            avg_seek_s=avg_seek_s,
            half_rotation_s=half_rotation_s,
            transfer_bytes_per_s=transfer_bytes_per_s,
        )
        #: Simulated time the spindle finishes everything admitted so
        #: far; a batch arriving later than this starts immediately.
        self._busy_until = 0.0
        #: Admitted batches in service order: (finish time, event).
        #: FIFO admission makes the finish times monotone, so the head
        #: is always the next completion.
        self._fifo: deque[tuple[float, Event]] = deque()
        self._timer: Timer = env.timer(self._on_timer)

    def io(
        self, file_id: int, offset: int, nbytes: int, write: bool
    ) -> _t.Generator:
        """Process body: one request is a one-run batch."""
        yield from self.io_batch(file_id, ((offset, nbytes),), write)

    def io_batch(
        self,
        file_id: int,
        runs: _t.Sequence[tuple[int, int]],
        write: bool = False,
        on_run_complete: _t.Callable[[int], None] | None = None,
    ) -> _t.Generator:
        """Process body: service ``runs`` as one analytic queue entry.

        Seek accounting happens at admission, in arrival order — which
        is also FIFO service order, so the head-position evolution
        matches what the mechanical spindle would compute request by
        request.  ``on_run_complete(i)`` fires for every run when the
        batch's last byte is transferred (data is resident only once
        the I/O completes).
        """
        service = 0.0
        total = 0
        for offset, nbytes in runs:
            if nbytes < 0:
                raise ValueError(f"negative I/O size {nbytes}")
            sequential = self.is_sequential(file_id, offset)
            if not sequential:
                self.seeks += 1
            service += self.access_time(nbytes, sequential)
            self._last_file = file_id
            self._last_end = offset + nbytes
            total += nbytes
        now = self.env.now
        start = self._busy_until if self._busy_until > now else now
        finish = start + service
        self._busy_until = finish
        done = Event(self.env)
        self._fifo.append((finish, done))
        if len(self._fifo) == 1:
            self._timer.arm_at(finish)
        yield done
        if write:
            self.writes += len(runs)
            self.bytes_written += total
        else:
            self.reads += len(runs)
            self.bytes_read += total
        if on_run_complete is not None:
            for index in range(len(runs)):
                on_run_complete(index)

    def _on_timer(self, timer: Timer) -> None:
        """Complete every batch due now; re-arm for the next head."""
        now = self.env.now
        fifo = self._fifo
        while fifo and fifo[0][0] <= now:
            _finish, done = fifo.popleft()
            done.succeed()
        if fifo:
            timer.arm_at(fifo[0][0])

    @property
    def queue_length(self) -> int:
        """Batches waiting behind the one in service."""
        backlog = len(self._fifo) - 1
        return backlog if backlog > 0 else 0
