"""Asynchronous disk writeback (the iod node's pdflush).

PVFS iods write stripe data with ordinary ``write()`` calls: the bytes
land in the OS page cache and are acknowledged immediately; a kernel
writeback thread pushes them to the platter later.  Modelling this is
essential for the baseline's write latencies (network-bound, not
disk-bound) and for the flusher's effectiveness.

Backpressure: Linux throttles writers once dirty memory exceeds a
threshold; we do the same with ``max_dirty_bytes`` — enqueueing blocks
when the backlog is too large, which is how sustained writes degrade
to disk speed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.shared import shared_state
from repro.disk.model import DiskModel
from repro.sim import Environment
from repro.svc import Service, handles

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node


@dataclasses.dataclass
class WritebackItem:
    file_id: int
    local_offset: int
    nbytes: int

    #: Dispatch key for the writeback service's mailbox.
    kind: _t.ClassVar[str] = "writeback"


@shared_state("dirty_bytes")
class WritebackDaemon(Service):
    """FIFO background writer over one disk.

    The daemon's work queue is its :class:`~repro.svc.Mailbox`;
    ``drain()`` waits until both the queue and the dirty-byte gauge hit
    zero, and a bare ``stop()`` reports queued items (and their bytes)
    as dropped.
    """

    def __init__(
        self,
        env: Environment,
        disk: DiskModel,
        max_dirty_bytes: int = 16 * 2**20,
        node: "Node | None" = None,
    ) -> None:
        if max_dirty_bytes <= 0:
            raise ValueError("max_dirty_bytes must be positive")
        name = f"writeback-{node.name}" if node is not None else "writeback"
        super().__init__(env, name, node=node)
        self.disk = disk
        self.max_dirty_bytes = max_dirty_bytes
        self.dirty_bytes = 0
        #: Fires (and is replaced) whenever dirty_bytes drops; writers
        #: blocked on the throttle wait on it.
        self._drained = env.event()
        self.items_written = 0
        self.bytes_written = 0
        self.throttle_waits = 0

    def _on_start(self) -> None:
        self.spawn(self._pump(), name=self.name)

    def submit(self, item: WritebackItem) -> _t.Generator:
        """Process body: enqueue a write, blocking on dirty throttle."""
        if item.nbytes < 0:
            raise ValueError(f"negative writeback size {item.nbytes}")
        while self.dirty_bytes + item.nbytes > self.max_dirty_bytes:
            self.throttle_waits += 1
            yield self._drained
        # Safe despite the yield above: the while condition re-reads
        # the gauge after every wakeup, so the increment never acts on
        # a stale reading.
        self.dirty_bytes += item.nbytes  # noqa: RPL100 - loop re-checks gauge
        yield self.mailbox.put(item)

    def _pump(self) -> _t.Generator:
        while True:
            item: WritebackItem = yield self.mailbox.get()
            yield from self.dispatch(item)

    @handles("writeback")
    def _handle_writeback(self, item: WritebackItem, endpoint=None) -> _t.Generator:
        if self.disk.batched:
            # Analytic models compute the wait inline — no point paying
            # a process spawn just to wait on a computed finish time.
            yield from self.disk.io(
                item.file_id, item.local_offset, item.nbytes, write=True
            )
        else:
            yield self.env.process(
                self.disk.io(
                    item.file_id, item.local_offset, item.nbytes, write=True
                )
            )
        self.dirty_bytes -= item.nbytes
        self.items_written += 1
        self.bytes_written += item.nbytes
        drained, self._drained = self._drained, self.env.event()
        if not drained.triggered:
            drained.succeed()

    def _drain(self) -> _t.Generator:
        """Wait for the backlog and dirty gauge to empty."""
        while not self.idle():
            yield self._drained

    def _dropped(self) -> dict[str, int]:
        return {
            "queued_items": self.backlog,
            "dirty_bytes": self.dirty_bytes,
        }

    @property
    def backlog(self) -> int:
        """Queued writeback items."""
        return len(self.mailbox)

    def idle(self) -> bool:
        """True when nothing is queued or dirty."""
        return self.backlog == 0 and self.dirty_bytes == 0
