"""Asynchronous disk writeback (the iod node's pdflush).

PVFS iods write stripe data with ordinary ``write()`` calls: the bytes
land in the OS page cache and are acknowledged immediately; a kernel
writeback thread pushes them to the platter later.  Modelling this is
essential for the baseline's write latencies (network-bound, not
disk-bound) and for the flusher's effectiveness.

Backpressure: Linux throttles writers once dirty memory exceeds a
threshold; we do the same with ``max_dirty_bytes`` — enqueueing blocks
when the backlog is too large, which is how sustained writes degrade
to disk speed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.disk.model import DiskModel
from repro.sim import Environment, Process, Store


@dataclasses.dataclass
class WritebackItem:
    file_id: int
    local_offset: int
    nbytes: int


class WritebackDaemon:
    """FIFO background writer over one disk."""

    def __init__(
        self,
        env: Environment,
        disk: DiskModel,
        max_dirty_bytes: int = 16 * 2**20,
    ) -> None:
        if max_dirty_bytes <= 0:
            raise ValueError("max_dirty_bytes must be positive")
        self.env = env
        self.disk = disk
        self.max_dirty_bytes = max_dirty_bytes
        self._queue: Store = Store(env)
        self.dirty_bytes = 0
        #: Fires (and is replaced) whenever dirty_bytes drops; writers
        #: blocked on the throttle wait on it.
        self._drained = env.event()
        self._proc: Process | None = None
        self.items_written = 0
        self.bytes_written = 0
        self.throttle_waits = 0

    def start(self) -> None:
        """Spawn the background writer (idempotent)."""
        if self._proc is None:
            self._proc = self.env.process(self._loop(), name="writeback")

    def submit(self, item: WritebackItem) -> _t.Generator:
        """Process body: enqueue a write, blocking on dirty throttle."""
        if item.nbytes < 0:
            raise ValueError(f"negative writeback size {item.nbytes}")
        while self.dirty_bytes + item.nbytes > self.max_dirty_bytes:
            self.throttle_waits += 1
            yield self._drained
        self.dirty_bytes += item.nbytes
        yield self._queue.put(item)

    def _loop(self) -> _t.Generator:
        while True:
            item: WritebackItem = yield self._queue.get()
            yield self.env.process(
                self.disk.io(
                    item.file_id, item.local_offset, item.nbytes, write=True
                )
            )
            self.dirty_bytes -= item.nbytes
            self.items_written += 1
            self.bytes_written += item.nbytes
            drained, self._drained = self._drained, self.env.event()
            if not drained.triggered:
                drained.succeed()

    @property
    def backlog(self) -> int:
        """Queued writeback items."""
        return len(self._queue)

    def idle(self) -> bool:
        """True when nothing is queued or dirty."""
        return self.backlog == 0 and self.dirty_bytes == 0
