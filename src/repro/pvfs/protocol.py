"""Wire protocol between libpvfs, the cache module, mgr and the iods.

Request payloads are plain dataclasses; :class:`~repro.net.message.Message`
carries them with an explicit ``size_bytes`` so the timing model sees
realistic wire sizes regardless of the Python object shapes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

# -- message kinds -------------------------------------------------------
MGR_OPEN = "mgr.open"
MGR_OPEN_ACK = "mgr.open.ack"
MGR_STAT = "mgr.stat"
MGR_STAT_ACK = "mgr.stat.ack"
MGR_UNLINK = "mgr.unlink"
MGR_UNLINK_ACK = "mgr.unlink.ack"
MGR_LIST = "mgr.list"
MGR_LIST_ACK = "mgr.list.ack"

IOD_READ = "iod.read"
IOD_READ_ACK = "iod.read.ack"
IOD_DATA = "iod.data"
IOD_WRITE = "iod.write"
IOD_WRITE_ACK = "iod.write.ack"
IOD_SYNC_WRITE = "iod.sync-write"
IOD_SYNC_ACK = "iod.sync-write.ack"

FLUSH = "cache.flush"
FLUSH_ACK = "cache.flush.ack"
INVALIDATE = "cache.invalidate"
INVALIDATE_ACK = "cache.invalidate.ack"

GCACHE_LOOKUP = "gcache.lookup"
GCACHE_REPLY = "gcache.reply"

#: Header bytes charged per (offset, nbytes) range in a request.
RANGE_DESC_BYTES = 32
#: Bytes charged per block id in an invalidation.
BLOCK_ID_BYTES = 16
ACK_BYTES = 32
OPEN_REQ_BYTES = 128
OPEN_ACK_BYTES = 256


Range = tuple[int, int]  # (offset, nbytes), logical file coordinates


def mgr_shard_of(path: str, n_shards: int) -> int:
    """Which metadata shard owns ``path``.

    Routing hashes the path with BLAKE2b rather than Python's
    ``hash()``: string hashing is salted per interpreter, and the
    shard a file lands on decides which packets cross the wire — a
    seed-dependent route would make the schedule trace hash
    irreproducible.  Every client and every shard computes the same
    map from the same wire-visible inputs, so no routing metadata
    travels.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one mgr shard, got {n_shards}")
    if n_shards == 1:
        return 0
    digest = hashlib.blake2b(path.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


def owning_mgr_shard(file_id: int, n_shards: int) -> int:
    """Which metadata shard allocated ``file_id``.

    Shard ``k`` hands out ids from ``count(k + 1, step=n_shards)``,
    so ownership is recoverable from the id alone — iods use this to
    partition their invalidation directories without extra wire
    fields.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one mgr shard, got {n_shards}")
    return (file_id - 1) % n_shards


@dataclasses.dataclass
class OpenRequest:
    path: str


@dataclasses.dataclass
class StatRequest:
    path: str


@dataclasses.dataclass
class StatReply:
    """Metadata the mgr returns for one path (None handle = absent)."""

    path: str
    handle: "FileHandle | None"


@dataclasses.dataclass
class UnlinkRequest:
    path: str


@dataclasses.dataclass
class UnlinkReply:
    path: str
    existed: bool


@dataclasses.dataclass
class ListReply:
    paths: list[str]

    def wire_size(self) -> int:
        """Bytes the directory listing occupies on the wire."""
        return sum(len(p) + 8 for p in self.paths) or ACK_BYTES


@dataclasses.dataclass(frozen=True)
class FileHandle:
    """What the mgr hands back on open: identity + physical layout."""

    file_id: int
    path: str
    iod_nodes: tuple[str, ...]
    stripe_size: int

    @property
    def n_iods(self) -> int:
        """Number of iods the file is striped over."""
        return len(self.iod_nodes)


@dataclasses.dataclass
class ReadRequest:
    file_id: int
    #: Contiguous logical byte ranges this iod must serve.
    ranges: list[Range]
    #: True when the request originates from a node's cache module
    #: (the iod then records the node in the block directory).
    from_cache: bool = False
    requester_node: str = ""
    #: Whether the response must carry real bytes (payload mode).
    want_data: bool = False

    @property
    def total_bytes(self) -> int:
        """Payload bytes requested."""
        return sum(n for _, n in self.ranges)

    def wire_size(self) -> int:
        """Bytes this request occupies on the wire."""
        return RANGE_DESC_BYTES * max(1, len(self.ranges))


@dataclasses.dataclass
class ReadData:
    """DATA response payload: one optional bytes chunk per range."""

    file_id: int
    ranges: list[Range]
    chunks: list[bytes | None]

    @property
    def total_bytes(self) -> int:
        """Payload bytes carried."""
        return sum(n for _, n in self.ranges)


@dataclasses.dataclass
class WriteRequest:
    file_id: int
    ranges: list[Range]
    #: One optional bytes chunk per range (``None`` in size-only mode).
    chunks: list[bytes | None]
    from_cache: bool = False
    requester_node: str = ""
    #: sync_write: write through and invalidate remote caches.
    sync: bool = False

    @property
    def total_bytes(self) -> int:
        """Payload bytes written."""
        return sum(n for _, n in self.ranges)

    def wire_size(self) -> int:
        """Bytes this request occupies on the wire."""
        return RANGE_DESC_BYTES * max(1, len(self.ranges)) + self.total_bytes


@dataclasses.dataclass
class FlushEntry:
    """One dirty fragment shipped by the client-side flusher."""

    file_id: int
    offset: int
    nbytes: int
    data: bytes | None


@dataclasses.dataclass
class FlushBatch:
    entries: list[FlushEntry]

    @property
    def total_bytes(self) -> int:
        """Payload bytes in the batch."""
        return sum(e.nbytes for e in self.entries)

    def wire_size(self) -> int:
        """Bytes this batch occupies on the wire."""
        return (
            RANGE_DESC_BYTES * max(1, len(self.entries)) + self.total_bytes
        )


@dataclasses.dataclass
class InvalidateRequest:
    file_id: int
    block_nos: list[int]

    def wire_size(self) -> int:
        """Bytes this request occupies on the wire."""
        return BLOCK_ID_BYTES * max(1, len(self.block_nos))


def coalesce_ranges(ranges: _t.Iterable[Range]) -> list[Range]:
    """Merge adjacent/overlapping ranges (sorted output).

    The client aggregates per-iod requests; merging keeps the per-range
    header cost honest and mirrors libpvfs's request aggregation.
    """
    ordered = sorted((r for r in ranges if r[1] > 0), key=lambda r: r[0])
    merged: list[Range] = []
    for off, n in ordered:
        if merged and off <= merged[-1][0] + merged[-1][1]:
            last_off, last_n = merged[-1]
            merged[-1] = (last_off, max(last_off + last_n, off + n) - last_off)
        else:
            merged.append((off, n))
    return merged
