"""The PVFS metadata server (``mgr``).

Serves ``open`` requests: path -> file id plus the stripe layout
clients need to address the iods.  The paper's cache deliberately does
**not** cache metadata ("they necessarily go to the meta-data
server"), so every open pays a round trip here — which makes the mgr
the system's serialization point under open-loop load.

The namespace can be hash-partitioned across ``n_shards`` instances
(DESIGN.md §18): shard ``k`` owns every path with
``protocol.mgr_shard_of(path, n_shards) == k`` and allocates file ids
from ``count(k + 1, step=n_shards)``, so ids stay globally unique and
a file's owning shard is recoverable from its id alone.  The default
``n_shards=1`` is exactly the paper's single mgr — same label, same
id sequence, bit-identical schedules.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.cluster.node import Node
from repro.metrics import Metrics
from repro.net import Message
from repro.pvfs import protocol
from repro.pvfs.protocol import FileHandle
from repro.svc import Service, handles


class MetadataServer(Service):
    """The mgr daemon."""

    def __init__(
        self,
        node: Node,
        iod_nodes: _t.Sequence[str],
        stripe_size: int,
        metrics: Metrics,
        port: int = 3000,
        shard_index: int = 0,
        n_shards: int = 1,
    ) -> None:
        if not (0 <= shard_index < n_shards):
            raise ValueError(
                f"shard_index {shard_index} out of range for "
                f"{n_shards} shard(s)"
            )
        # The single-shard label stays the bare "mgr" so default
        # clusters register, trace, and hash exactly as before.
        label = "mgr" if n_shards == 1 else f"mgr{shard_index}"
        super().__init__(node.env, label, node=node)
        self.iod_nodes = tuple(iod_nodes)
        self.stripe_size = stripe_size
        self.metrics = metrics
        self.port = port
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.request_cpu_s = node.costs.mgr_request_cpu_s
        self._file_ids = itertools.count(shard_index + 1, n_shards)
        self._by_path: dict[str, FileHandle] = {}

    def _on_start(self) -> None:
        self.serve(self.port)

    def lookup(self, path: str) -> FileHandle | None:
        """Direct (non-simulated) metadata inspection for tests."""
        return self._by_path.get(path)

    def _open(self, path: str) -> FileHandle:
        handle = self._by_path.get(path)
        if handle is None:
            handle = FileHandle(
                file_id=next(self._file_ids),
                path=path,
                iod_nodes=self.iod_nodes,
                stripe_size=self.stripe_size,
            )
            self._by_path[path] = handle
            self.metrics.inc("mgr.creates")
        return handle

    # -- request handlers --------------------------------------------------
    @handles(protocol.MGR_OPEN)
    def _handle_open(self, msg: Message, endpoint) -> _t.Generator:
        handle = self._open(msg.payload.path)
        self.metrics.inc("mgr.opens")
        self._emit("metadata_op", op="open", shard=self.shard_index)
        yield endpoint.send(
            msg.reply(
                protocol.MGR_OPEN_ACK,
                protocol.OPEN_ACK_BYTES,
                payload=handle,
            )
        )

    @handles(protocol.MGR_STAT)
    def _handle_stat(self, msg: Message, endpoint) -> _t.Generator:
        path = msg.payload.path
        self.metrics.inc("mgr.stats")
        self._emit("metadata_op", op="stat", shard=self.shard_index)
        yield endpoint.send(
            msg.reply(
                protocol.MGR_STAT_ACK,
                protocol.OPEN_ACK_BYTES,
                payload=protocol.StatReply(
                    path=path, handle=self._by_path.get(path)
                ),
            )
        )

    @handles(protocol.MGR_UNLINK)
    def _handle_unlink(self, msg: Message, endpoint) -> _t.Generator:
        path = msg.payload.path
        existed = self._by_path.pop(path, None) is not None
        self.metrics.inc("mgr.unlinks")
        self._emit("metadata_op", op="unlink", shard=self.shard_index)
        yield endpoint.send(
            msg.reply(
                protocol.MGR_UNLINK_ACK,
                protocol.ACK_BYTES,
                payload=protocol.UnlinkReply(path=path, existed=existed),
            )
        )

    @handles(protocol.MGR_LIST)
    def _handle_list(self, msg: Message, endpoint) -> _t.Generator:
        reply = protocol.ListReply(paths=sorted(self._by_path))
        self.metrics.inc("mgr.lists")
        self._emit("metadata_op", op="list", shard=self.shard_index)
        yield endpoint.send(
            msg.reply(
                protocol.MGR_LIST_ACK,
                reply.wire_size(),
                payload=reply,
            )
        )
