"""libpvfs: the client library linked into each application process.

Each process owns private connections to the mgr and to every iod, so
request/response matching is FIFO per connection (the paper's libpvfs
does the same).  When the node carries a cache module, data calls are
routed through it — transparently, exactly like the paper's in-kernel
socket interception: application code is identical in both modes.
"""

from __future__ import annotations

import typing as _t

from repro.cache.module import MACRO_MISS
from repro.cluster.node import Node
from repro.metrics import Metrics
from repro.net import Message
from repro.pvfs import protocol
from repro.pvfs.protocol import (
    FileHandle,
    OpenRequest,
    ReadData,
    ReadRequest,
    WriteRequest,
    coalesce_ranges,
)
from repro.pvfs.striping import StripeLayout


class PVFSClient:
    """One per application process."""

    def __init__(
        self,
        node: Node,
        mgr_node: str,
        metrics: Metrics,
        mgr_port: int = 3000,
        iod_port: int = 7000,
        use_cache: bool = True,
        record_metrics: bool = True,
        mgr_placements: _t.Sequence[tuple[str, int]] | None = None,
    ) -> None:
        self.node = node
        self.env = node.env
        self.mgr_node = mgr_node
        self.metrics = metrics
        self.mgr_port = mgr_port
        self.iod_port = iod_port
        #: Where each metadata shard lives, ``(node, port)`` by shard
        #: index (DESIGN.md §18).  The default is the classic single
        #: mgr; paths route to shards by deterministic hash.
        self.mgr_placements: tuple[tuple[str, int], ...] = tuple(
            mgr_placements
            if mgr_placements is not None
            else [(mgr_node, mgr_port)]
        )
        #: Route through the node's cache module when present.
        self.use_cache = use_cache
        #: Warmup clients disable recording so steady-state latency
        #: series are not polluted by cold passes.
        self.record_metrics = record_metrics
        #: Optional access-trace hook for the sharing-pattern
        #: classifier: called as ``sink(time, process, file_id,
        #: offset, nbytes, op)`` on every data call.
        self.trace_sink: _t.Callable[..., None] | None = None
        #: Identity reported to the trace sink.
        self.process_name = f"{node.name}/pid{id(self) % 100000}"
        #: Workload tags carried into recorded trace IR events.
        self.app = ""
        self.instance = 0
        self._mgr_eps: dict[int, _t.Any] = {}
        self._iod_eps: dict[str, _t.Any] = {}

    def _trace(
        self,
        file_id: int,
        offset: int,
        nbytes: int,
        op: str,
        stride: int = 0,
        count: int = 1,
    ) -> None:
        """Report one data call to the trace sink and, when anyone is
        listening, to the instrumentation bus.

        ``count > 1`` is a regular strided request: one ``client_io``
        bus record carries the whole shape, while the legacy per-range
        sink sees each range separately.  Both reporting paths are
        synchronous Python off the event schedule, and the bus path is
        gated on ``record_metrics`` so warmup clients stay out of
        recorded traces.
        """
        if self.trace_sink is not None:
            for i in range(count):
                self.trace_sink(
                    self.env.now,
                    self.process_name,
                    file_id,
                    offset + i * stride,
                    nbytes,
                    op,
                )
        bus = self.env.svc_bus
        if bus is not None and bus.active and self.record_metrics:
            bus.emit(
                "libpvfs",
                "client_io",
                node=self.node.name,
                process=self.process_name,
                file_id=file_id,
                offset=offset,
                nbytes=nbytes,
                op=op,
                app=self.app,
                instance=self.instance,
                stride=stride,
                count=count,
            )

    def _trace_ranges(
        self, file_id: int, ranges: _t.Sequence[tuple[int, int]], op: str
    ) -> None:
        """Report a list-I/O call: one strided record when the ranges
        form a regular stride, else one record per range."""
        stride, count = _as_strided(ranges)
        if count:
            self._trace(
                file_id, ranges[0][0], ranges[0][1], op,
                stride=stride, count=count,
            )
        else:
            for offset, nbytes in ranges:
                self._trace(file_id, offset, nbytes, op)

    # -- connections ---------------------------------------------------------
    def _mgr_shard(self, path: str) -> int:
        """The metadata shard owning ``path``."""
        return protocol.mgr_shard_of(path, len(self.mgr_placements))

    def _mgr_endpoint(self, shard: int = 0) -> _t.Generator:
        endpoint = self._mgr_eps.get(shard)
        if endpoint is None:
            mgr_node, mgr_port = self.mgr_placements[shard]
            endpoint = yield self.env.process(
                self.node.sockets.connect(mgr_node, mgr_port)
            )
            self._mgr_eps[shard] = endpoint
        return endpoint

    def _iod_endpoint(self, iod_node: str) -> _t.Generator:
        endpoint = self._iod_eps.get(iod_node)
        if endpoint is None:
            endpoint = yield self.env.process(
                self.node.sockets.connect(iod_node, self.iod_port)
            )
            self._iod_eps[iod_node] = endpoint
        return endpoint

    @property
    def _cache(self):
        return self.node.cache_module if self.use_cache else None

    # -- API -------------------------------------------------------------------
    def open(self, path: str) -> _t.Generator:
        """Process body: open (or create) ``path``; returns FileHandle.

        Metadata is never cached (paper, Section 3): every open talks
        to the mgr.
        """
        yield from self.node.compute(self.node.costs.syscall_s)
        endpoint = yield from self._mgr_endpoint(self._mgr_shard(path))
        yield endpoint.send(
            Message(
                kind=protocol.MGR_OPEN,
                size_bytes=protocol.OPEN_REQ_BYTES,
                payload=OpenRequest(path=path),
            )
        )
        ack = yield endpoint.recv()
        if ack.kind != protocol.MGR_OPEN_ACK:
            raise ValueError(f"unexpected open reply {ack.kind!r}")
        self.metrics.inc("client.opens")
        return ack.payload

    def stat(self, path: str) -> _t.Generator:
        """Process body: metadata lookup; returns FileHandle or None."""
        yield from self.node.compute(self.node.costs.syscall_s)
        endpoint = yield from self._mgr_endpoint(self._mgr_shard(path))
        yield endpoint.send(
            Message(
                kind=protocol.MGR_STAT,
                size_bytes=protocol.OPEN_REQ_BYTES,
                payload=protocol.StatRequest(path=path),
            )
        )
        ack = yield endpoint.recv()
        if ack.kind != protocol.MGR_STAT_ACK:
            raise ValueError(f"unexpected stat reply {ack.kind!r}")
        return ack.payload.handle

    def unlink(self, path: str) -> _t.Generator:
        """Process body: drop the path from the namespace; returns
        whether it existed.  (Stripe data reclamation is the iods'
        concern; see PVFSShell.rm for the storage side.)"""
        yield from self.node.compute(self.node.costs.syscall_s)
        endpoint = yield from self._mgr_endpoint(self._mgr_shard(path))
        yield endpoint.send(
            Message(
                kind=protocol.MGR_UNLINK,
                size_bytes=protocol.OPEN_REQ_BYTES,
                payload=protocol.UnlinkRequest(path=path),
            )
        )
        ack = yield endpoint.recv()
        if ack.kind != protocol.MGR_UNLINK_ACK:
            raise ValueError(f"unexpected unlink reply {ack.kind!r}")
        return ack.payload.existed

    def listdir(self) -> _t.Generator:
        """Process body: every path in the namespace.

        With a sharded mgr each shard owns a namespace partition, so
        the listing fans out to every shard (in shard order — the
        deterministic schedule requirement) and merges the sorted
        partials.
        """
        yield from self.node.compute(self.node.costs.syscall_s)
        paths: list[str] = []
        for shard in range(len(self.mgr_placements)):
            endpoint = yield from self._mgr_endpoint(shard)
            yield endpoint.send(
                Message(
                    kind=protocol.MGR_LIST,
                    size_bytes=protocol.OPEN_REQ_BYTES,
                    payload=None,
                )
            )
            ack = yield endpoint.recv()
            if ack.kind != protocol.MGR_LIST_ACK:
                raise ValueError(f"unexpected list reply {ack.kind!r}")
            paths.extend(ack.payload.paths)
        return sorted(paths)

    def read(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        want_data: bool = False,
    ) -> _t.Generator:
        """Process body: read; returns bytes when ``want_data``.

        Routed through the cache module when the node has one.
        """
        cache = self._cache
        start = self.env.now
        self._trace(handle.file_id, offset, nbytes, "read")
        if cache is not None and cache.engine_macro and nbytes > 0:
            # Macro-event fast path (DESIGN.md §14): a fully-resident
            # uncontended read is charged as one event covering the
            # syscall, lookup, and copy-out costs together.  A decline
            # schedules nothing, so falling through is side-effect
            # free.
            result = yield from cache.macro_read(
                handle,
                offset,
                nbytes,
                want_data,
                pre_compute_s=self.node.costs.syscall_s,
            )
            if result is not MACRO_MISS:
                if self.record_metrics:
                    self.metrics.record(
                        "client.read_latency", self.env.now - start
                    )
                    self.metrics.inc("client.reads")
                    self.metrics.inc("client.read_bytes", nbytes)
                return result
        yield from self.node.compute(self.node.costs.syscall_s)
        if cache is not None:
            result = yield from cache.read(handle, offset, nbytes, want_data)
        else:
            result = yield from self._raw_read(handle, offset, nbytes, want_data)
        if self.record_metrics:
            self.metrics.record("client.read_latency", self.env.now - start)
            self.metrics.inc("client.reads")
            self.metrics.inc("client.read_bytes", nbytes)
        return result

    def write(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None = None,
    ) -> _t.Generator:
        """Process body: buffered write (default, non-coherent path)."""
        if data is not None and len(data) != nbytes:
            raise ValueError(f"data length {len(data)} != nbytes {nbytes}")
        cache = self._cache
        start = self.env.now
        self._trace(handle.file_id, offset, nbytes, "write")
        yield from self.node.compute(self.node.costs.syscall_s)
        if cache is not None:
            yield from cache.write(handle, offset, nbytes, data)
        else:
            yield from self._raw_write(handle, offset, nbytes, data, sync=False)
        if self.record_metrics:
            self.metrics.record("client.write_latency", self.env.now - start)
            self.metrics.inc("client.writes")
            self.metrics.inc("client.write_bytes", nbytes)

    def sync_write(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None = None,
    ) -> _t.Generator:
        """Process body: coherent write — propagates to the iod and
        invalidates every remote cache holding a written block."""
        if data is not None and len(data) != nbytes:
            raise ValueError(f"data length {len(data)} != nbytes {nbytes}")
        cache = self._cache
        start = self.env.now
        self._trace(handle.file_id, offset, nbytes, "sync_write")
        yield from self.node.compute(self.node.costs.syscall_s)
        if cache is not None:
            yield from cache.sync_write(handle, offset, nbytes, data)
        else:
            yield from self._raw_write(handle, offset, nbytes, data, sync=True)
        if self.record_metrics:
            self.metrics.record("client.sync_write_latency", self.env.now - start)
            self.metrics.inc("client.sync_writes")

    # -- list (noncontiguous) I/O ---------------------------------------------
    def readv(
        self,
        handle: FileHandle,
        ranges: _t.Sequence[tuple[int, int]],
        want_data: bool = False,
    ) -> _t.Generator:
        """Process body: strided/list read — one call, many ranges.

        The noncontiguous request shape of parallel applications
        (cf. listio in PVFS): the raw path aggregates every range into
        one request per iod — the iods' handlers are range-list native
        — and the cached path serves each range through the cache
        module (the macro fast path engages per range).  Returns a
        list of per-range byte strings when ``want_data``.
        """
        ranges = self._check_ranges(ranges)
        cache = self._cache
        start = self.env.now
        self._trace_ranges(handle.file_id, ranges, "read")
        yield from self.node.compute(self.node.costs.syscall_s)
        parts: list[bytes | None]
        if cache is not None:
            parts = []
            for offset, nbytes in ranges:
                if cache.engine_macro and nbytes > 0:
                    result = yield from cache.macro_read(
                        handle, offset, nbytes, want_data
                    )
                    if result is not MACRO_MISS:
                        parts.append(result)
                        continue
                part = yield from cache.read(handle, offset, nbytes, want_data)
                parts.append(part)
        else:
            parts = yield from self._raw_readv(handle, ranges, want_data)
        if self.record_metrics:
            self.metrics.record("client.read_latency", self.env.now - start)
            self.metrics.inc("client.reads")
            self.metrics.inc("client.list_reads")
            self.metrics.inc(
                "client.read_bytes", sum(n for _, n in ranges)
            )
        return parts if want_data else None

    def writev(
        self,
        handle: FileHandle,
        ranges: _t.Sequence[tuple[int, int]],
        data: _t.Sequence[bytes | None] | None = None,
        sync: bool = False,
    ) -> _t.Generator:
        """Process body: strided/list write (``sync`` for coherent).

        ``data``, when given, is one chunk per range.
        """
        ranges = self._check_ranges(ranges)
        if data is not None:
            if len(data) != len(ranges):
                raise ValueError(
                    f"need one chunk per range, got {len(data)} chunks "
                    f"for {len(ranges)} ranges"
                )
            for (_, nbytes), chunk in zip(ranges, data):
                if chunk is not None and len(chunk) != nbytes:
                    raise ValueError(
                        f"chunk length {len(chunk)} != nbytes {nbytes}"
                    )
        cache = self._cache
        start = self.env.now
        self._trace_ranges(
            handle.file_id, ranges, "sync_write" if sync else "write"
        )
        yield from self.node.compute(self.node.costs.syscall_s)
        if cache is not None:
            for i, (offset, nbytes) in enumerate(ranges):
                chunk = data[i] if data is not None else None
                if sync:
                    yield from cache.sync_write(handle, offset, nbytes, chunk)
                else:
                    yield from cache.write(handle, offset, nbytes, chunk)
        else:
            yield from self._raw_writev(handle, ranges, data, sync)
        if self.record_metrics:
            total = sum(n for _, n in ranges)
            self.metrics.inc("client.list_writes")
            if sync:
                self.metrics.record(
                    "client.sync_write_latency", self.env.now - start
                )
                self.metrics.inc("client.sync_writes")
            else:
                self.metrics.record(
                    "client.write_latency", self.env.now - start
                )
                self.metrics.inc("client.writes")
                self.metrics.inc("client.write_bytes", total)

    @staticmethod
    def _check_ranges(
        ranges: _t.Sequence[tuple[int, int]],
    ) -> list[tuple[int, int]]:
        out = [(int(offset), int(nbytes)) for offset, nbytes in ranges]
        if not out:
            raise ValueError("need at least one range")
        for offset, nbytes in out:
            if offset < 0 or nbytes < 0:
                raise ValueError(f"bad range ({offset}, {nbytes})")
        return out

    # -- raw (no-cache) protocol -------------------------------------------------
    def _layout(self, handle: FileHandle) -> StripeLayout:
        return StripeLayout(handle.n_iods, handle.stripe_size)

    def _raw_read(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        want_data: bool,
    ) -> _t.Generator:
        layout = self._layout(handle)
        per_iod = layout.split(offset, nbytes)
        # Phase 1: issue every request before waiting on any response
        # (libpvfs aggregates per iod, then blasts all requests out).
        endpoints: list[tuple[_t.Any, list[protocol.Range]]] = []
        for idx, ranges in sorted(per_iod.items()):
            ranges = coalesce_ranges(ranges)
            endpoint = yield from self._iod_endpoint(handle.iod_nodes[idx])
            req = ReadRequest(
                file_id=handle.file_id,
                ranges=ranges,
                want_data=want_data,
                requester_node=self.node.name,
            )
            yield from self.node.compute(self.node.costs.syscall_s)
            endpoint.send(
                Message(
                    kind=protocol.IOD_READ,
                    size_bytes=req.wire_size(),
                    payload=req,
                )
            )
            endpoints.append((endpoint, ranges))
        # Phase 2: collect ack + data per iod (private conn => FIFO).
        buf = bytearray(nbytes) if want_data else None
        for endpoint, _ranges in endpoints:
            ack = yield endpoint.recv()
            if ack.kind != protocol.IOD_READ_ACK:
                raise ValueError(f"expected read ack, got {ack.kind!r}")
            data_msg = yield endpoint.recv()
            if data_msg.kind != protocol.IOD_DATA:
                raise ValueError(f"expected data, got {data_msg.kind!r}")
            payload: ReadData = data_msg.payload
            if buf is not None:
                for (roff, rlen), chunk in zip(payload.ranges, payload.chunks):
                    if chunk is not None:
                        buf[roff - offset : roff - offset + rlen] = chunk
        return bytes(buf) if buf is not None else None

    def _raw_write(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None,
        sync: bool,
    ) -> _t.Generator:
        layout = self._layout(handle)
        per_iod = layout.split(offset, nbytes)
        kind = protocol.IOD_SYNC_WRITE if sync else protocol.IOD_WRITE
        ack_kind = protocol.IOD_SYNC_ACK if sync else protocol.IOD_WRITE_ACK
        endpoints = []
        for idx, ranges in sorted(per_iod.items()):
            ranges = coalesce_ranges(ranges)
            chunks: list[bytes | None] = [
                data[roff - offset : roff - offset + rlen]
                if data is not None
                else None
                for roff, rlen in ranges
            ]
            endpoint = yield from self._iod_endpoint(handle.iod_nodes[idx])
            req = WriteRequest(
                file_id=handle.file_id,
                ranges=ranges,
                chunks=chunks,
                sync=sync,
                requester_node=self.node.name,
            )
            yield from self.node.compute(self.node.costs.syscall_s)
            endpoint.send(
                Message(kind=kind, size_bytes=req.wire_size(), payload=req)
            )
            endpoints.append(endpoint)
        for endpoint in endpoints:
            ack = yield endpoint.recv()
            if ack.kind != ack_kind:
                raise ValueError(f"expected {ack_kind!r}, got {ack.kind!r}")

    def _raw_readv(
        self,
        handle: FileHandle,
        ranges: _t.Sequence[tuple[int, int]],
        want_data: bool,
    ) -> _t.Generator:
        """List read over the wire: ALL ranges aggregated into at most
        one request per iod (the noncontiguous-I/O win: n ranges cost
        one round trip per iod, not n)."""
        layout = self._layout(handle)
        per_iod: dict[int, list[protocol.Range]] = {}
        for offset, nbytes in ranges:
            for idx, rs in layout.split(offset, nbytes).items():
                per_iod.setdefault(idx, []).extend(rs)
        endpoints = []
        for idx, iod_ranges in sorted(per_iod.items()):
            iod_ranges = coalesce_ranges(iod_ranges)
            endpoint = yield from self._iod_endpoint(handle.iod_nodes[idx])
            req = ReadRequest(
                file_id=handle.file_id,
                ranges=iod_ranges,
                want_data=want_data,
                requester_node=self.node.name,
            )
            yield from self.node.compute(self.node.costs.syscall_s)
            endpoint.send(
                Message(
                    kind=protocol.IOD_READ,
                    size_bytes=req.wire_size(),
                    payload=req,
                )
            )
            endpoints.append(endpoint)
        bufs = [bytearray(n) for _, n in ranges] if want_data else None
        for endpoint in endpoints:
            ack = yield endpoint.recv()
            if ack.kind != protocol.IOD_READ_ACK:
                raise ValueError(f"expected read ack, got {ack.kind!r}")
            data_msg = yield endpoint.recv()
            if data_msg.kind != protocol.IOD_DATA:
                raise ValueError(f"expected data, got {data_msg.kind!r}")
            payload: ReadData = data_msg.payload
            if bufs is None:
                continue
            for (roff, rlen), chunk in zip(payload.ranges, payload.chunks):
                if chunk is None:
                    continue
                # A coalesced wire range may span several of the
                # caller's ranges; copy each overlap back out.
                for buf, (coff, cn) in zip(bufs, ranges):
                    lo = max(roff, coff)
                    hi = min(roff + rlen, coff + cn)
                    if lo < hi:
                        buf[lo - coff : hi - coff] = chunk[
                            lo - roff : hi - roff
                        ]
        if bufs is None:
            return [None] * len(ranges)
        return [bytes(b) for b in bufs]

    def _raw_writev(
        self,
        handle: FileHandle,
        ranges: _t.Sequence[tuple[int, int]],
        data: _t.Sequence[bytes | None] | None,
        sync: bool,
    ) -> _t.Generator:
        """List write over the wire: one request per iod carrying
        every range (and chunk) that lands on it."""
        layout = self._layout(handle)
        per_iod: dict[
            int, list[tuple[protocol.Range, bytes | None]]
        ] = {}
        for i, (offset, nbytes) in enumerate(ranges):
            chunk = data[i] if data is not None else None
            for idx, rs in layout.split(offset, nbytes).items():
                for roff, rlen in rs:
                    piece = (
                        chunk[roff - offset : roff - offset + rlen]
                        if chunk is not None
                        else None
                    )
                    per_iod.setdefault(idx, []).append(((roff, rlen), piece))
        kind = protocol.IOD_SYNC_WRITE if sync else protocol.IOD_WRITE
        ack_kind = protocol.IOD_SYNC_ACK if sync else protocol.IOD_WRITE_ACK
        endpoints = []
        for idx, entries in sorted(per_iod.items()):
            entries.sort(key=lambda entry: entry[0])
            endpoint = yield from self._iod_endpoint(handle.iod_nodes[idx])
            req = WriteRequest(
                file_id=handle.file_id,
                ranges=[r for r, _ in entries],
                chunks=[c for _, c in entries],
                sync=sync,
                requester_node=self.node.name,
            )
            yield from self.node.compute(self.node.costs.syscall_s)
            endpoint.send(
                Message(kind=kind, size_bytes=req.wire_size(), payload=req)
            )
            endpoints.append(endpoint)
        for endpoint in endpoints:
            ack = yield endpoint.recv()
            if ack.kind != ack_kind:
                raise ValueError(f"expected {ack_kind!r}, got {ack.kind!r}")


def _as_strided(
    ranges: _t.Sequence[tuple[int, int]],
) -> tuple[int, int]:
    """``(stride, count)`` when ``ranges`` is a regular non-overlapping
    stride of equal-size requests, else ``(0, 0)``."""
    if len(ranges) < 2:
        return 0, 0
    nbytes = ranges[0][1]
    stride = ranges[1][0] - ranges[0][0]
    if stride < nbytes or nbytes <= 0:
        return 0, 0
    if any(n != nbytes for _, n in ranges):
        return 0, 0
    for (a, _), (b, _) in zip(ranges, ranges[1:]):
        if b - a != stride:
            return 0, 0
    return stride, len(ranges)
