"""PVFS substrate: the Parallel Virtual File System the paper builds on.

Three components, mirroring PVFS 1.x (Carns et al., 2000):

* one **metadata server** (``mgr``) for the whole cluster
  (:mod:`repro.pvfs.mgr`) serving opens/lookups;
* a **data server daemon** (``iod``) on every storage node
  (:mod:`repro.pvfs.iod`) streaming stripe data from its local disk;
* the client library **libpvfs** (:mod:`repro.pvfs.client`) linked into
  each application process, which stripes byte ranges over the iods and
  speaks the request/ack/data socket protocol
  (:mod:`repro.pvfs.protocol`).

The paper's cache module interposes between libpvfs and the iod
sockets; see :mod:`repro.cache.module`.
"""

from repro.pvfs.client import PVFSClient
from repro.pvfs.collective import CollectiveGroup, InterleavedAccess
from repro.pvfs.iod import Iod
from repro.pvfs.mgr import MetadataServer
from repro.pvfs.protocol import FileHandle
from repro.pvfs.shell import PVFSShell
from repro.pvfs.striping import StripeLayout

__all__ = [
    "CollectiveGroup",
    "FileHandle",
    "InterleavedAccess",
    "Iod",
    "MetadataServer",
    "PVFSClient",
    "PVFSShell",
    "StripeLayout",
]
