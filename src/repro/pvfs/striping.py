"""File striping: how a logical byte range maps onto the iods.

PVFS distributes a file round-robin in fixed-size *stripe units*
(64 KB by default) across the iod set.  Stripe unit ``k`` of a file
lives on iod ``k mod n`` at local offset ``(k div n) * stripe_size``.
"""

from __future__ import annotations

import dataclasses

from repro.pvfs.protocol import Range


@dataclasses.dataclass(frozen=True)
class StripeLayout:
    """Round-robin stripe map over ``n_iods`` servers."""

    n_iods: int
    stripe_size: int

    def __post_init__(self) -> None:
        if self.n_iods < 1:
            raise ValueError(f"need at least one iod, got {self.n_iods}")
        if self.stripe_size <= 0:
            raise ValueError(f"stripe size must be positive, got {self.stripe_size}")

    def iod_index(self, offset: int) -> int:
        """Which iod holds the byte at ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        return (offset // self.stripe_size) % self.n_iods

    def local_offset(self, offset: int) -> int:
        """Byte offset within the owning iod's local stripe file."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        stripe = offset // self.stripe_size
        return (stripe // self.n_iods) * self.stripe_size + (
            offset % self.stripe_size
        )

    def split(self, offset: int, nbytes: int) -> dict[int, list[Range]]:
        """Partition ``[offset, offset+nbytes)`` into per-iod ranges.

        Returned ranges are *logical* file coordinates (the iod maps
        them locally via :meth:`local_offset`); consecutive stripes on
        the same iod are not merged here — the client's aggregation
        step (:func:`repro.pvfs.protocol.coalesce_ranges`) cannot merge
        them anyway since they are discontiguous in local coordinates
        only when interleaved, but *are* contiguous logically every
        ``n_iods`` stripes; we merge the logically-adjacent pieces.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError(f"invalid range {offset}+{nbytes}")
        out: dict[int, list[Range]] = {}
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe_end = (pos // self.stripe_size + 1) * self.stripe_size
            piece_end = min(end, stripe_end)
            idx = self.iod_index(pos)
            pieces = out.setdefault(idx, [])
            if pieces and pieces[-1][0] + pieces[-1][1] == pos:
                # n_iods == 1 (or wrap) made this logically adjacent.
                last_off, last_n = pieces[-1]
                pieces[-1] = (last_off, last_n + piece_end - pos)
            else:
                pieces.append((pos, piece_end - pos))
            pos = piece_end
        return out
