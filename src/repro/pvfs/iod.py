"""The PVFS I/O daemon (``iod``).

One per storage node.  Serves striped file data from the local disk
stack, answers flush batches from client-side flusher threads on a
separate port (the paper: "a server version of this flusher thread
runs on the iod nodes, which listens on a separate socket"), and keeps
the per-block *directory* of caching nodes used by ``sync_write``
invalidations.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.shared import shared_state
from repro.cluster.node import Node
from repro.disk.filesystem import blocks_spanned
from repro.disk.writeback import WritebackItem
from repro.metrics import Metrics
from repro.net import Message
from repro.pvfs import protocol
from repro.pvfs.protocol import (
    FlushBatch,
    InvalidateRequest,
    ReadData,
    ReadRequest,
    WriteRequest,
)
from repro.pvfs.striping import StripeLayout
from repro.svc import Service, handles


@shared_state("directories")
class Iod(Service):
    """One I/O daemon bound to a storage node."""

    def __init__(
        self,
        node: Node,
        layout: StripeLayout,
        iod_index: int,
        metrics: Metrics,
        port: int = 7000,
        flush_port: int = 7001,
        invalidate_port: int = 7002,
        mgr_shards: int = 1,
    ) -> None:
        if node.disk is None or node.filestore is None or node.pagecache is None:
            raise ValueError(f"{node.name} has no disk stack for an iod")
        super().__init__(node.env, f"iod-{node.name}", node=node)
        self.layout = layout
        self.iod_index = iod_index
        self.metrics = metrics
        self.port = port
        self.flush_port = flush_port
        self.invalidate_port = invalidate_port
        self.request_cpu_s = node.costs.iod_request_cpu_s
        self.mgr_shards = mgr_shards
        #: sync_write directories, partitioned by the mgr shard that
        #: owns each file (DESIGN.md §18): element ``k`` maps
        #: (file_id, block_no) -> set of client node names whose cache
        #: module may hold a copy, for files allocated by mgr shard
        #: ``k``.  One partition at the default, so ``directory`` below
        #: is the classic flat table.
        self.directories: list[dict[tuple[int, int], set[str]]] = [
            {} for _ in range(mgr_shards)
        ]
        self._invalidate_pool = self.pool(
            invalidate_port, label=f"{self.name}-inval"
        )
        self.block_size = node.filestore.block_size

    def _directory_for(self, file_id: int) -> dict[tuple[int, int], set[str]]:
        """The directory partition of the mgr shard owning ``file_id``."""
        return self.directories[
            protocol.owning_mgr_shard(file_id, self.mgr_shards)
        ]

    @property
    def directory(self) -> dict[tuple[int, int], set[str]]:
        """The sharer directory as one flat table.

        With one mgr shard this *is* the single partition (mutations
        through it are live, as tests expect); with several it is a
        merged snapshot for inspection.
        """
        if self.mgr_shards == 1:
            return self.directories[0]
        merged: dict[tuple[int, int], set[str]] = {}
        for partition in self.directories:
            merged.update(partition)
        return merged

    @directory.setter
    def directory(self, entries: dict[tuple[int, int], set[str]]) -> None:
        for partition in self.directories:
            partition.clear()
        for (file_id, block), sharers in entries.items():
            self._directory_for(file_id)[(file_id, block)] = sharers

    def _on_start(self) -> None:
        self.serve(self.port, label="data")
        self.serve(self.flush_port, label="flush")

    # -- local geometry ------------------------------------------------------
    def local_offset(self, logical_offset: int) -> int:
        """Map a logical file offset to this iod's local stripe file."""
        return self.layout.local_offset(logical_offset)

    # -- request handlers --------------------------------------------------
    @handles(protocol.IOD_READ)
    def _handle_read(self, msg: Message, endpoint) -> _t.Generator:
        req: ReadRequest = msg.payload
        # Acknowledge the request before moving data (PVFS protocol:
        # libpvfs waits for an ack, then the data stream).
        yield endpoint.send(
            msg.reply(protocol.IOD_READ_ACK, protocol.ACK_BYTES)
        )
        yield from self._ensure_resident(req.file_id, req.ranges)
        if req.from_cache and req.requester_node:
            directory = self._directory_for(req.file_id)
            for off, n in req.ranges:
                for block in blocks_spanned(off, n, self.block_size):
                    directory.setdefault(
                        (req.file_id, block), set()
                    ).add(req.requester_node)
        chunks = [
            self._read_range(req.file_id, off, n) if req.want_data else None
            for off, n in req.ranges
        ]
        data = ReadData(file_id=req.file_id, ranges=list(req.ranges), chunks=chunks)
        self.metrics.inc("iod.reads")
        if len(req.ranges) > 1:
            self.metrics.inc("iod.list_requests")
        self.metrics.inc("iod.read_bytes", req.total_bytes)
        yield endpoint.send(
            msg.reply(protocol.IOD_DATA, data.total_bytes, payload=data)
        )

    @handles(protocol.IOD_WRITE)
    def _handle_write(self, msg: Message, endpoint) -> _t.Generator:
        req: WriteRequest = msg.payload
        yield from self._write_ranges(req.file_id, req.ranges, req.chunks)
        self.metrics.inc("iod.writes")
        if len(req.ranges) > 1:
            self.metrics.inc("iod.list_requests")
        self.metrics.inc("iod.write_bytes", req.total_bytes)
        yield endpoint.send(
            msg.reply(protocol.IOD_WRITE_ACK, protocol.ACK_BYTES)
        )

    @handles(protocol.IOD_SYNC_WRITE)
    def _handle_sync_write(self, msg: Message, endpoint) -> _t.Generator:
        req: WriteRequest = msg.payload
        yield from self._write_ranges(req.file_id, req.ranges, req.chunks)
        yield from self._invalidate_sharers(req)
        self.metrics.inc("iod.sync_writes")
        if len(req.ranges) > 1:
            self.metrics.inc("iod.list_requests")
        self.metrics.inc("iod.write_bytes", req.total_bytes)
        yield endpoint.send(
            msg.reply(protocol.IOD_SYNC_ACK, protocol.ACK_BYTES)
        )

    @handles(protocol.FLUSH)
    def _handle_flush(self, msg: Message, endpoint) -> _t.Generator:
        batch: FlushBatch = msg.payload
        for entry in batch.entries:
            yield from self._write_ranges(
                entry.file_id,
                [(entry.offset, entry.nbytes)],
                [entry.data],
            )
        self.metrics.inc("iod.flush_batches")
        self.metrics.inc("iod.flushed_bytes", batch.total_bytes)
        self._emit("flush_batch", entries=len(batch.entries),
                   bytes=batch.total_bytes)
        yield endpoint.send(
            msg.reply(protocol.FLUSH_ACK, protocol.ACK_BYTES)
        )

    # -- storage paths ---------------------------------------------------------
    def _ensure_resident(
        self, file_id: int, ranges: _t.Sequence[protocol.Range]
    ) -> _t.Generator:
        """Bring every block covering ``ranges`` into the page cache,
        reading coalesced runs of missing blocks from disk.

        One :meth:`PageCache.lookup_many` pass probes the whole
        request and hands back coalesced missing-block runs; one
        :meth:`DiskModel.io_batch` call services them.  Runs become
        resident as they land (``on_run_complete``), so concurrent
        requests observe the same residency evolution as the old
        per-run loop did.
        """
        pagecache = self.node.pagecache
        disk = self.node.disk
        assert pagecache is not None and disk is not None
        block_size = self.block_size
        blocks = [
            block
            for off, n in ranges
            for block in blocks_spanned(off, n, block_size)
        ]
        hits, runs = pagecache.lookup_many(file_id, blocks)
        misses = len(blocks) - hits
        if hits:
            self.metrics.inc("iod.pagecache_hits", hits)
        if misses:
            self.metrics.inc("iod.pagecache_misses", misses)
        if not runs:
            return
        yield from disk.io_batch(
            file_id,
            [
                (self.local_offset(first * block_size), count * block_size)
                for first, count in runs
            ],
            write=False,
            on_run_complete=lambda i: pagecache.insert_many(
                file_id, runs[i][0], runs[i][1]
            ),
        )

    def _read_range(self, file_id: int, offset: int, nbytes: int) -> bytes:
        """Assemble real bytes for one logical range from the store."""
        store = self.node.filestore
        assert store is not None
        return store.read_range(file_id, offset, nbytes)

    def _write_ranges(
        self,
        file_id: int,
        ranges: _t.Sequence[protocol.Range],
        chunks: _t.Sequence[bytes | None],
    ) -> _t.Generator:
        """Buffered write: patch the store, warm the page cache, and
        hand the bytes to the background writeback daemon.

        Like a real iod's ``write()`` call, the ack does not wait for
        the platter — the OS page cache absorbs the write and pdflush
        (our :class:`~repro.disk.writeback.WritebackDaemon`) drains it,
        throttling us only when dirty memory piles up.
        """
        store = self.node.filestore
        pagecache = self.node.pagecache
        assert store is not None and pagecache is not None and self.node.disk
        for (offset, nbytes), data in zip(ranges, chunks):
            if nbytes == 0:
                continue
            store.write_range(file_id, offset, nbytes, data)
            spanned = blocks_spanned(offset, nbytes, self.block_size)
            pagecache.insert_many(file_id, spanned.start, len(spanned))
            assert self.node.writeback is not None
            yield from self.node.writeback.submit(
                WritebackItem(
                    file_id=file_id,
                    local_offset=self.local_offset(offset),
                    nbytes=nbytes,
                )
            )

    # -- sync_write invalidations ---------------------------------------------
    def _invalidate_sharers(self, req: WriteRequest) -> _t.Generator:
        """Invalidate every cache holding a written block, except the
        writer's own node (its cache was updated by the write itself)."""
        victims: dict[str, list[tuple[int, int]]] = {}
        mgr_shard = protocol.owning_mgr_shard(req.file_id, self.mgr_shards)
        directory = self.directories[mgr_shard]
        for off, n in req.ranges:
            for block in blocks_spanned(off, n, self.block_size):
                key = (req.file_id, block)
                # Sorted: the directory entry is a set, and the order
                # sharers are visited here decides the order their
                # invalidation messages hit the wire — iterating the
                # raw set would tie the packet schedule (and thus every
                # downstream event) to the string hash seed.
                for sharer in sorted(directory.get(key, ())):
                    if sharer != req.requester_node:
                        victims.setdefault(sharer, []).append(key)
                # After a sync write only the writer's copy is current.
                if key in directory:
                    keep = (
                        {req.requester_node}
                        if req.requester_node in directory[key]
                        else set()
                    )
                    directory[key] = keep
        pending = []
        for node_name, keys in victims.items():
            channel = yield from self._invalidate_pool.channel(node_name)
            by_file: dict[int, list[int]] = {}
            for file_id, block in keys:
                by_file.setdefault(file_id, []).append(block)
            for file_id, blocks in by_file.items():
                inval = InvalidateRequest(file_id=file_id, block_nos=blocks)
                call = channel.call(
                    Message(
                        kind=protocol.INVALIDATE,
                        size_bytes=inval.wire_size(),
                        payload=inval,
                    )
                )
                pending.append(call)
                self.metrics.inc("iod.invalidations_sent", len(blocks))
                self._emit(
                    "invalidation",
                    peer=node_name,
                    blocks=len(blocks),
                    mgr_shard=mgr_shard,
                )
        for call in pending:
            yield call.response()
            call.close()
