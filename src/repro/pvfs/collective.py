"""Two-phase collective I/O over libpvfs (the MPI-IO optimization).

The paper's related work section is dominated by MPI-IO and its
optimizations for "non-contiguous parallel accesses to shared data".
The canonical one is *two-phase I/O* (ROMIO): when each of ``p`` ranks
wants an interleaved slice of a shared region, letting every rank issue
its own scattered requests produces p x stripes small transfers; the
collective instead

1. partitions the aggregate region into ``p`` contiguous *file domains*,
   one per rank, each read/written with one large request, and
2. redistributes the data among ranks over the (fast) network.

This module implements that protocol on top of :class:`PVFSClient`, so
its costs and benefits compose with the kernel cache module underneath —
letting the repo answer a question the paper raises implicitly: does
collective I/O still help when a shared cache absorbs the small
requests?
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

from repro.net import Message
from repro.pvfs.protocol import FileHandle
from repro.sim import Process, Store

#: Port used for the shuffle phase (rank-to-rank exchange).
SHUFFLE_PORT = 7100
SHUFFLE_MSG = "collective.shuffle"


@dataclasses.dataclass
class InterleavedAccess:
    """One rank's slice pattern of a shared region.

    Rank ``rank`` of ``n_ranks`` accesses ``item_bytes`` out of every
    ``n_ranks * item_bytes`` (a row/column-cyclic distribution), for
    ``items`` repetitions, starting at ``base``.
    """

    rank: int
    n_ranks: int
    item_bytes: int
    items: int
    base: int = 0

    def offsets(self) -> list[int]:
        """The rank's item offsets, lowest first."""
        stride = self.n_ranks * self.item_bytes
        return [
            self.base + i * stride + self.rank * self.item_bytes
            for i in range(self.items)
        ]

    @property
    def total_bytes(self) -> int:
        """Bytes this rank accesses."""
        return self.items * self.item_bytes

    @property
    def aggregate_bytes(self) -> int:
        """Bytes the whole collective covers."""
        return self.n_ranks * self.total_bytes


class CollectiveGroup:
    """One collective operation's communicator.

    Create one group per collective call; ranks join by index.  The
    group wires rank-to-rank mailboxes for the shuffle phase.
    """

    def __init__(self, cluster: "Cluster", nodes: _t.Sequence[str]) -> None:
        if not nodes:
            raise ValueError("collective group needs at least one rank")
        self.cluster = cluster
        self.nodes = list(nodes)
        self.n_ranks = len(nodes)
        self._mailboxes = [Store(cluster.env) for _ in nodes]
        self.clients = [cluster.client(node) for node in nodes]

    # -- shuffle primitives ---------------------------------------------------
    def _exchange(
        self, sender: int, receiver: int, nbytes: int
    ) -> _t.Generator:
        """Ship ``nbytes`` of shuffle data from one rank to another.

        Same-node ranks exchange through memory; remote ranks pay the
        fabric like any other transfer.
        """
        src = self.nodes[sender]
        dst = self.nodes[receiver]
        message = Message(
            kind=SHUFFLE_MSG, size_bytes=nbytes, src=src, dst=dst
        )
        yield self.cluster.env.process(
            self.cluster.network._transmit(message, self._mailboxes[receiver])
        )

    def _collect(self, rank: int, n_messages: int) -> _t.Generator:
        """Receive ``n_messages`` shuffle messages at ``rank``."""
        for _ in range(n_messages):
            yield self._mailboxes[rank].get()

    # -- the collective calls -----------------------------------------------------
    def read_interleaved(
        self, handle: FileHandle, access: InterleavedAccess
    ) -> _t.Generator:
        """Process body for one rank's collective interleaved read.

        Phase 1: the rank reads its contiguous *file domain* (an equal
        ``aggregate / p`` share).  Phase 2: it sends every other rank
        the items that landed in its domain and receives its own items
        from the other domains.
        """
        rank = access.rank
        domain_bytes = access.aggregate_bytes // self.n_ranks
        domain_start = access.base + rank * domain_bytes
        yield from self.clients[rank].read(
            handle, domain_start, domain_bytes
        )
        # Phase 2: all-to-all. Each domain holds items/p of each rank's
        # items (cyclic layout), so each pairwise exchange moves
        # total_bytes / p bytes.
        slice_bytes = max(1, access.total_bytes // self.n_ranks)
        for peer in range(self.n_ranks):
            if peer != rank:
                yield from self._exchange(rank, peer, slice_bytes)
        yield from self._collect(rank, self.n_ranks - 1)
        self.cluster.metrics.inc("collective.reads")

    def read_independent(
        self, handle: FileHandle, access: InterleavedAccess
    ) -> _t.Generator:
        """The baseline: the rank reads its own scattered items."""
        for offset in access.offsets():
            yield from self.clients[access.rank].read(
                handle, offset, access.item_bytes
            )
        self.cluster.metrics.inc("collective.independent_reads")

    def write_interleaved(
        self, handle: FileHandle, access: InterleavedAccess
    ) -> _t.Generator:
        """Two-phase collective write: shuffle first, then each rank
        writes its contiguous file domain with one large request."""
        rank = access.rank
        slice_bytes = max(1, access.total_bytes // self.n_ranks)
        for peer in range(self.n_ranks):
            if peer != rank:
                yield from self._exchange(rank, peer, slice_bytes)
        yield from self._collect(rank, self.n_ranks - 1)
        domain_bytes = access.aggregate_bytes // self.n_ranks
        domain_start = access.base + rank * domain_bytes
        yield from self.clients[rank].write(
            handle, domain_start, domain_bytes, None
        )
        self.cluster.metrics.inc("collective.writes")

    def write_independent(
        self, handle: FileHandle, access: InterleavedAccess
    ) -> _t.Generator:
        """The baseline: the rank writes its own scattered items."""
        for offset in access.offsets():
            yield from self.clients[access.rank].write(
                handle, offset, access.item_bytes, None
            )
        self.cluster.metrics.inc("collective.independent_writes")

    def spawn_all(
        self,
        handle: FileHandle,
        accesses: _t.Sequence[InterleavedAccess],
        collective: bool,
        mode: str = "read",
    ) -> list[Process]:
        """Start every rank's operation; returns the processes."""
        if mode == "read":
            method = (
                self.read_interleaved if collective else self.read_independent
            )
        elif mode == "write":
            method = (
                self.write_interleaved
                if collective
                else self.write_independent
            )
        else:
            raise ValueError(f"mode must be read/write, got {mode!r}")
        return [
            self.cluster.env.process(
                method(handle, access),
                name=f"collective-r{access.rank}",
            )
            for access in accesses
        ]


def run_interleaved_read(
    cluster: "Cluster",
    nodes: _t.Sequence[str],
    item_bytes: int,
    items_per_rank: int,
    collective: bool,
    path: str = "/collective/data",
    mode: str = "read",
) -> float:
    """Convenience: all ranks access an interleaved region; returns
    the simulated wall time of the slowest rank."""
    group = CollectiveGroup(cluster, nodes)
    env = cluster.env
    opened: dict[str, FileHandle] = {}

    def opener(env):
        opened["handle"] = yield from group.clients[0].open(path)

    proc = env.process(opener(env))
    env.run(until=proc)
    accesses = [
        InterleavedAccess(
            rank=r,
            n_ranks=group.n_ranks,
            item_bytes=item_bytes,
            items=items_per_rank,
        )
        for r in range(group.n_ranks)
    ]
    start = env.now
    procs = group.spawn_all(opened["handle"], accesses, collective, mode=mode)
    env.run(until=env.all_of(procs))
    return env.now - start
