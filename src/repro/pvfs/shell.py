"""Shell-style utilities over the simulated PVFS namespace.

PVFS "provides seamless transparent access to several existing
utilities on normal file systems" (paper, Section 3.1).  This module
is the equivalent convenience layer for the simulation: synchronous
helpers to import/export data, list the namespace, and measure
transfer rates (`dd`-style), usable from plain Python without writing
generator processes.

Each call spawns a process on the cluster's environment and runs the
simulation until it completes — fine for setup/inspection, but note
that it advances shared simulated time.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster



@dataclasses.dataclass
class FileStat:
    path: str
    file_id: int
    #: Highest written byte + 1 per the iods' stores (sparse-aware).
    apparent_size: int
    #: Blocks actually present, per iod node.
    blocks_per_iod: dict[str, int]
    stripe_size: int

    @property
    def allocated_bytes(self) -> int:
        """Bytes physically present across the iods."""
        return sum(self.blocks_per_iod.values()) * 4096


class PVFSShell:
    """Synchronous utility interface bound to one cluster node."""

    def __init__(
        self, cluster: "Cluster", node: str | None = None, use_cache: bool = False
    ) -> None:
        self.cluster = cluster
        self.node = node if node is not None else cluster.compute_nodes[0]
        #: Utilities default to the raw path (they are administrative,
        #: not part of the measured workload).
        self.client = cluster.client(self.node, use_cache=use_cache)
        self.client.record_metrics = False

    # -- internals -----------------------------------------------------------
    def _run(self, generator) -> _t.Any:
        proc = self.cluster.env.process(generator)
        return self.cluster.env.run(until=proc)

    # -- utilities -------------------------------------------------------------
    def cp_in(self, path: str, data: bytes) -> None:
        """Import host bytes into the simulated file system."""

        def gen(env):
            handle = yield from self.client.open(path)
            yield from self.client.write(handle, 0, len(data), data)

        self._run(gen(self.cluster.env))

    def cp_out(self, path: str, nbytes: int | None = None) -> bytes:
        """Export a file's contents back to host bytes."""

        def gen(env):
            handle = yield from self.client.open(path)
            size = (
                nbytes
                if nbytes is not None
                else self._apparent_size(handle.file_id)
            )
            if size == 0:
                return b""
            data = yield from self.client.read(handle, 0, size, want_data=True)
            return data

        return self._run(gen(self.cluster.env))

    def ls(self) -> list[str]:
        """Paths known to the metadata server."""
        return sorted(self.cluster.mgr._by_path)

    def exists(self, path: str) -> bool:
        """True if the path is known to the mgr."""
        return self.cluster.mgr.lookup(path) is not None

    def stat(self, path: str) -> FileStat:
        """Physical layout of a file across the iods."""
        handle = self.cluster.mgr.lookup(path)
        if handle is None:
            raise FileNotFoundError(path)
        blocks_per_iod: dict[str, int] = {}
        for iod in self.cluster.iods:
            store = iod.node.filestore
            assert store is not None
            blocks_per_iod[iod.node.name] = len(
                store.blocks_of(handle.file_id)
            )
        return FileStat(
            path=path,
            file_id=handle.file_id,
            apparent_size=self._apparent_size(handle.file_id),
            blocks_per_iod=blocks_per_iod,
            stripe_size=handle.stripe_size,
        )

    def _apparent_size(self, file_id: int) -> int:
        top = 0
        for iod in self.cluster.iods:
            store = iod.node.filestore
            assert store is not None
            blocks = store.blocks_of(file_id)
            if blocks:
                # map the iod's highest local block back to the global
                # coordinate: blocks are stored under global block
                # numbers already.
                top = max(top, (blocks[-1] + 1) * store.block_size)
        return top

    def rm(self, path: str) -> int:
        """Drop a file's blocks from every iod; returns blocks freed.

        (Metadata entry is retained — PVFS 1.x unlink semantics with
        open handles are out of scope.)
        """
        handle = self.cluster.mgr.lookup(path)
        if handle is None:
            raise FileNotFoundError(path)
        freed = 0
        for iod in self.cluster.iods:
            store = iod.node.filestore
            assert store is not None
            blocks = store.blocks_of(handle.file_id)
            freed += store.delete_file(handle.file_id)
            pagecache = iod.node.pagecache
            assert pagecache is not None
            for block in blocks:
                pagecache.invalidate(handle.file_id, block)
        return freed

    def dd(
        self,
        path: str,
        block_size: int,
        count: int,
        mode: str = "read",
        use_cache: bool = True,
    ) -> dict[str, float]:
        """`dd`-style sequential transfer benchmark; returns stats."""
        if mode not in ("read", "write"):
            raise ValueError(f"dd mode must be read/write, got {mode!r}")
        client = self.cluster.client(self.node, use_cache=use_cache)
        client.record_metrics = False
        env = self.cluster.env

        def gen(env):
            handle = yield from client.open(path)
            start = env.now
            for i in range(count):
                if mode == "read":
                    yield from client.read(handle, i * block_size, block_size)
                else:
                    yield from client.write(
                        handle, i * block_size, block_size, None
                    )
            elapsed = env.now - start
            return elapsed

        elapsed = self._run(gen(env))
        total = block_size * count
        return {
            "bytes": float(total),
            "seconds": elapsed,
            "bytes_per_second": total / elapsed if elapsed else float("inf"),
        }
