"""repro: a reproduction of "Kernel-Level Caching for Optimizing I/O by
Exploiting Inter-Application Data Sharing" (Vilayannur, Kandemir,
Sivasubramaniam -- CLUSTER 2002).

The paper implemented a kernel-level, per-node shared I/O cache on top
of PVFS on a real Linux cluster.  This package reproduces the whole
system as a deterministic discrete-event simulation: the PVFS substrate
(mgr, iods, libpvfs), the cluster hardware (CPUs, disks, a 100 Mbps
network), and -- as the core contribution -- the cache module with its
buffer manager, flusher and harvester kernel threads, approximate-LRU
replacement, request-splitting FSM, and sync-write coherence.

Quick start::

    from repro import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(compute_nodes=4, iod_nodes=4))
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/data/matrix")
        yield from client.write(f, 0, 65536, b"a" * 65536)
        back = yield from client.read(f, 0, 65536, want_data=True)
        assert back == b"a" * 65536

    cluster.env.process(app(cluster.env))
    cluster.env.run()
"""

from repro.cluster import CacheConfig, Cluster, ClusterConfig, CostModel
from repro.metrics import Metrics
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "Environment",
    "Metrics",
    "__version__",
]
