"""Interprocedural may-yield race analysis and determinism dataflow.

The concurrency model of this codebase is cooperative: every process
is a generator and the *only* context-switch points are ``yield``
expressions.  A plain function body is therefore atomic, and a
read-modify-write of shared state is safe exactly when no may-yield
call separates the read from the write.  The runtime sanitizer
(``repro.analysis.sanitize``) checks this dynamically on the paths a
test happens to execute; this module proves it statically over the
whole program:

1. **Project index** — every module under the scanned roots is parsed
   and every function/method becomes a node in a project-wide call
   graph.  Calls are resolved like the lint's generator index
   (module-local names, ``from X import`` chains, ``self.method()``
   against the enclosing class) plus, for other attribute calls, the
   union of every scanned class defining that method name.
2. **May-yield fixed point** — a function *may yield* when its own
   body contains a ``yield``, or when it ``yield from``s a callee that
   may yield (unresolvable ``yield from`` targets are conservatively
   may-yield).  Classification is propagated to a fixed point over
   the call graph, so indirection of any depth is seen.
3. **Shared-state effects** — classes declare their cross-process
   structures with :func:`repro.analysis.shared.shared_state`; the
   analyzer tracks reads and writes of those attributes (method calls
   on them classify via ``MUTATING_METHODS``) and propagates each
   function's effect sets to its callers, again to a fixed point.
4. **Rules** —

   ``RPL100``
       A read of shared state, then a may-yield point, then a write
       of the same structure, with no single ``atomic_section``
       covering both endpoints: the decision made at the read can be
       stale by the time the write lands.
   ``RPL101``
       A may-yield point *inside* an ``atomic_section`` body: the
       section's atomicity claim is a lie — the runtime sanitizer
       would flag any mutation that slips in, but the static shape is
       wrong regardless of what the suite executes.
   ``RPL110``
       Iteration over an unordered collection (``set`` literals and
       comprehensions, ``set()``/``frozenset()`` calls, set-typed
       instance attributes, dict-of-set lookups) flowing into
       scheduling, message emission, or ordered capture: the
       simulation's event order then depends on the process hash
       seed, which breaks run-to-run reproducibility.  Wrapping the
       iterable in ``sorted(...)`` both fixes and suppresses it.

Suppression: ``# noqa: RPL1xx`` on the flagged line, or an entry in
the committed baseline file (``analysis_baseline.txt`` at the repo
root).  Baseline entries are line-number-free fingerprints
(``code|path|qualname|detail``) so they survive unrelated edits.

Known limitations (see DESIGN.md §15): dynamic dispatch through
``getattr``/handler tables is invisible; lambdas and nested ``def``s
are not inlined; effects of ``@property`` bodies do not propagate;
attribute matching is by name, not by points-to analysis.

Run as ``python -m repro.analysis flow [paths...]``.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import typing as _t
from pathlib import Path

from repro.analysis.lint import (
    Finding,
    _is_generator_fn,
    _iter_py_files,
    _suppressed,
)
from repro.analysis.shared import MUTATING_METHODS

#: Attribute calls that hand a generator to the scheduler instead of
#: driving it inline; generator arguments of these calls run in a
#: *separate* process, so their effects do not belong to this one.
_SPAWN_METHODS = frozenset({"process", "defer", "spawn"})

#: Method calls inside an unordered-iteration loop that make the
#: iteration order observable: scheduling, message emission, ordered
#: capture.
_SINK_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "call",
        "emit",
        "extend",
        "insert",
        "process",
        "push",
        "put",
        "schedule",
        "send",
        "setdefault",
        "spawn",
        "submit",
        "succeed",
    }
)

#: Set-algebra methods whose result is as unordered as their receiver.
_SET_COMBINATORS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtin callables a bare-name call may legitimately hit; resolved
#: to an empty candidate set (no effects on shared structures).
_BUILTIN_NAMES = frozenset(
    name for name in dir(__import__("builtins")) if not name.startswith("_")
)


@dataclasses.dataclass(frozen=True)
class FlowFinding(Finding):
    """A flow-analysis diagnostic; extends the lint finding with a
    stable identity for baselining."""

    qualname: str = ""
    detail: str = ""

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return "|".join(
            (self.code, _fingerprint_path(self.path), self.qualname, self.detail)
        )


@dataclasses.dataclass(frozen=True)
class AtomicSite:
    """One static ``with atomic_section(...)`` occurrence."""

    path: str
    line: int
    qualname: str
    label: str


def _fingerprint_path(path: str) -> str:
    """Normalise a finding path so fingerprints match regardless of
    whether the analyzer was invoked with absolute or relative paths."""
    posix = path.replace("\\", "/")
    for marker in ("/src/", "/tests/", "/benchmarks/"):
        idx = posix.rfind(marker)
        if idx >= 0:
            return posix[idx + 1 :]
    if posix.startswith(("src/", "tests/", "benchmarks/")):
        return posix
    return posix.rsplit("/", 1)[-1]


# ---------------------------------------------------------------------------
# Pass 1: the project index
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _FunctionDecl:
    """One function or method node in the call graph."""

    module: "_ModuleDecl"
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_generator: bool
    #: Linear event stream (built in pass 2).
    events: list[tuple] = dataclasses.field(default_factory=list)
    #: Fixed-point results.
    may_yield: bool = False
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name

    @property
    def key(self) -> str:
        return f"{self.module.key}::{self.qualname}"


@dataclasses.dataclass
class _ModuleDecl:
    """Per-module facts gathered by the index pass."""

    path: Path
    key: str
    tree: ast.Module
    source_lines: list[str]
    functions: dict[str, _FunctionDecl] = dataclasses.field(default_factory=dict)
    #: class name -> {method name -> decl}.
    classes: dict[str, dict[str, _FunctionDecl]] = dataclasses.field(
        default_factory=dict
    )
    #: class name -> shared-state attribute names from @shared_state.
    shared_attrs: dict[str, frozenset[str]] = dataclasses.field(
        default_factory=dict
    )
    #: class name -> set-typed instance attribute names.
    unordered_attrs: dict[str, frozenset[str]] = dataclasses.field(
        default_factory=dict
    )
    #: class name -> dict-of-set instance attribute names.
    dict_of_set_attrs: dict[str, frozenset[str]] = dataclasses.field(
        default_factory=dict
    )
    #: local name -> (module suffix, original name) for from-imports.
    imports: dict[str, tuple[str, str]] = dataclasses.field(default_factory=dict)
    #: alias -> dotted module for plain ``import X [as Y]``.
    import_modules: dict[str, str] = dataclasses.field(default_factory=dict)
    #: class name -> base class names (for super() resolution).
    class_bases: dict[str, tuple[str, ...]] = dataclasses.field(
        default_factory=dict
    )


def _shared_decl_from_decorators(node: ast.ClassDef) -> frozenset[str]:
    """Read ``@shared_state("a", "b")`` string literals off the AST."""
    attrs: set[str] = set()
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "shared_state":
            continue
        for arg in deco.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                attrs.add(arg.value)
    return frozenset(attrs)


def _annotation_kind(annotation: ast.expr) -> str | None:
    """Classify an annotation as ``"set"``, ``"dict_of_set"`` or None."""
    try:
        text = ast.unparse(annotation)
    except Exception:
        return None
    if text.startswith(("set[", "frozenset[", "Set[")) or text in (
        "set",
        "frozenset",
    ):
        return "set"
    if text.startswith(("dict[", "Dict[")) and (
        "set[" in text or "frozenset[" in text
    ):
        return "dict_of_set"
    return None


def _collection_attrs(
    node: ast.ClassDef,
) -> tuple[frozenset[str], frozenset[str]]:
    """Set-typed and dict-of-set instance attributes of a class,
    inferred from ``__init__`` assignments and annotations."""
    unordered: set[str] = set()
    dict_of_set: set[str] = set()

    def classify(attr: str, value: ast.expr | None, ann: ast.expr | None) -> None:
        if ann is not None:
            kind = _annotation_kind(ann)
            if kind == "set":
                unordered.add(attr)
                return
            if kind == "dict_of_set":
                dict_of_set.add(attr)
                return
        if value is None:
            return
        if isinstance(value, (ast.Set, ast.SetComp)):
            unordered.add(attr)
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in ("set", "frozenset"):
                unordered.add(attr)

    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            classify(item.target.id, item.value, item.annotation)
        if not (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "__init__"
        ):
            continue
        for stmt in ast.walk(item):
            target: ast.expr | None = None
            value: ast.expr | None = None
            ann: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, ann = stmt.target, stmt.value, stmt.annotation
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                classify(target.attr, value, ann)
    return frozenset(unordered), frozenset(dict_of_set)


class _ProjectIndex:
    """Cross-module registry of functions, methods and declarations."""

    def __init__(self) -> None:
        self.modules: dict[str, _ModuleDecl] = {}
        #: method name -> every decl of that name across scanned classes.
        self.method_owners: dict[str, list[_FunctionDecl]] = {}
        #: union of every declared shared-state attribute name.
        self.shared_names: frozenset[str] = frozenset()
        #: union of every set-typed attribute name.
        self.unordered_names: frozenset[str] = frozenset()
        #: union of every dict-of-set attribute name.
        self.dict_of_set_names: frozenset[str] = frozenset()

    def add_module(self, module: _ModuleDecl) -> None:
        self.modules[module.key] = module
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                decl = _FunctionDecl(
                    module=module,
                    cls=None,
                    name=node.name,
                    node=node,
                    is_generator=_is_generator_fn(node),
                )
                module.functions[node.name] = decl
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, _FunctionDecl] = {}
                for item in node.body:
                    if not isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    decl = _FunctionDecl(
                        module=module,
                        cls=node.name,
                        name=item.name,
                        node=item,
                        is_generator=_is_generator_fn(item),
                    )
                    methods[item.name] = decl
                    self.method_owners.setdefault(item.name, []).append(decl)
                module.classes[node.name] = methods
                module.class_bases[node.name] = tuple(
                    base.id
                    for base in node.bases
                    if isinstance(base, ast.Name)
                )
                shared = _shared_decl_from_decorators(node)
                if shared:
                    module.shared_attrs[node.name] = shared
                unordered, dict_of_set = _collection_attrs(node)
                if unordered:
                    module.unordered_attrs[node.name] = unordered
                if dict_of_set:
                    module.dict_of_set_attrs[node.name] = dict_of_set
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    module.import_modules[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name

    def finalise(self) -> None:
        shared: set[str] = set()
        unordered: set[str] = set()
        dict_of_set: set[str] = set()
        for module in self.modules.values():
            for attrs in module.shared_attrs.values():
                shared |= attrs
            for attrs in module.unordered_attrs.values():
                unordered |= attrs
            for attrs in module.dict_of_set_attrs.values():
                dict_of_set |= attrs
        self.shared_names = frozenset(shared)
        self.unordered_names = frozenset(unordered)
        self.dict_of_set_names = frozenset(dict_of_set)

    def module_by_suffix(self, dotted: str) -> _ModuleDecl | None:
        key = dotted.replace(".", "/")
        for mod_key in sorted(self.modules):
            if mod_key == key or mod_key.endswith("/" + key):
                return self.modules[mod_key]
        return None

    def all_functions(self) -> list[_FunctionDecl]:
        decls: list[_FunctionDecl] = []
        for key in sorted(self.modules):
            module = self.modules[key]
            decls.extend(module.functions.values())
            for methods in module.classes.values():
                decls.extend(methods.values())
        return decls


# ---------------------------------------------------------------------------
# Pass 2: per-function linear event streams
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _CallSite:
    """A resolved (or unresolvable) call occurrence."""

    display: str
    #: None = unresolved (conservative); tuple may be empty.
    candidates: tuple[_FunctionDecl, ...] | None
    driven: bool  # True when the call is driven by ``yield from``

    def gen_candidates(self) -> tuple[_FunctionDecl, ...]:
        return tuple(c for c in (self.candidates or ()) if c.is_generator)

    def plain_candidates(self) -> tuple[_FunctionDecl, ...]:
        return tuple(
            c for c in (self.candidates or ()) if not c.is_generator
        )

    def effect_candidates(self) -> tuple[_FunctionDecl, ...]:
        """Driven calls run generator bodies; plain calls run plain
        bodies (a plain call to a generator only *creates* it)."""
        return self.gen_candidates() if self.driven else self.plain_candidates()

    def may_yield(self) -> bool:
        if not self.driven:
            return False
        if self.candidates is None:
            return True
        return any(c.may_yield for c in self.gen_candidates())


class _EventBuilder(ast.NodeVisitor):
    """Build one function's linear event stream.

    Events (tuples, first element is the tag):

    - ``("read"|"write", struct, line)`` — shared-structure access
    - ``("yield", line, desc)`` — an intrinsic may-yield point
    - ``("call", _CallSite, line)`` — a call whose effects expand later
    - ``("atomic_enter", with_id, line, label)`` / ``("atomic_exit", with_id)``

    The stream linearises control flow (branches concatenate, loop
    bodies appear once); this over-approximates "a yield may occur
    between" which is the sound direction for RPL100.
    """

    def __init__(self, index: _ProjectIndex, fn: _FunctionDecl) -> None:
        self.index = index
        self.fn = fn
        self.module = fn.module
        self.events = fn.events
        self._spawn_depth = 0
        #: shared names declared by the enclosing class (for bare-Name
        #: local aliases; attribute chains match globally).
        self._own_shared: frozenset[str] = frozenset()
        if fn.cls is not None:
            self._own_shared = self.module.shared_attrs.get(
                fn.cls, frozenset()
            )

    def build(self) -> None:
        for stmt in self.fn.node.body:
            self.visit(stmt)

    # -- helpers ---------------------------------------------------------
    def _emit_access(self, struct: str, kind: str, line: int) -> None:
        self.events.append((kind, struct, line))

    def _match_chain(self, expr: ast.expr) -> str | None:
        """The shared structure an attribute chain (or local alias)
        refers to, or None.  The *last* segment in source order wins:
        ``self.manager.dirtylist`` matches ``dirtylist``."""
        segments: list[str] = []
        cur = expr
        while isinstance(cur, ast.Attribute):
            segments.append(cur.attr)
            cur = cur.value
        for segment in segments:  # outermost attribute = last in source
            if segment in self.index.shared_names:
                return segment
        if (
            not segments
            and isinstance(cur, ast.Name)
            and cur.id in self._own_shared
        ):
            return cur.id  # local alias of an own-class structure
        return None

    @staticmethod
    def _is_atomic_call(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name == "atomic_section"

    @staticmethod
    def _atomic_label(expr: ast.Call) -> str:
        for kw in expr.keywords:
            if kw.arg == "label" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    return kw.value.value
        return "atomic"

    def _is_spawn(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Attribute):
            return func.attr in _SPAWN_METHODS
        if isinstance(func, ast.Name):
            return func.id in _SPAWN_METHODS
        return False

    # -- call resolution -------------------------------------------------
    def _resolve(self, call: ast.Call, driven: bool) -> _CallSite:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            decl = self.module.functions.get(name)
            if decl is not None:
                return _CallSite(name, (decl,), driven)
            imported = self.module.imports.get(name)
            if imported is not None:
                source = self.index.module_by_suffix(imported[0])
                if source is not None:
                    target = source.functions.get(imported[1])
                    if target is not None:
                        return _CallSite(name, (target,), driven)
                    methods = source.classes.get(imported[1])
                    if methods is not None:  # imported class: constructor
                        init = methods.get("__init__")
                        return _CallSite(
                            name, (init,) if init else (), driven
                        )
            methods = self.module.classes.get(name)
            if methods is not None:  # local class: constructor call
                init = methods.get("__init__")
                return _CallSite(name, (init,) if init else (), driven)
            if name in _BUILTIN_NAMES:
                return _CallSite(name, (), driven)
            return _CallSite(name, None, driven)
        if isinstance(func, ast.Attribute):
            method = func.attr
            # super().method(): walk the enclosing class's resolvable
            # bases rather than falling through to the global owner
            # union (which for a dunder like __init__ would union every
            # constructor in the project and saturate effect sets).
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                return _CallSite(
                    f"super().{method}", self._resolve_super(method), driven
                )
            # self.method(): the enclosing class wins when it defines it.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.fn.cls is not None
            ):
                own = self.module.classes.get(self.fn.cls, {})
                if method in own:
                    return _CallSite(f"self.{method}", (own[method],), driven)
            # module alias: protocol.coalesce_ranges(...)
            if isinstance(func.value, ast.Name):
                base = func.value.id
                dotted = self.module.import_modules.get(base)
                if dotted is None and base in self.module.imports:
                    mod, orig = self.module.imports[base]
                    dotted = f"{mod}.{orig}"
                if dotted is not None:
                    source = self.index.module_by_suffix(dotted)
                    if source is not None and method in source.functions:
                        return _CallSite(
                            f"{base}.{method}",
                            (source.functions[method],),
                            driven,
                        )
            if method.startswith("__") and method.endswith("__"):
                # Dunder names are defined by nearly every class; the
                # global owner union would be pure noise.  Treat the
                # call as effect-free (dunders here are protocol hooks
                # like __len__/__contains__ on unmatched receivers).
                return _CallSite(f".{method}", (), driven)
            owners = self.index.method_owners.get(method)
            if owners:
                return _CallSite(f".{method}", tuple(owners), driven)
            return _CallSite(f".{method}", None, driven)
        return _CallSite("<dynamic>", None, driven)

    def _resolve_super(self, method: str) -> tuple[_FunctionDecl, ...]:
        """Candidates for ``super().method()``: every resolvable base
        of the enclosing class (breadth-first) that defines it."""
        if self.fn.cls is None:
            return ()
        found: list[_FunctionDecl] = []
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[_ModuleDecl, str]] = [
            (self.module, base)
            for base in self.module.class_bases.get(self.fn.cls, ())
        ]
        while queue:
            module, name = queue.pop(0)
            if name not in module.classes and name in module.imports:
                mod, orig = module.imports[name]
                source = self.index.module_by_suffix(mod)
                if source is None:
                    continue
                module, name = source, orig
            if (module.key, name) in seen:
                continue
            seen.add((module.key, name))
            methods = module.classes.get(name)
            if methods is None:
                continue
            if method in methods:
                found.append(methods[method])
            else:
                queue.extend(
                    (module, base)
                    for base in module.class_bases.get(name, ())
                )
        return tuple(found)

    # -- structure visitors ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are separate (un-analysed) closures

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # lambda bodies run later, at an unknown point

    def visit_With(self, node: ast.With) -> None:
        atomic_items = [
            item
            for item in node.items
            if self._is_atomic_call(item.context_expr)
        ]
        if not atomic_items:
            self.generic_visit(node)
            return
        with_id = id(node)
        label = self._atomic_label(
            _t.cast(ast.Call, atomic_items[0].context_expr)
        )
        self.events.append(("atomic_enter", with_id, node.lineno, label))
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        self.events.append(("atomic_exit", with_id))

    # -- accesses --------------------------------------------------------
    def _visit_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element)
            return
        if isinstance(target, ast.Starred):
            self._visit_target(target.value)
            return
        if isinstance(target, ast.Attribute):
            struct = self._match_chain(target)
            if struct is not None:
                self._emit_access(struct, "write", target.lineno)
            else:
                self.visit(target.value)
            return
        if isinstance(target, ast.Subscript):
            struct = self._match_chain(target.value)
            if struct is not None:
                self._emit_access(struct, "write", target.lineno)
            else:
                self.visit(target.value)
            self.visit(target.slice)
            return
        # bare Name targets rebind locals; not a structure write

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._visit_target(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._visit_target(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        struct = None
        if isinstance(node.target, ast.Attribute):
            struct = self._match_chain(node.target)
        elif isinstance(node.target, ast.Subscript):
            struct = self._match_chain(node.target.value)
        if struct is not None:
            self._emit_access(struct, "read", node.lineno)
        self.visit(node.value)
        self._visit_target(node.target)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_target(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            struct = self._match_chain(node)
            if struct is not None:
                self._emit_access(struct, "read", node.lineno)
                return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self._own_shared:
            self._emit_access(node.id, "read", node.lineno)

    # -- calls and yields ------------------------------------------------
    def _visit_call(self, node: ast.Call, driven: bool) -> None:
        func = node.func
        if self._is_spawn(func):
            # Generator arguments are handed to the scheduler: their
            # bodies run in another process, so only argument
            # *evaluation* belongs here.
            self._spawn_depth += 1
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)
            self._spawn_depth -= 1
            return
        receiver_struct: str | None = None
        if isinstance(func, ast.Attribute):
            receiver_struct = self._match_chain(func.value)
            if receiver_struct is not None:
                kind = "write" if func.attr in MUTATING_METHODS else "read"
                self._emit_access(receiver_struct, kind, node.lineno)
            else:
                self.visit(func.value)
        elif not isinstance(func, ast.Name):
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        if self._spawn_depth:
            return  # creating, not running: effects belong elsewhere
        if receiver_struct is not None and not driven:
            # Method calls *on* a shared container are leaf dict/list
            # operations; the access above is the whole effect.
            return
        site = self._resolve(node, driven)
        self.events.append(("call", site, node.lineno))

    def visit_Call(self, node: ast.Call) -> None:
        self._visit_call(node, driven=False)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.events.append(("yield", node.lineno, "yield"))

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if isinstance(node.value, ast.Call):
            self._visit_call(node.value, driven=True)
        else:
            self.visit(node.value)
            self.events.append(
                ("yield", node.lineno, "yield from <expression>")
            )


# ---------------------------------------------------------------------------
# Pass 3: fixed-point may-yield + effect propagation
# ---------------------------------------------------------------------------


def _fixed_point(functions: list[_FunctionDecl]) -> None:
    changed = True
    while changed:
        changed = False
        for fn in functions:
            may_yield = False
            reads: set[str] = set()
            writes: set[str] = set()
            for event in fn.events:
                tag = event[0]
                if tag == "read":
                    reads.add(event[1])
                elif tag == "write":
                    writes.add(event[1])
                elif tag == "yield":
                    may_yield = True
                elif tag == "call":
                    site: _CallSite = event[1]
                    if site.may_yield():
                        may_yield = True
                    for callee in site.effect_candidates():
                        reads |= callee.reads
                        writes |= callee.writes
            # Only generators can suspend their caller.
            may_yield = may_yield and fn.is_generator
            new_reads = frozenset(reads)
            new_writes = frozenset(writes)
            if (
                may_yield != fn.may_yield
                or new_reads != fn.reads
                or new_writes != fn.writes
            ):
                fn.may_yield = may_yield
                fn.reads = new_reads
                fn.writes = new_writes
                changed = True


# ---------------------------------------------------------------------------
# Pass 4a: RPL100/RPL101 — the read-modify-write scan
# ---------------------------------------------------------------------------


def _scan_rmw(fn: _FunctionDecl, findings: list[FlowFinding]) -> None:
    if not fn.is_generator:
        return  # plain bodies are atomic by construction

    def emit(code: str, line: int, message: str, detail: str) -> None:
        findings.append(
            FlowFinding(
                path=str(fn.module.path),
                line=line,
                col=0,
                code=code,
                message=message,
                qualname=fn.qualname,
                detail=detail,
            )
        )

    atomic_stack: list[tuple[int, str]] = []  # (with_id, label)
    reported_sections: set[int] = set()
    #: struct -> (read line, atomic ids active at the read)
    open_reads: dict[str, tuple[int, frozenset[int]]] = {}
    #: struct -> (read line, yield line, yield desc, atomic ids at read)
    armed: dict[str, tuple[int, int, str, frozenset[int]]] = {}

    def note_yield(line: int, desc: str) -> None:
        if atomic_stack:
            with_id, label = atomic_stack[-1]
            if with_id not in reported_sections:
                reported_sections.add(with_id)
                emit(
                    "RPL101",
                    line,
                    f"may-yield point ({desc}) inside atomic_section "
                    f"{label!r}: a context switch can interleave with "
                    "the section's supposedly-atomic updates",
                    label,
                )
        for struct in sorted(open_reads):
            if struct not in armed:
                read_line, stack = open_reads[struct]
                armed[struct] = (read_line, line, desc, stack)
        open_reads.clear()

    def note_read(struct: str, line: int) -> None:
        if struct not in open_reads and struct not in armed:
            open_reads[struct] = (
                line,
                frozenset(wid for wid, _ in atomic_stack),
            )

    def note_write(struct: str, line: int) -> None:
        write_stack = frozenset(wid for wid, _ in atomic_stack)
        if struct in armed:
            read_line, yield_line, desc, read_stack = armed.pop(struct)
            if not (read_stack & write_stack):
                emit(
                    "RPL100",
                    line,
                    f"read-modify-write of shared {struct!r} spans a "
                    f"may-yield point: read at line {read_line}, may "
                    f"yield at line {yield_line} ({desc}), written back "
                    "here with no atomic_section covering both ends",
                    struct,
                )
        open_reads.pop(struct, None)  # the write supersedes the read

    for event in fn.events:
        tag = event[0]
        if tag == "atomic_enter":
            atomic_stack.append((event[1], event[3]))
        elif tag == "atomic_exit":
            if atomic_stack and atomic_stack[-1][0] == event[1]:
                atomic_stack.pop()
        elif tag == "yield":
            note_yield(event[1], event[2])
        elif tag == "read":
            note_read(event[1], event[2])
        elif tag == "write":
            note_write(event[1], event[2])
        elif tag == "call":
            site: _CallSite = event[1]
            line = event[2]
            if site.may_yield():
                note_yield(line, f"{site.display}(...)")
            callee_reads: set[str] = set()
            callee_writes: set[str] = set()
            for callee in site.effect_candidates():
                callee_reads |= callee.reads
                callee_writes |= callee.writes
            for struct in sorted(callee_reads):
                note_read(struct, line)
            for struct in sorted(callee_writes):
                note_write(struct, line)


# ---------------------------------------------------------------------------
# Pass 4b: RPL110 — the determinism dataflow pass
# ---------------------------------------------------------------------------


class _DeterminismChecker(ast.NodeVisitor):
    """Flag unordered-collection iteration whose order becomes
    observable (scheduling, emission, ordered capture)."""

    def __init__(
        self,
        index: _ProjectIndex,
        fn: _FunctionDecl,
        findings: list[FlowFinding],
    ) -> None:
        self.index = index
        self.fn = fn
        self.findings = findings
        self.local_unordered: set[str] = set()

    def run(self) -> None:
        for stmt in ast.walk(self.fn.node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt is not self.fn.node:
                    continue
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and self._is_unordered(stmt.value)
            ):
                self.local_unordered.add(stmt.targets[0].id)
        for stmt in self.fn.node.body:
            self.visit(stmt)

    # -- classification --------------------------------------------------
    def _is_unordered(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.local_unordered
        if isinstance(expr, ast.Attribute):
            return expr.attr in self.index.unordered_names
        if isinstance(expr, ast.Subscript):
            value = expr.value
            return (
                isinstance(value, ast.Attribute)
                and value.attr in self.index.dict_of_set_names
            )
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_unordered(expr.left) or self._is_unordered(
                expr.right
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_COMBINATORS:
                    return self._is_unordered(func.value)
                if func.attr == "get" and isinstance(
                    func.value, ast.Attribute
                ):
                    return (
                        func.value.attr in self.index.dict_of_set_names
                    )
        return False

    def _emit(self, node: ast.AST, iterable: ast.expr, sink: str) -> None:
        try:
            what = ast.unparse(iterable)
        except Exception:
            what = "<expression>"
        self.findings.append(
            FlowFinding(
                path=str(self.fn.module.path),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code="RPL110",
                message=(
                    f"iteration over unordered '{what}' {sink}; the "
                    "order depends on the hash seed, which breaks "
                    "run-to-run determinism — iterate sorted(...) "
                    "instead"
                ),
                qualname=self.fn.qualname,
                detail=what[:80],
            )
        )

    # -- sinks -----------------------------------------------------------
    @staticmethod
    def _sorted_call(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("sorted", "min", "max", "sum", "len")
        )

    def _body_sink(self, body: list[ast.stmt]) -> str | None:
        todo: list[ast.AST] = list(body)
        while todo:
            node = todo.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields into the scheduler inside the loop"
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _SINK_METHODS:
                    return f"calls .{node.func.attr}(...) inside the loop"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(isinstance(t, ast.Subscript) for t in targets):
                    return "stores per-element results in iteration order"
            todo.extend(ast.iter_child_nodes(node))
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes analysed separately (not at all)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_For(self, node: ast.For) -> None:
        if not self._sorted_call(node.iter) and self._is_unordered(node.iter):
            sink = self._body_sink(node.body)
            if sink is not None:
                self._emit(node, node.iter, sink)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def _check_comp(self, node: ast.ListComp | ast.DictComp) -> None:
        for gen in node.generators:
            if not self._sorted_call(gen.iter) and self._is_unordered(
                gen.iter
            ):
                self._emit(
                    node,
                    gen.iter,
                    "is captured into an ordered container",
                )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and self._is_unordered(node.args[0])
        ):
            self._emit(
                node,
                node.args[0],
                "is materialised into an ordered container",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Atomic-site enumeration (for --runtime-coverage)
# ---------------------------------------------------------------------------


def _collect_atomic_sites(fn: _FunctionDecl) -> list[AtomicSite]:
    sites: list[AtomicSite] = []
    for event in fn.events:
        if event[0] == "atomic_enter":
            sites.append(
                AtomicSite(
                    path=str(fn.module.path),
                    line=event[2],
                    qualname=fn.qualname,
                    label=event[3],
                )
            )
    return sites


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FlowReport:
    """Everything one analysis run produced."""

    findings: list[FlowFinding]
    #: "module-key::qualname" -> may-yield classification.
    may_yield: dict[str, bool]
    atomic_sites: list[AtomicSite]

    def classification(self, suffix: str) -> bool:
        """May-yield lookup by qualname suffix (test convenience)."""
        matches = [
            yields
            for key, yields in self.may_yield.items()
            if key == suffix or key.endswith("::" + suffix)
        ]
        if len(matches) != 1:
            raise KeyError(f"{suffix!r} matches {len(matches)} functions")
        return matches[0]


def analyze_paths(paths: _t.Sequence[Path]) -> FlowReport:
    """Analyse every ``.py`` file under ``paths``.

    Returns findings (noqa-suppressed ones already removed, sorted by
    location), the full may-yield classification, and every static
    ``atomic_section`` site."""
    files = _iter_py_files([Path(p) for p in paths])
    index = _ProjectIndex()
    for file in files:
        source = file.read_text()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raise SystemExit(f"{file}: cannot parse: {exc}") from exc
        key = str(file.with_suffix("")).replace("\\", "/")
        index.add_module(
            _ModuleDecl(
                path=file,
                key=key,
                tree=tree,
                source_lines=source.splitlines(),
            )
        )
    index.finalise()
    functions = index.all_functions()
    for fn in functions:
        _EventBuilder(index, fn).build()
    _fixed_point(functions)

    findings: list[FlowFinding] = []
    atomic_sites: list[AtomicSite] = []
    for fn in functions:
        _scan_rmw(fn, findings)
        _DeterminismChecker(index, fn, findings).run()
        atomic_sites.extend(_collect_atomic_sites(fn))

    kept = [
        f
        for f in findings
        if not _suppressed(
            index.modules[
                str(Path(f.path).with_suffix("")).replace("\\", "/")
            ].source_lines,
            f,
        )
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return FlowReport(
        findings=kept,
        may_yield={fn.key: fn.may_yield for fn in functions},
        atomic_sites=atomic_sites,
    )


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    """Fingerprints accepted by the committed baseline (blank lines
    and ``#`` comments ignored)."""
    if not path.exists():
        return set()
    entries: set[str] = set()
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def apply_baseline(
    findings: _t.Sequence[FlowFinding], baseline: set[str]
) -> tuple[list[FlowFinding], set[str]]:
    """Split findings into (unbaselined, used-entries)."""
    unbaselined: list[FlowFinding] = []
    used: set[str] = set()
    for finding in findings:
        fp = finding.fingerprint()
        if fp in baseline:
            used.add(fp)
        else:
            unbaselined.append(finding)
    return unbaselined, used


def write_baseline(findings: _t.Sequence[FlowFinding], path: Path) -> None:
    """Write the sorted, de-duplicated fingerprints to ``path``."""
    header = (
        "# repro.analysis.flow accepted-findings baseline.\n"
        "# One fingerprint per line: code|path|qualname|detail.\n"
        "# Regenerate with: python -m repro.analysis flow --write-baseline\n"
        "# (regeneration drops the explanatory comments — re-add them).\n"
    )
    fingerprints = sorted({f.fingerprint() for f in findings})
    path.write_text(header + "".join(fp + "\n" for fp in fingerprints))


def _default_baseline_path() -> Path:
    return Path(__file__).resolve().parents[3] / "analysis_baseline.txt"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: _t.Sequence[str]) -> int:
    """CLI entry point for ``python -m repro.analysis flow``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis flow",
        description="interprocedural may-yield race / determinism analysis",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: analysis_baseline.txt at repo root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file",
    )
    parser.add_argument(
        "--runtime-coverage",
        metavar="FILE",
        default=None,
        help=(
            "compare static atomic_section sites against the labels "
            "recorded at runtime (REPRO_ATOMIC_COVERAGE_FILE) and "
            "report never-executed sections as coverage gaps"
        ),
    )
    ns = parser.parse_args(list(argv))

    targets = [Path(p) for p in ns.paths]
    if not targets:
        targets = [Path(__file__).resolve().parents[2]]
    report = analyze_paths(targets)

    if ns.runtime_coverage is not None:
        return _coverage_mode(report, Path(ns.runtime_coverage))

    baseline_path = (
        Path(ns.baseline) if ns.baseline else _default_baseline_path()
    )
    if ns.write_baseline:
        write_baseline(report.findings, baseline_path)
        print(
            f"wrote {len(report.findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = load_baseline(baseline_path)
    unbaselined, used = apply_baseline(report.findings, baseline)
    for finding in unbaselined:
        print(finding.render())
    stale = len(baseline) - len(used)
    if stale:
        print(f"note: {stale} stale baseline entr{'y' if stale == 1 else 'ies'}")
    if unbaselined:
        print(f"{len(unbaselined)} finding(s)")
        return 1
    print(f"clean ({len(used)} baselined finding(s))")
    return 0


def _coverage_mode(report: FlowReport, coverage_file: Path) -> int:
    executed: set[str] = set()
    if coverage_file.exists():
        executed = {
            line.strip()
            for line in coverage_file.read_text().splitlines()
            if line.strip()
        }
    gaps = [s for s in report.atomic_sites if s.label not in executed]
    for site in gaps:
        print(
            f"{site.path}:{site.line}: atomic_section {site.label!r} in "
            f"{site.qualname} was never executed by the recorded run"
        )
    unknown = executed - {s.label for s in report.atomic_sites}
    for label in sorted(unknown):
        print(f"note: runtime label {label!r} has no static site")
    total = len(report.atomic_sites)
    if gaps:
        print(f"{len(gaps)}/{total} atomic_section site(s) uncovered")
        return 1
    print(f"all {total} atomic_section site(s) covered")
    return 0
