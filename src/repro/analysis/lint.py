"""Custom AST lint for simulation-specific hazards.

Generic linters do not know that this codebase's concurrency is built
from generator processes, so its most dangerous bugs are invisible to
them: calling a *yielding helper* (a generator function such as
``FreeList.acquire`` or ``CacheModule.read``) without ``yield from``
creates a generator object, throws it away, and silently performs
nothing — the simulation keeps running with the operation skipped.
This lint walks the source tree and flags exactly those hazards:

``RPL001``
    A yielding helper called as a bare statement: the returned
    generator is discarded and the helper's body never runs.
``RPL002``
    ``yield helper(...)`` where ``helper`` is a generator function:
    the process yields a raw generator instead of an Event (use
    ``yield from helper(...)`` or wrap it in ``env.process(...)``).
``RPL003``
    Mutable default argument (shared across calls).
``RPL004``
    Module-level mutable state with no reset hook registered via
    :func:`repro.analysis.reset.register_reset` — such state leaks
    between tests and across sweep points.
``RPL005``
    Bare ``except:`` anywhere; or ``except BaseException`` /
    ``except GeneratorExit`` inside a generator function without a
    re-raise — swallowing ``GeneratorExit`` breaks ``Process.kill``.
``RPL006``
    Direct ``heapq`` import outside ``repro.sim``: the event queue is
    a seam (timer wheel + far heap, DESIGN.md §14), and code that
    heap-manages simulation timestamps itself bypasses the engine's
    ordering, stats, and compaction.  Schedule through
    ``Environment``/``Timer`` instead.
``RPL007``
    Reaching into another shard's objects outside ``repro.sim``:
    attribute access through a subscripted ``*shards[...]`` container
    (``runner.shards[0].env``, ``self._shards[i].cluster``...)
    touches state owned by a different shard's event loop, which the
    conservative parallel engine (DESIGN.md §17) only keeps coherent
    at lookahead barriers.  Cross-shard effects must travel as
    :class:`repro.sim.mailbox.Envelope` objects through the
    ``InterShardMailbox`` API.

Yielding helpers are resolved in three tiers: module-local generator
functions (including names imported from scanned modules),
``self.method(...)`` against the enclosing class, and — for other
attribute calls — a method name is trusted only when *every* scanned
class defining it makes it a generator (ambiguous names are skipped
rather than guessed).

Suppression: append ``# noqa: RPL00x`` (or a blanket ``# noqa``) to
the flagged line, with a comment saying why.

Run as ``python -m repro.analysis lint [paths...]``.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import typing as _t
from pathlib import Path

#: Calls producing a fresh mutable object when seen in a default or a
#: module-level assignment.
_MUTABLE_CALL_NAMES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "count",
    }
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.I)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint diagnostic."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The one-line report format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _is_generator_fn(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function's own body yields (nested defs excluded)."""
    todo: list[ast.AST] = list(node.body)
    while todo:
        current = todo.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            return True
        todo.extend(ast.iter_child_nodes(current))
    return False


@dataclasses.dataclass
class _ModuleInfo:
    """Per-module facts gathered by the index pass."""

    path: Path
    tree: ast.Module
    source_lines: list[str]
    #: Module-level generator function names.
    gen_functions: set[str] = dataclasses.field(default_factory=set)
    #: Module-level non-generator function names.
    plain_functions: set[str] = dataclasses.field(default_factory=set)
    #: class name -> {method name -> is_generator}.
    classes: dict[str, dict[str, bool]] = dataclasses.field(
        default_factory=dict
    )
    #: local name -> (source module suffix, original name) for
    #: ``from X import name`` statements.
    imports: dict[str, tuple[str, str]] = dataclasses.field(
        default_factory=dict
    )


class GeneratorIndex:
    """Cross-module registry of yielding helpers."""

    def __init__(self) -> None:
        self.modules: dict[str, _ModuleInfo] = {}
        #: method name -> classes defining it as a generator.
        self.method_gen_owners: dict[str, set[str]] = {}
        #: method name -> classes defining it as a plain callable.
        self.method_plain_owners: dict[str, set[str]] = {}

    def add_module(self, key: str, info: _ModuleInfo) -> None:
        """Index one parsed module's yielding functions and methods."""
        self.modules[key] = info
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.decorator_list:
                    continue  # decorators may change call semantics
                if _is_generator_fn(node):
                    info.gen_functions.add(node.name)
                else:
                    info.plain_functions.add(node.name)
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, bool] = {}
                for item in node.body:
                    if not isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if item.decorator_list:
                        continue
                    methods[item.name] = _is_generator_fn(item)
                info.classes[node.name] = methods
                for method, is_gen in methods.items():
                    owners = (
                        self.method_gen_owners
                        if is_gen
                        else self.method_plain_owners
                    )
                    owners.setdefault(method, set()).add(node.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    info.imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    # -- resolution ------------------------------------------------------
    def name_is_yielding(self, info: _ModuleInfo, name: str) -> bool:
        """Does the bare name resolve to a generator function?"""
        if name in info.gen_functions:
            return True
        if name in info.plain_functions:
            return False
        imported = info.imports.get(name)
        if imported is None:
            return False
        module_suffix, original = imported
        source = self._module_by_suffix(module_suffix)
        return source is not None and original in source.gen_functions

    def _module_by_suffix(self, dotted: str) -> _ModuleInfo | None:
        key = dotted.replace(".", "/")
        for mod_key, info in self.modules.items():
            if mod_key == key or mod_key.endswith("/" + key):
                return info
        return None

    def method_is_yielding(
        self, info: _ModuleInfo, class_name: str | None, call: ast.Call
    ) -> bool:
        """Does an attribute call resolve to a generator method?"""
        func = call.func
        assert isinstance(func, ast.Attribute)
        method = func.attr
        # self.method(): resolve against the enclosing class only.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and class_name is not None
        ):
            methods = info.classes.get(class_name, {})
            if method in methods:
                return methods[method]
            # Fall through: inherited methods resolve by global name.
        # Other receivers: trust the name only when it is unambiguous
        # across every scanned class.
        gen_owners = self.method_gen_owners.get(method)
        if not gen_owners:
            return False
        if self.method_plain_owners.get(method):
            return False  # ambiguous: some class makes it non-yielding
        return True


def _suppressed(lines: list[str], finding: Finding) -> bool:
    """True when the finding's source line carries a matching noqa."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # blanket noqa
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return finding.code in wanted


def _is_mutable_value(node: ast.AST) -> bool:
    """Does evaluating ``node`` build a fresh mutable container?"""
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CALL_NAMES
    return False


def _registered_reset_names(tree: ast.Module) -> set[str]:
    """Names whose reset is registered via ``register_reset``.

    Covers both direct arguments (``register_reset(fn)`` /
    decorator form) and the globals those hook functions rebind.
    """
    def _callable_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    hook_fn_names: set[str] = set()
    direct: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if _callable_name(node.func) == "register_reset":
                for arg in node.args:
                    for name_node in ast.walk(arg):
                        if isinstance(name_node, ast.Name):
                            direct.add(name_node.id)
                            hook_fn_names.add(name_node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                if _callable_name(deco) == "register_reset":
                    hook_fn_names.add(node.name)
    # Globals rebound by the registered hook functions.
    rebound: set[str] = set()
    for node in tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in hook_fn_names
        ):
            for inner in ast.walk(node):
                if isinstance(inner, ast.Global):
                    rebound.update(inner.names)
                elif isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        if isinstance(target, ast.Name):
                            rebound.add(target.id)
    return direct | rebound


class _ModuleLinter(ast.NodeVisitor):
    """Pass 2: walk one module and emit findings."""

    def __init__(self, index: GeneratorIndex, info: _ModuleInfo) -> None:
        self.index = index
        self.info = info
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        self._function_stack: list[bool] = []  # is-generator flags

    # -- helpers ---------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.info.path),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    def _call_is_yielding(self, call: ast.Call) -> str | None:
        """Resolve a call; returns the helper's display name if it is
        a generator function, else None."""
        func = call.func
        if isinstance(func, ast.Name):
            if self.index.name_is_yielding(self.info, func.id):
                return func.id
            return None
        if isinstance(func, ast.Attribute):
            class_name = self._class_stack[-1] if self._class_stack else None
            if self.index.method_is_yielding(self.info, class_name, call):
                return func.attr
        return None

    # -- structure visitors ----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_mutable_defaults(node)
        self._function_stack.append(_is_generator_fn(node))
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- RPL001 / RPL002 -------------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            helper = self._call_is_yielding(value)
            if helper is not None:
                self._emit(
                    node,
                    "RPL001",
                    f"call to yielding helper {helper}() discards the "
                    "generator; the helper's body never runs (use "
                    "'yield from' or env.process(...))",
                )
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if isinstance(node.value, ast.Call):
            helper = self._call_is_yielding(node.value)
            if helper is not None:
                self._emit(
                    node,
                    "RPL002",
                    f"'yield {helper}(...)' yields a raw generator, not "
                    "an Event (use 'yield from' or env.process(...))",
                )
        self.generic_visit(node)

    # -- RPL003 ----------------------------------------------------------
    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_value(default):
                self._emit(
                    default,
                    "RPL003",
                    f"mutable default argument in {node.name}() is "
                    "shared across calls",
                )

    # -- RPL005 ----------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                node,
                "RPL005",
                "bare 'except:' catches GeneratorExit and breaks "
                "Process.kill (name the exceptions)",
            )
        elif self._function_stack and self._function_stack[-1]:
            caught = self._caught_names(node.type)
            if caught & {"BaseException", "GeneratorExit"}:
                if not any(
                    isinstance(inner, ast.Raise)
                    for inner in ast.walk(node)
                ):
                    self._emit(
                        node,
                        "RPL005",
                        "generator swallows "
                        f"{'/'.join(sorted(caught))} without re-raising; "
                        "GeneratorExit must propagate for Process.kill",
                    )
        self.generic_visit(node)

    @staticmethod
    def _caught_names(node: ast.expr) -> set[str]:
        names: set[str] = set()
        nodes = node.elts if isinstance(node, ast.Tuple) else [node]
        for item in nodes:
            if isinstance(item, ast.Name):
                names.add(item.id)
            elif isinstance(item, ast.Attribute):
                names.add(item.attr)
        return names

    # -- RPL006 ----------------------------------------------------------
    def check_heapq_imports(self) -> None:
        """Flag ``heapq`` imports outside the ``repro.sim`` package."""
        posix_path = str(self.info.path).replace("\\", "/")
        if "repro/sim/" in posix_path:
            return
        for node in ast.walk(self.info.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == "heapq" for alias in node.names):
                    self._emit(node, "RPL006", self._HEAPQ_MSG)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq":
                    self._emit(node, "RPL006", self._HEAPQ_MSG)

    _HEAPQ_MSG = (
        "direct heapq use outside repro.sim bypasses the engine's "
        "event-queue seam (ordering, stats, timer compaction); "
        "schedule via Environment/Timer instead"
    )

    # -- RPL007 ----------------------------------------------------------
    #: Attributes that are part of the inter-shard mailbox API and
    #: therefore legitimate to touch on a shard handle.
    _SHARD_API_ATTRS = frozenset({"mailbox"})

    def visit_Attribute(self, node: ast.Attribute) -> None:
        posix_path = str(self.info.path).replace("\\", "/")
        if "repro/sim/" not in posix_path:
            value = node.value
            if isinstance(value, ast.Subscript):
                base = value.value
                base_name = None
                if isinstance(base, ast.Name):
                    base_name = base.id
                elif isinstance(base, ast.Attribute):
                    base_name = base.attr
                if (
                    base_name is not None
                    and base_name.lower().endswith("shards")
                    and node.attr not in self._SHARD_API_ATTRS
                ):
                    self._emit(
                        node,
                        "RPL007",
                        f"reaching into shard object attribute "
                        f"{node.attr!r} via {base_name}[...] bypasses "
                        "the inter-shard mailbox; cross-shard effects "
                        "must travel as Envelopes through the "
                        "InterShardMailbox API (DESIGN.md §17)",
                    )
        self.generic_visit(node)

    # -- RPL004 ----------------------------------------------------------
    def check_module_state(self) -> None:
        registered = _registered_reset_names(self.info.tree)
        for node in self.info.tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            annotation: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
                annotation = node.annotation
            if value is None or not _is_mutable_value(value):
                continue
            if annotation is not None and "Final" in ast.dump(annotation):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") or name.isupper():
                    continue  # dunder / constant-by-convention
                if name in registered:
                    continue
                self._emit(
                    node,
                    "RPL004",
                    f"module-level mutable state {name!r} has no "
                    "registered test-reset hook (see "
                    "repro.analysis.reset.register_reset)",
                )


def _iter_py_files(paths: _t.Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: _t.Sequence[Path]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns findings
    (noqa-suppressed ones already removed), sorted by location."""
    files = _iter_py_files([Path(p) for p in paths])
    index = GeneratorIndex()
    infos: list[tuple[str, _ModuleInfo]] = []
    for file in files:
        source = file.read_text()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raise SystemExit(f"{file}: cannot parse: {exc}") from exc
        key = str(file.with_suffix("")).replace("\\", "/")
        info = _ModuleInfo(
            path=file, tree=tree, source_lines=source.splitlines()
        )
        index.add_module(key, info)
        infos.append((key, info))
    findings: list[Finding] = []
    for _key, info in infos:
        linter = _ModuleLinter(index, info)
        linter.visit(info.tree)
        linter.check_module_state()
        linter.check_heapq_imports()
        findings.extend(
            f
            for f in linter.findings
            if not _suppressed(info.source_lines, f)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def main(argv: _t.Sequence[str]) -> int:
    """CLI entry point for ``python -m repro.analysis lint``."""
    targets = [Path(a) for a in argv]
    if not targets:
        # Default: the source tree this installed package lives in.
        package_root = Path(__file__).resolve().parents[2]
        targets = [package_root]
    findings = lint_paths(targets)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("clean")
    return 0
