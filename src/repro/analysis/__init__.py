"""Correctness substrate: static lint, runtime sanitizer, determinism.

The cache module is a concurrent buffer manager — hash table, free
list, dirty list, a flusher and a harvester racing the application
processes — reproduced here with cooperative generator processes.
This package holds the tooling that keeps that concurrency honest:

* :mod:`repro.analysis.lint` — a custom AST lint for sim-specific
  hazards (yielding helpers called without ``yield from``, mutable
  defaults, unregistered module-level state, swallowed
  ``GeneratorExit``).  Run as ``python -m repro.analysis lint``.
* :mod:`repro.analysis.flow` — the interprocedural may-yield race
  analyzer: project-wide call graph, fixed-point may-yield
  classification, shared-state effect propagation (RPL100/RPL101)
  and the determinism dataflow pass (RPL110).  Shared structures are
  declared with :func:`repro.analysis.shared.shared_state`.  Run as
  ``python -m repro.analysis flow``.
* :mod:`repro.analysis.sanitize` — an opt-in (``REPRO_SANITIZE=1``)
  runtime checker validating the block-accounting invariant of every
  :class:`~repro.cache.manager.BufferManager` at scheduler-step
  granularity, plus :func:`~repro.analysis.sanitize.atomic_section`,
  a yield-interleaving race detector for declared critical sections.
* :mod:`repro.analysis.determinism` — schedule trace hashes proving
  same-seed runs identical, serial or through the parallel sweep.
* :mod:`repro.analysis.reset` — the registry of test-reset hooks for
  module-level mutable state (enforced by lint rule RPL004).
"""

from repro.analysis.flow import FlowFinding, FlowReport, analyze_paths
from repro.analysis.lint import Finding, lint_paths
from repro.analysis.reset import register_reset, reset_all
from repro.analysis.shared import declared_shared, shared_state
from repro.analysis.sanitize import (
    CacheSanitizer,
    InvariantViolation,
    RaceDiagnostic,
    atomic_section,
)

__all__ = [
    "CacheSanitizer",
    "Finding",
    "FlowFinding",
    "FlowReport",
    "InvariantViolation",
    "RaceDiagnostic",
    "analyze_paths",
    "atomic_section",
    "declared_shared",
    "lint_paths",
    "register_reset",
    "reset_all",
    "shared_state",
]
