"""Runtime sanitizer for the cache module's concurrent structures.

The paper's buffer manager is a concurrent kernel subsystem — hash
table, free list and dirty list under fine-grained locks, with a
flusher and a harvester racing the application processes.  Our
reproduction models that concurrency with cooperative generator
processes, so the analogues of kernel races are (a) *accounting drift*
between the free list, the dirty list, the hash table and per-block
pin counts, and (b) *interleaved mutation* of a structure across a
``yield`` inside a region the author believed was atomic.

This module provides both checkers, opt-in via ``REPRO_SANITIZE=1``:

* :class:`CacheSanitizer` — installed into a
  :class:`~repro.cache.manager.BufferManager` at construction, it
  re-validates the global block-accounting invariant at every Nth
  scheduler step (``REPRO_SANITIZE_EVERY``, default 32) and raises
  :class:`InvariantViolation` with a full diagnostic when the
  structures disagree.

* :func:`atomic_section` — a lightweight context manager declaring
  "no other process may mutate these structures while this section is
  open".  Entering records a per-structure generation stamp; leaving
  re-checks it.  A mutation by a *different* simulation process in
  between raises :class:`RaceDiagnostic` naming both processes — the
  cooperative-sim analogue of a lock-order / data-race report.  When
  the sanitizer is not installed the call returns a shared no-op
  section, so production call sites cost one function call and an
  attribute probe.

Mutation tracking never touches the structures' hot paths: installing
the sanitizer shadows the mutating *bound methods on the instances*
(``insert``/``remove``/``add``/``discard``/...), so with sanitizing
off the structure classes run exactly the code they always ran.
"""

from __future__ import annotations

import os
import typing as _t

from repro.analysis.reset import register_reset

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.manager import BufferManager
    from repro.sim.engine import Environment

#: Master switch: truthy value enables the sanitizer for every
#: BufferManager constructed afterwards.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Check cadence: validate invariants every Nth processed event.
#: ``1`` checks at every scheduler step.
EVERY_ENV_VAR = "REPRO_SANITIZE_EVERY"

#: When set to a file path, every executed ``atomic_section`` appends
#: its label there (first hit per label per reset).  ``python -m
#: repro.analysis flow --runtime-coverage FILE`` then reports the
#: statically known sections the run never reached.
COVERAGE_ENV_VAR = "REPRO_ATOMIC_COVERAGE_FILE"

DEFAULT_CHECK_EVERY = 32

#: Labels already appended to the coverage file — a write-dedup cache
#: only (duplicates in the file are harmless; the reader de-dups).
_covered_labels: set[str] = set()


@register_reset
def _reset_covered_labels() -> None:
    global _covered_labels
    _covered_labels = set()


def _record_coverage(label: str) -> None:
    path = os.environ.get(COVERAGE_ENV_VAR)
    if not path or label in _covered_labels:
        return
    _covered_labels.add(label)
    with open(path, "a") as fh:
        fh.write(label + "\n")


class InvariantViolation(AssertionError):
    """The cache structures disagree about a block's state."""


class RaceDiagnostic(AssertionError):
    """A declared-atomic section was interleaved with a mutation.

    Carries both simulation process names: the one holding the
    section and the one that mutated the structure mid-section.
    """

    def __init__(
        self, structure: str, holder: str, mutator: str, label: str
    ) -> None:
        super().__init__(
            f"atomic section {label!r} held by process {holder!r} was "
            f"interleaved: {structure} was mutated by process "
            f"{mutator!r} before the section closed"
        )
        self.structure = structure
        self.holder = holder
        self.mutator = mutator
        self.label = label


def is_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitizing."""
    return os.environ.get(SANITIZE_ENV_VAR, "") not in ("", "0")


def check_every() -> int:
    """The configured check cadence (events per invariant sweep)."""
    raw = os.environ.get(EVERY_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_CHECK_EVERY
    value = int(raw)
    if value < 1:
        raise ValueError(f"{EVERY_ENV_VAR} must be >= 1, got {value}")
    return value


# -- mutation tracking ---------------------------------------------------


class MutationTracker:
    """Per-structure generation stamps plus last-mutator identity."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: id(structure) -> generation counter.
        self._gens: dict[int, int] = {}
        #: id(structure) -> (generation, mutator process name).
        self._last: dict[int, tuple[int, str]] = {}
        #: id(structure) -> human-readable structure label.
        self._labels: dict[int, str] = {}

    def _process_name(self) -> str:
        active = self.env.active_process
        return active.name if active is not None else "<scheduler>"

    def track(self, structure: object, label: str) -> None:
        """Start tracking ``structure`` under ``label``."""
        key = id(structure)
        self._gens.setdefault(key, 0)
        self._labels[key] = label

    def note(self, structure: object) -> None:
        """Record one mutation of ``structure`` by the active process."""
        key = id(structure)
        gen = self._gens.get(key, 0) + 1
        self._gens[key] = gen
        self._last[key] = (gen, self._process_name())

    def generation(self, structure: object) -> int:
        """Current generation stamp of ``structure``."""
        return self._gens.get(id(structure), 0)

    def last_mutator(self, structure: object) -> str:
        """Process name that performed the latest mutation."""
        last = self._last.get(id(structure))
        return last[1] if last is not None else "<never>"

    def label(self, structure: object) -> str:
        """Display label of ``structure``."""
        return self._labels.get(
            id(structure), type(structure).__name__
        )


def _wrap_mutators(
    tracker: MutationTracker, structure: object, method_names: _t.Sequence[str]
) -> None:
    """Shadow mutating methods on the *instance* with noting wrappers."""
    for name in method_names:
        original = getattr(structure, name)

        def wrapper(
            *args: _t.Any,
            _original: _t.Callable = original,
            _structure: object = structure,
            **kwargs: _t.Any,
        ) -> _t.Any:
            tracker.note(_structure)
            return _original(*args, **kwargs)

        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(structure, name, wrapper)


# -- atomic sections -----------------------------------------------------


class _NullSection:
    """Shared no-op section used while sanitizing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SECTION = _NullSection()


class _AtomicSection:
    """Armed section: compares generation stamps on entry and exit."""

    __slots__ = ("_tracker", "_structures", "_label", "_entry", "_holder")

    def __init__(
        self,
        tracker: MutationTracker,
        structures: tuple[object, ...],
        label: str,
    ) -> None:
        self._tracker = tracker
        self._structures = structures
        self._label = label
        self._entry: dict[int, int] = {}
        self._holder = ""

    def __enter__(self) -> "_AtomicSection":
        self._holder = self._tracker._process_name()
        self._entry = {
            id(s): self._tracker.generation(s) for s in self._structures
        }
        return self

    def check(self) -> None:
        """Raise if a foreign process mutated a structure mid-section.

        Mutations by the holding process itself are the section doing
        its job and are folded into the baseline.
        """
        tracker = self._tracker
        for structure in self._structures:
            gen = tracker.generation(structure)
            if gen == self._entry[id(structure)]:
                continue
            mutator = tracker.last_mutator(structure)
            if mutator != self._holder:
                raise RaceDiagnostic(
                    tracker.label(structure),
                    self._holder,
                    mutator,
                    self._label,
                )
            self._entry[id(structure)] = gen

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        if exc_type is None:
            self.check()
        return False


def atomic_section(
    *structures: object, label: str = "atomic"
) -> "_AtomicSection | _NullSection":
    """Declare a critical section over ``structures``.

    With the sanitizer installed on the structures' owner, returns an
    armed section that raises :class:`RaceDiagnostic` when another
    process mutates any of them before the section closes.  Without
    it, returns a shared no-op — cheap enough for miss-path call
    sites.
    """
    _record_coverage(label)
    tracker = (
        getattr(structures[0], "_san_tracker", None) if structures else None
    )
    if tracker is None:
        return _NULL_SECTION
    return _AtomicSection(tracker, structures, label)


# -- the invariant checker ----------------------------------------------


class CacheSanitizer:
    """Validates the buffer manager's global accounting invariant.

    The invariant, stated against the paper's structures:

    * every frame is in exactly one of the *free* and *hashed* states
      (FREE frames carry no identity and never sit in the hash table;
      PENDING/CLEAN/DIRTY frames are keyed and chained exactly once);
    * a frame is DIRTY if and only if it is on the dirty list;
    * pin counts ("refcounts" held by in-progress copies) are never
      negative, and FREE frames are never pinned;
    * the clock hand stays inside the ring, and the replacement
      policy tracks exactly the resident frames;
    * in-flight allocation reservations resolve: a reserved key is
      not yet resident and its reservation event has not fired;
    * free-list accounting never exceeds the number of FREE frames.
    """

    def __init__(self, manager: "BufferManager") -> None:
        self.manager = manager
        self.tracker = MutationTracker(manager.env)
        self.check_interval = check_every()
        self._countdown = self.check_interval
        self.checks_run = 0
        self._install()

    # -- wiring ----------------------------------------------------------
    def _install(self) -> None:
        manager = self.manager
        tracker = self.tracker
        name = manager.name
        structures: list[tuple[object, str, tuple[str, ...]]] = [
            (manager.table, f"{name}.table", ("insert", "remove")),
            (
                manager.dirtylist,
                f"{name}.dirtylist",
                ("add", "discard", "drain"),
            ),
            (
                manager.freelist,
                f"{name}.freelist",
                ("acquire", "release"),
            ),
            (manager.policy, f"{name}.policy", ("admit", "forget")),
        ]
        for structure, label, methods in structures:
            tracker.track(structure, label)
            _wrap_mutators(tracker, structure, methods)
            structure._san_tracker = tracker  # type: ignore[attr-defined]
        manager._san_tracker = tracker  # type: ignore[attr-defined]
        manager.env.add_step_hook(self._on_step)

    def uninstall(self) -> None:
        """Detach the step hook (tests tearing an env down manually)."""
        try:
            self.manager.env.remove_step_hook(self._on_step)
        except ValueError:
            pass

    def _on_step(self, env: "Environment") -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.check_interval
            self.check()

    # -- the invariant ----------------------------------------------------
    def _fail(self, message: str) -> _t.NoReturn:
        manager = self.manager
        raise InvariantViolation(
            f"[{manager.name} @ t={manager.env.now:.9f}] {message}"
        )

    def check(self) -> None:
        """Validate every invariant once (raises InvariantViolation)."""
        # Deferred import: repro.cache imports this module (the
        # manager installs the sanitizer), so a top-level import of
        # repro.cache.block here would be circular.
        from repro.cache.block import BlockState

        self.checks_run += 1
        manager = self.manager
        table = manager.table
        resident: dict[int, object] = {}
        for block in table.blocks():
            if id(block) in resident:
                self._fail(f"{block!r} chained twice in the hash table")
            resident[id(block)] = block
            if block.key is None:
                self._fail(f"{block!r} is in the hash table without a key")
            if table.get(block.key) is not block:
                self._fail(
                    f"{block!r} is chained under a bucket its key does "
                    "not hash to (or its key is duplicated)"
                )
            if block.state is BlockState.FREE:
                self._fail(f"FREE block {block!r} is in the hash table")
        if len(table) != len(resident):
            self._fail(
                f"hash table size {len(table)} != chained blocks "
                f"{len(resident)}"
            )

        freelist = manager.freelist
        store_items = list(freelist._store._items)
        store_ids = {id(b) for b in store_items}
        if len(store_ids) != len(store_items):
            self._fail("free list stores the same block twice")
        n_free_state = 0
        for block in manager.blocks:
            if block.pins < 0:
                self._fail(f"negative pin count on {block!r}")
            in_table = id(block) in resident
            if block.state is BlockState.FREE:
                n_free_state += 1
                if in_table:
                    self._fail(f"FREE block {block!r} is also resident")
                if block.pins:
                    self._fail(f"FREE block {block!r} is pinned")
                if block.key is not None:
                    self._fail(f"FREE block {block!r} still has a key")
            else:
                if not in_table:
                    self._fail(
                        f"{block.state.value} block {block!r} is not in "
                        "the hash table"
                    )
                if id(block) in store_ids:
                    self._fail(
                        f"resident block {block!r} is also on the free list"
                    )
            is_dirty = block.state is BlockState.DIRTY
            on_dirty = block in manager.dirtylist
            if is_dirty and not on_dirty:
                self._fail(f"DIRTY block {block!r} is not on the dirty list")
            if on_dirty and not is_dirty:
                self._fail(
                    f"{block.state.value} block {block!r} is on the "
                    "dirty list"
                )
            if (
                block.doomed
                and block.pins == 0
                and block.state is not BlockState.PENDING
            ):
                # PENDING is exempt: a coherence invalidation that
                # races an in-flight fetch dooms the block and lets
                # the fetch finish; the drop happens at make_ready
                # (unpinned prefetches) or at the last unpin.
                self._fail(
                    f"doomed block {block!r} survived its last unpin"
                )
        if n_free_state + len(resident) != len(manager.blocks):
            self._fail(
                f"frames leak: {n_free_state} free + {len(resident)} "
                f"resident != {len(manager.blocks)} total"
            )
        if len(store_items) > n_free_state:
            self._fail(
                f"free list holds {len(store_items)} blocks but only "
                f"{n_free_state} frames are FREE"
            )
        if max(0, freelist._count) > n_free_state:
            self._fail(
                f"free list count {freelist._count} exceeds FREE frames "
                f"{n_free_state}"
            )

        self._check_policy(resident)

        for key, reservation in manager._inflight.items():
            if table.get(key) is not None:
                self._fail(
                    f"in-flight reservation for {key} but the key is "
                    "already resident"
                )
            if reservation.triggered:
                self._fail(
                    f"in-flight reservation for {key} already fired but "
                    "was not removed"
                )

    def _check_policy(self, resident: dict[int, object]) -> None:
        policy = self.manager.policy
        ring = getattr(policy, "_ring", None)
        if ring is not None:  # ClockPolicy
            hand = policy._hand
            if ring:
                if not 0 <= hand < len(ring):
                    self._fail(
                        f"clock hand {hand} outside ring of {len(ring)}"
                    )
            elif hand != 0:
                self._fail(f"clock hand {hand} nonzero on an empty ring")
            tracked = {id(b) for b in ring}
            if len(tracked) != len(ring):
                self._fail("clock ring tracks a block twice")
        else:  # ExactLRUPolicy
            tracked = {id(b) for b in policy._order}
        if tracked != set(resident):
            missing = len(set(resident) - tracked)
            extra = len(tracked - set(resident))
            self._fail(
                "replacement policy out of sync with the hash table "
                f"({missing} resident untracked, {extra} stale entries)"
            )


def maybe_install(manager: "BufferManager") -> CacheSanitizer | None:
    """Install a sanitizer when ``REPRO_SANITIZE`` asks for one."""
    if not is_enabled():
        return None
    return CacheSanitizer(manager)
