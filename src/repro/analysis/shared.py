"""The shared-state registry the flow analyzer is anchored on.

A structure is *shared state* when more than one simulation process
mutates it: the block hash table, the CLOCK ring and hand, the dirty
and free lists, the iods' per-block sharer directories, the writeback
throttle counter.  The runtime sanitizer already guards some of these
dynamically (``repro.analysis.sanitize``); the static flow analyzer
(``repro.analysis.flow``) needs to know *which attribute names* to
track without executing anything, so classes declare them here:

    @shared_state("table", "freelist", "dirtylist", "policy")
    class BufferManager: ...

At runtime the decorator is a no-op apart from recording the names on
the class (``__shared_state__``), which lets tests and tooling
introspect the declarations.  The static analyzer never imports the
decorated module — it reads the decorator call out of the AST — so
the declaration **must** use plain string literals, not computed
values.

Declarations are inherited and unioned: a subclass decorated with
additional names guards both its own and its bases' structures.
"""

from __future__ import annotations

import typing as _t

_T = _t.TypeVar("_T", bound=type)

#: Method names treated as *mutations* of the structure they are
#: called on.  The flow analyzer classifies ``self.table.insert(...)``
#: as a WRITE of ``table`` because ``insert`` appears here, and as a
#: READ otherwise (``self.table.get(...)``).  Kept intentionally
#: generic — names are matched per call site, not per class.
MUTATING_METHODS = frozenset(
    {
        "acquire",
        "add",
        "admit",
        "append",
        "appendleft",
        "clear",
        "discard",
        "drain",
        "extend",
        "forget",
        "insert",
        "mark_clean",
        "mark_dirty",
        "pop",
        "popitem",
        "popleft",
        "push",
        "put",
        "release",
        "remove",
        "reset",
        "setdefault",
        "sort",
        "succeed",
        "touch",
        "update",
    }
)


def shared_state(*attrs: str) -> _t.Callable[[_T], _T]:
    """Class decorator declaring shared-state attribute names.

    ``attrs`` are instance-attribute names (as they appear after
    ``self.``) of structures mutated by more than one process.  The
    decorator records them on the class as ``__shared_state__`` and
    returns the class unchanged.
    """
    if not attrs:
        raise TypeError("shared_state() needs at least one attribute name")
    for attr in attrs:
        if not isinstance(attr, str) or not attr.isidentifier():
            raise TypeError(
                f"shared_state() attribute names must be identifier "
                f"string literals, got {attr!r}"
            )

    def decorate(cls: _T) -> _T:
        inherited: frozenset[str] = frozenset()
        for base in cls.__mro__[1:]:
            inherited |= frozenset(base.__dict__.get("__shared_state__", ()))
        cls.__shared_state__ = inherited | frozenset(attrs)
        return cls

    return decorate


def declared_shared(cls: type) -> frozenset[str]:
    """The shared-state attribute names declared on ``cls`` (and,
    through decorator-time union, its bases)."""
    return frozenset(getattr(cls, "__shared_state__", ()))
