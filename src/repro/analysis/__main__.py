"""CLI: ``python -m repro.analysis lint [paths...]``.

With no paths, lints the source tree the installed ``repro`` package
lives in.  Exits non-zero when any finding survives its ``noqa``
filters, so the command slots directly into CI.
"""

from __future__ import annotations

import sys

from repro.analysis import lint

USAGE = """\
usage: python -m repro.analysis lint [paths...]

subcommands:
  lint    run the sim-aware AST lint (RPL001-RPL005) over the given
          files/directories (default: the repro source tree)
"""


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        sys.stderr.write(USAGE)
        return 0 if argv else 2
    command, *rest = argv
    if command == "lint":
        return lint.main(rest)
    sys.stderr.write(f"unknown subcommand {command!r}\n\n{USAGE}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
