"""CLI: ``python -m repro.analysis {lint,flow} [paths...]``.

With no paths, both subcommands scan the source tree the installed
``repro`` package lives in.  Exits non-zero when any finding survives
its ``noqa``/baseline filters, so the commands slot directly into CI.
"""

from __future__ import annotations

import sys

from repro.analysis import flow, lint

USAGE = """\
usage: python -m repro.analysis {lint,flow} [paths...]

subcommands:
  lint    run the sim-aware AST lint (RPL001-RPL006) over the given
          files/directories (default: the repro source tree)
  flow    run the interprocedural may-yield race analyzer and the
          determinism dataflow pass (RPL100/RPL101/RPL110); see
          --write-baseline and --runtime-coverage
"""


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        sys.stderr.write(USAGE)
        return 0 if argv else 2
    command, *rest = argv
    if command == "lint":
        return lint.main(rest)
    if command == "flow":
        return flow.main(rest)
    sys.stderr.write(f"unknown subcommand {command!r}\n\n{USAGE}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
