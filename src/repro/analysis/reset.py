"""Registry of test-reset hooks for module-level mutable state.

The simulator is deterministic *per environment*, but a handful of
module-global counters (message ids, connection ids) survive across
environments, which makes observed ids depend on what ran earlier in
the host process.  Any module that keeps such state registers a reset
hook here; the test suite calls :func:`reset_all` between tests, and
the custom lint (:mod:`repro.analysis.lint`, rule RPL004) flags
module-level mutable state that is *not* registered.

Usage, in the module owning the state::

    from repro.analysis.reset import register_reset

    _msg_ids = itertools.count(1)

    def _reset_ids() -> None:
        global _msg_ids
        _msg_ids = itertools.count(1)

    register_reset(_reset_ids)
"""

from __future__ import annotations

import typing as _t

#: Registered hooks, in registration order.  Registration order is
#: import order, which is deterministic for a fixed test selection.
#: (The registry itself is the reset root, hence the lint whitelist.)
_hooks: list[_t.Callable[[], None]] = []  # noqa: RPL004


def register_reset(hook: _t.Callable[[], None]) -> _t.Callable[[], None]:
    """Register ``hook`` to run on :func:`reset_all`.

    Returns the hook so it can be used as a decorator.  Registering
    the same function object twice is a no-op.
    """
    if hook not in _hooks:
        _hooks.append(hook)
    return hook


def reset_all() -> None:
    """Run every registered reset hook (test isolation point)."""
    for hook in _hooks:
        hook()


def registered_hooks() -> tuple[_t.Callable[[], None], ...]:
    """Snapshot of the registered hooks (inspection helper)."""
    return tuple(_hooks)
