"""Determinism checking: schedule trace hashes for same-seed runs.

Simulator credibility rests on reproducibility: the same seed must
produce the same schedule, bit for bit, whether the run happens in
this process or inside a parallel sweep worker
(:mod:`repro.experiments.parallel`).  The engine can fold every
processed event — sequence number, timestamp, event identity — into a
BLAKE2b accumulator (:meth:`repro.sim.Environment.enable_trace_hash`);
this module packages that into ready-to-use checks.

The module-level :func:`fig4_point_trace_hash` is deliberately a
plain top-level function so it is picklable and can be fanned out
through :func:`repro.experiments.parallel.sweep`, proving that worker
processes reproduce the serial schedule exactly.
"""

from __future__ import annotations

import typing as _t


def traced_run(
    run: _t.Callable[["_t.Any"], _t.Any], env: "_t.Any"
) -> tuple[_t.Any, str]:
    """Enable trace hashing on ``env``, call ``run(env)``, return
    ``(result, trace_hash)``."""
    env.enable_trace_hash()
    result = run(env)
    return result, env.trace_hash()


def fig4_point_trace_hash(
    d: int = 4096,
    mode: str = "read",
    p: int = 2,
    iterations: int = 8,
    seed: int = 1234,
) -> str:
    """Trace hash of one quick fig4-style micro-benchmark point.

    Builds the same cluster + micro-benchmark combination the figure-4
    sweep runs per point (caching on, locality 0) with the given seed,
    runs it with trace hashing enabled, and returns the schedule
    digest.  Two calls with identical arguments must return identical
    digests — in this process, across processes, and through the
    parallel sweep runner.
    """
    from repro.cluster.config import ClusterConfig
    from repro.workload import MicroBenchParams, run_instances

    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=True)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode=mode,
        locality=0.0,
        partition_bytes=2 * 2**20,
        seed=seed,
    )
    import os

    from repro.sim.engine import TRACE_HASH_ENV_VAR

    previous = os.environ.get(TRACE_HASH_ENV_VAR)
    os.environ[TRACE_HASH_ENV_VAR] = "1"
    try:
        outcome = run_instances(config, [params])
    finally:
        if previous is None:
            os.environ.pop(TRACE_HASH_ENV_VAR, None)
        else:
            os.environ[TRACE_HASH_ENV_VAR] = previous
    return outcome.cluster.env.trace_hash()
