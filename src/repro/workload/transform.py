"""Composable trace→trace transform passes.

One recorded run becomes a family of scenarios: each transform is a
pure function ``Trace -> Trace`` (built by a factory that captures its
parameters), so transforms compose with :func:`compose` and chain
freely.  Every pass appends a note to ``meta["transforms"]``, keeping
a trace's derivation history in the file itself.

All randomized passes draw from ``numpy.random.default_rng(seed)``
over the trace's *canonical* event order, so a transform of a given
trace is a deterministic function of ``(trace, parameters, seed)`` —
transformed traces replay as reproducibly as recorded ones.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.workload.trace import Trace, TraceEvent

#: A transform pass: pure function from trace to trace.
Transform = _t.Callable[[Trace], Trace]


def compose(*transforms: Transform) -> Transform:
    """Chain transforms left to right into one pass."""

    def passes(trace: Trace) -> Trace:
        for transform in transforms:
            trace = transform(trace)
        return trace

    return passes


def time_scale(factor: float) -> Transform:
    """Scale every timestamp and think time by ``factor``.

    ``factor < 1`` compresses the run (a more I/O-intensive variant of
    the same program); ``factor > 1`` dilates it.
    """
    if factor <= 0:
        raise ValueError(f"time_scale factor must be > 0, got {factor}")

    def passes(trace: Trace) -> Trace:
        return trace.derive(
            (
                dataclasses.replace(
                    e, time=e.time * factor, think_s=e.think_s * factor
                )
                for e in trace.events
            ),
            f"time_scale({factor})",
        )

    return passes


def process_remap(mapping: dict[str, str]) -> Transform:
    """Rename processes (``mapping`` old name -> new name).

    Merging is allowed: mapping two old names to one new name fuses
    their streams.  Names absent from the mapping pass through.
    """

    def passes(trace: Trace) -> Trace:
        return trace.derive(
            (
                dataclasses.replace(
                    e, process=mapping.get(e.process, e.process)
                )
                for e in trace.events
            ),
            f"process_remap({sorted(mapping.items())})",
        )

    return passes


#: Node-remap is process-remap under the replayer's model: traces name
#: processes, and placement onto nodes happens at replay time.
node_remap = process_remap


def _private_paths(trace: Trace) -> set[str]:
    """Paths touched by exactly one process (per-process data)."""
    owners: dict[str, set[str]] = {}
    for event in trace.events:
        owners.setdefault(event.path, set()).add(event.process)
    return {path for path, procs in owners.items() if len(procs) == 1}


def scale_out(factor: int) -> Transform:
    """Clone every process stream ``factor``x (scale the job out).

    Replica ``k >= 1`` of process ``P`` is named ``P~k`` and keeps
    ``P``'s request stream, with two twists that preserve the trace's
    sharing structure instead of inflating it artificially:

    * paths private to one process get a ``~k`` suffix, so replicas
      bring their own private data (shared paths stay shared and the
      contention on them really grows ``factor``x);
    * instance tags are offset per replica, so downstream grouping
      (e.g. :class:`~repro.workload.runner.RunOutcome` instances)
      sees the clones as extra instances.
    """
    if factor < 1:
        raise ValueError(f"scale_out factor must be >= 1, got {factor}")

    def passes(trace: Trace) -> Trace:
        private = _private_paths(trace)
        instance_span = 1 + max(
            (e.instance for e in trace.events), default=0
        )
        events: list[TraceEvent] = list(trace.events)
        for k in range(1, factor):
            for e in trace.events:
                events.append(
                    dataclasses.replace(
                        e,
                        process=f"{e.process}~{k}",
                        path=(
                            f"{e.path}~{k}" if e.path in private else e.path
                        ),
                        instance=e.instance + k * instance_span,
                    )
                )
        return trace.derive(events, f"scale_out({factor})")

    return passes


def remix_sharing(sharing: float, seed: int = 0) -> Transform:
    """Re-mix the degree of inter-process data sharing.

    Each event is retargeted, keeping its offset, size, and timing:
    with probability ``sharing`` it goes to the trace's hottest path
    (the shared dataset); otherwise to a per-process private twin of
    its original path (``<path>~<process>``).  ``sharing=1`` makes the
    workload fully shared, ``sharing=0`` fully private — the trace
    analogue of the microbench's ``s`` knob.
    """
    if not (0.0 <= sharing <= 1.0):
        raise ValueError(f"sharing must be in [0,1], got {sharing}")

    def passes(trace: Trace) -> Trace:
        import numpy as np

        if not trace.events:
            return trace.derive([], f"remix_sharing({sharing}, seed={seed})")
        popularity: dict[str, int] = {}
        for e in trace.events:
            popularity[e.path] = popularity.get(e.path, 0) + 1
        # Ties break on path name so the hot path is deterministic.
        hot = max(sorted(popularity), key=lambda p: popularity[p])
        rng = np.random.default_rng(seed)
        events = [
            dataclasses.replace(
                e,
                path=(
                    hot
                    if rng.random() < sharing
                    else f"{e.path}~{e.process}"
                ),
            )
            for e in trace.events
        ]
        return trace.derive(events, f"remix_sharing({sharing}, seed={seed})")

    return passes


def zipf_reskew(alpha: float = 1.5, seed: int = 0) -> Transform:
    """Re-skew path popularity to a Zipf(``alpha``) law.

    Paths are ranked by observed popularity; each event is then
    redirected to the path whose rank a Zipf draw picks (draws beyond
    the path count clip to the coldest path).  Offsets, sizes, and
    timing are untouched — only *which file* gets hot changes, giving
    cache policies a heavy-tailed reuse profile to chew on.
    """
    if alpha <= 1.0:
        raise ValueError(f"zipf alpha must be > 1, got {alpha}")

    def passes(trace: Trace) -> Trace:
        import numpy as np

        if not trace.events:
            return trace.derive([], f"zipf_reskew({alpha}, seed={seed})")
        popularity: dict[str, int] = {}
        for e in trace.events:
            popularity[e.path] = popularity.get(e.path, 0) + 1
        ranked = sorted(
            sorted(popularity), key=lambda p: popularity[p], reverse=True
        )
        rng = np.random.default_rng(seed)
        draws = rng.zipf(alpha, size=len(trace.events))
        events = [
            dataclasses.replace(
                e, path=ranked[min(int(draw), len(ranked)) - 1]
            )
            for e, draw in zip(trace.events, draws)
        ]
        return trace.derive(events, f"zipf_reskew({alpha}, seed={seed})")

    return passes
