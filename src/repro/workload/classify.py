"""Online classification of inter-application sharing patterns.

Paper, Section 5: "We plan to classify different sharing patterns and
develop different I/O optimizations for each type of pattern.  In
particular, we are interested in addressing this issue from the
viewpoint of inter-application sharing."

This module implements that classifier over block-access traces.  Per
file it distinguishes:

* ``private``            — one process only;
* ``read-shared``        — several readers, nobody writes;
* ``producer-consumer``  — one writer whose writes precede other
  processes' reads of the same blocks;
* ``read-write-shared``  — multiple writers, or reads racing writes on
  the same blocks (the patterns that need ``sync_write`` coherence);
* ``disjoint``           — several processes but block sets never
  overlap (spatially partitioned, "completely data parallel").

The per-pattern recommendation mirrors the optimizations the paper
sketches: aggressive caching for read sharing, forwarding/prefetch for
producer-consumer, coherent writes for read-write sharing.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from collections import defaultdict


@dataclasses.dataclass(frozen=True)
class AccessRecord:
    """One block access observed at a cache module."""

    time: float
    process: str  # unique process identity, e.g. "node0/pid3"
    file_id: int
    block_no: int
    op: str  # "read" | "write"

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"unknown op {self.op!r}")


PATTERNS = (
    "private",
    "read-shared",
    "producer-consumer",
    "read-write-shared",
    "disjoint",
    "unused",
)

RECOMMENDATIONS: dict[str, str] = {
    "private": "local caching is sufficient; no coherence needed",
    "read-shared": (
        "cache aggressively and co-schedule the applications on the "
        "same nodes (Fig. 8 regime)"
    ),
    "producer-consumer": (
        "flush eagerly and prefetch/forward produced blocks to the "
        "consumer's node"
    ),
    "read-write-shared": (
        "use sync_write coherence; consider demoting to write-through"
    ),
    "disjoint": "partition-aware placement; no shared-cache benefit",
    "unused": "no accesses observed",
}


class SharingClassifier:
    """Streaming classifier over :class:`AccessRecord` events."""

    def __init__(self) -> None:
        #: file -> process -> set of blocks read / written
        self._readers: dict[int, dict[str, set[int]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._writers: dict[int, dict[str, set[int]]] = defaultdict(
            lambda: defaultdict(set)
        )
        #: (file, block) -> time of first write / first read-after-write
        self._first_write: dict[tuple[int, int], tuple[float, str]] = {}
        #: races: a read of a block that some OTHER process wrote
        #: *after* that write (ordering respected) is producer-consumer;
        #: a write to a block another process wrote marks rw-sharing.
        self._cross_reads: set[int] = set()
        self._write_write: set[int] = set()
        self._read_before_write: set[int] = set()
        self.records_seen = 0

    def record(self, record: AccessRecord) -> None:
        """Fold one access record into the statistics."""
        self.records_seen += 1
        key = (record.file_id, record.block_no)
        if record.op == "write":
            self._writers[record.file_id][record.process].add(record.block_no)
            first = self._first_write.get(key)
            if first is None:
                self._first_write[key] = (record.time, record.process)
            elif first[1] != record.process:
                self._write_write.add(record.file_id)
        else:
            self._readers[record.file_id][record.process].add(record.block_no)
            first = self._first_write.get(key)
            if first is not None and first[1] != record.process:
                if record.time >= first[0]:
                    self._cross_reads.add(record.file_id)
                else:  # pragma: no cover - needs out-of-order feed
                    self._read_before_write.add(record.file_id)

    def observe(self, records: _t.Iterable[AccessRecord]) -> None:
        """Fold many records."""
        for record in records:
            self.record(record)

    # -- classification ------------------------------------------------------
    def processes_of(self, file_id: int) -> set[str]:
        """Processes that touched ``file_id``."""
        return set(self._readers.get(file_id, {})) | set(
            self._writers.get(file_id, {})
        )

    def classify(self, file_id: int) -> str:
        """The file's sharing pattern (see PATTERNS)."""
        readers = self._readers.get(file_id, {})
        writers = self._writers.get(file_id, {})
        processes = set(readers) | set(writers)
        if not processes:
            return "unused"
        if len(processes) == 1:
            return "private"
        if not writers:
            # several processes, read-only: overlapping -> read-shared
            block_sets = [frozenset(s) for s in readers.values()]
            if _any_overlap(block_sets):
                return "read-shared"
            return "disjoint"
        if file_id in self._write_write:
            return "read-write-shared"
        if file_id in self._cross_reads:
            # single writer, consumed by others in write->read order
            return "producer-consumer"
        # writes exist but nobody else touches those blocks
        all_sets = [frozenset(s) for s in readers.values()] + [
            frozenset(s) for s in writers.values()
        ]
        if _any_overlap(all_sets):
            return "read-write-shared"
        return "disjoint"

    def recommendation(self, file_id: int) -> str:
        """Optimization advice for the pattern."""
        return RECOMMENDATIONS[self.classify(file_id)]

    def report(self) -> dict[int, str]:
        """Classification of every file seen."""
        files = set(self._readers) | set(self._writers)
        return {file_id: self.classify(file_id) for file_id in sorted(files)}


def _any_overlap(block_sets: _t.Sequence[frozenset[int]]) -> bool:
    for i, a in enumerate(block_sets):
        for b in block_sets[i + 1 :]:
            if a & b:
                return True
    return False


class TraceCollector:
    """Adapter: tee client operations into a classifier.

    Attach to a :class:`~repro.pvfs.client.PVFSClient` via its
    ``trace_sink`` attribute; the client reports each data call and the
    collector expands it to block-level records.
    """

    def __init__(
        self, classifier: SharingClassifier, block_size: int = 4096
    ) -> None:
        self.classifier = classifier
        self.block_size = block_size

    def __call__(
        self,
        time: float,
        process: str,
        file_id: int,
        offset: int,
        nbytes: int,
        op: str,
    ) -> None:
        if nbytes <= 0:
            return
        # Coherent writes are still writes to the classifier; accept
        # the canonical IR spelling and the deprecated legacy one.
        if op in ("sync_write", "sync-write"):
            op = "write"
        first = offset // self.block_size
        last = (offset + nbytes - 1) // self.block_size
        for block_no in range(first, last + 1):
            self.classifier.record(
                AccessRecord(
                    time=time,
                    process=process,
                    file_id=file_id,
                    block_no=block_no,
                    op=op,
                )
            )


def classify_trace(
    trace: _t.Any, block_size: int = 4096
) -> dict[str, str]:
    """Classify every path of a trace IR; returns path -> pattern.

    The importer's ingest check: feed a parsed
    :class:`~repro.workload.trace.Trace` (or any iterable of
    :class:`~repro.workload.trace.TraceEvent`) through the
    streaming classifier, expanding strided events range by range.
    """
    classifier = SharingClassifier()
    events = sorted(trace, key=lambda e: e.time)
    path_ids: dict[str, int] = {}
    for event in events:
        file_id = path_ids.setdefault(event.path, len(path_ids))
        op = "write" if event.op in ("write", "sync_write") else "read"
        for offset, nbytes in event.ranges:
            if nbytes <= 0:
                continue
            first = offset // block_size
            last = (offset + nbytes - 1) // block_size
            for block_no in range(first, last + 1):
                classifier.record(
                    AccessRecord(
                        time=event.time,
                        process=event.process,
                        file_id=file_id,
                        block_no=block_no,
                        op=op,
                    )
                )
    return {
        path: classifier.classify(file_id)
        for path, file_id in sorted(path_ids.items())
    }
