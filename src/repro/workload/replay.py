"""Deterministic replay of workload traces against any cluster.

The replayer turns a :class:`~repro.workload.trace.Trace` back into
simulated application processes — one per distinct process name — and
re-issues every request through the ordinary libpvfs client API, so a
replay exercises exactly the code paths (cache module, fast paths,
iods) a live application would.

Determinism: processes are spawned in sorted process-name order, each
replays its events in canonical trace order, and nothing consults wall
clock or unseeded randomness — so replaying the same trace against the
same configuration reproduces the same schedule bit-for-bit under the
engine's BLAKE2b trace hash, in this process or in a parallel sweep
worker (:func:`replay_trace_hash` packages that check).

Timing modes:

* ``preserve_timing=True`` (open loop): each request waits until its
  recorded timestamp; gaps of the original run are kept.
* ``preserve_timing=False`` (closed loop): requests are issued
  back-to-back, honoring only each event's explicit ``think_s`` —
  this is how "replay the workload against a different config" should
  run, and what the ``REPRO_TRACE`` seam uses.
"""

from __future__ import annotations

import os
import typing as _t

from repro.sim import Process
from repro.workload.trace import Trace, TraceEvent

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster


class TraceReplayer:
    """Re-run a recorded trace on a (possibly different) cluster."""

    def __init__(
        self,
        cluster: "Cluster",
        trace: "Trace | _t.Sequence[TraceEvent]",
        placement: dict[str, str] | None = None,
        preserve_timing: bool = True,
    ) -> None:
        self.cluster = cluster
        self.trace = trace if isinstance(trace, Trace) else Trace(list(trace))
        self.preserve_timing = preserve_timing
        self._streams = self.trace.by_process()
        processes = sorted(self._streams)
        if placement is not None:
            for process in processes:
                if process not in placement:
                    raise ValueError(f"no placement for process {process!r}")
            self.placement = dict(placement)
        else:
            nodes = cluster.compute_nodes
            self.placement = {
                process: nodes[i % len(nodes)]
                for i, process in enumerate(processes)
            }
        unknown = sorted(
            {n for n in self.placement.values()} - set(cluster.compute_nodes)
        )
        if unknown:
            raise ValueError(f"placement names unknown nodes {unknown}")
        #: Per-process elapsed replay time, filled as processes finish.
        self.completion: dict[str, float] = {}

    def spawn(self) -> list[Process]:
        """Start one replay process per trace process; returns them."""
        return [
            self.cluster.env.process(
                self._replay_one(process, self._streams[process]),
                name=f"replay-{process}",
            )
            for process in sorted(self._streams)
        ]

    def run(self) -> float:
        """Replay to completion; returns the makespan."""
        env = self.cluster.env
        start = env.now
        env.run(until=env.all_of(self.spawn()))
        return env.now - start

    def _replay_one(
        self, process: str, events: list[TraceEvent]
    ) -> _t.Generator:
        env = self.cluster.env
        node = self.placement[process]
        client = self.cluster.client(node)
        client.process_name = process
        if events:
            client.app = events[0].app
            client.instance = events[0].instance
        handles: dict[str, _t.Any] = {}
        start = env.now
        for event in events:
            if self.preserve_timing:
                delay = (start + event.time) - env.now
                if delay > 0:
                    yield env.timeout(delay)
            elif event.think_s > 0:
                yield env.timeout(event.think_s)
            handle = handles.get(event.path)
            if handle is None:
                handle = yield from client.open(event.path)
                handles[event.path] = handle
            if event.is_list:
                if event.op == "read":
                    yield from client.readv(handle, event.ranges)
                else:
                    yield from client.writev(
                        handle, event.ranges, sync=event.op == "sync_write"
                    )
            elif event.op == "read":
                yield from client.read(handle, event.offset, event.nbytes)
            elif event.op == "write":
                yield from client.write(handle, event.offset, event.nbytes)
            else:
                yield from client.sync_write(
                    handle, event.offset, event.nbytes
                )
        self.completion[process] = env.now - start

    @property
    def makespan(self) -> float:
        """Slowest process's elapsed replay time."""
        if not self.completion:
            raise RuntimeError("replay has not finished")
        return max(self.completion.values())


# -- picklable sweep/CLI entry points --------------------------------------
def record_microbench_trace(
    d: int = 4096,
    mode: str = "read",
    p: int = 2,
    iterations: int = 8,
    seed: int = 1234,
) -> str:
    """Record one fig4-style microbench run; returns JSONL trace text.

    Mirrors :func:`repro.analysis.determinism.fig4_point_trace_hash`'s
    cluster/benchmark shape so the recorded trace corresponds to the
    determinism suite's reference point.  Top-level and
    string-in/string-out, so it is picklable for the parallel sweep.
    """
    from repro.cluster.config import ClusterConfig
    from repro.workload.microbench import MicroBenchParams
    from repro.workload.runner import run_instances

    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=True)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode=mode,
        locality=0.0,
        partition_bytes=2 * 2**20,
        seed=seed,
    )
    outcome = run_instances(config, [params], record=True)
    assert outcome.trace is not None
    return outcome.trace.dumps()


def replay_trace_hash(
    trace_text: str,
    compute_nodes: int = 2,
    iod_nodes: int = 2,
    caching: bool = True,
    preserve_timing: bool = False,
) -> str:
    """BLAKE2b schedule hash of replaying ``trace_text``.

    Identical text and arguments must produce identical digests — in
    this process, across processes, and through the parallel sweep
    runner.  Top-level so it is picklable.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig
    from repro.sim.engine import TRACE_HASH_ENV_VAR
    from repro.workload.trace import loads

    trace = loads(trace_text)
    previous = os.environ.get(TRACE_HASH_ENV_VAR)
    os.environ[TRACE_HASH_ENV_VAR] = "1"
    try:
        cluster = Cluster(
            ClusterConfig(
                compute_nodes=compute_nodes,
                iod_nodes=iod_nodes,
                caching=caching,
            )
        )
        TraceReplayer(
            cluster, trace, preserve_timing=preserve_timing
        ).run()
    finally:
        if previous is None:
            os.environ.pop(TRACE_HASH_ENV_VAR, None)
        else:
            os.environ[TRACE_HASH_ENV_VAR] = previous
    return cluster.env.trace_hash()
