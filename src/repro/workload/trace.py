"""Request-trace recording and replay.

The paper closes by noting "there is a lack of benchmarks containing
groups of applications sharing data".  Traces are the practical
substitute: record the request stream of any simulated run (or import
a CSV from elsewhere), then replay it against different cluster
configurations — caching on/off, different cache sizes, different
placements — to compare policies on *identical* workloads.

CSV schema (one request per line)::

    time,process,path,op,offset,nbytes
"""

from __future__ import annotations

import csv
import dataclasses
import io
import typing as _t

from repro.cluster.cluster import Cluster
from repro.pvfs.client import PVFSClient
from repro.sim import Process


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    time: float
    process: str
    path: str
    op: str  # "read" | "write" | "sync-write"
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.op not in ("read", "write", "sync-write"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.offset < 0 or self.nbytes < 0:
            raise ValueError(
                f"bad geometry offset={self.offset} nbytes={self.nbytes}"
            )


class TraceRecorder:
    """Collects every data call made through registered clients."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.events: list[TraceEvent] = []

    def attach(self, client: PVFSClient, process_name: str | None = None):
        """Hook a client's trace sink; returns the client for chaining."""
        if process_name is not None:
            client.process_name = process_name

        def sink(time, process, file_id, offset, nbytes, op):
            path = self._path_of(file_id)
            self.events.append(
                TraceEvent(
                    time=time,
                    process=process,
                    path=path,
                    # the client reports sync_write as "write"; the
                    # distinction is not observable at the block level,
                    # so replay re-issues plain writes.
                    op=op,
                    offset=offset,
                    nbytes=nbytes,
                )
            )

        client.trace_sink = sink
        return client

    def _path_of(self, file_id: int) -> str:
        for path, handle in self.cluster.mgr._by_path.items():
            if handle.file_id == file_id:
                return path
        return f"<file:{file_id}>"

    # -- serialisation ------------------------------------------------------
    def to_csv(self, fp: _t.TextIO) -> int:
        """Write the trace as CSV; returns event count."""
        writer = csv.writer(fp)
        writer.writerow(["time", "process", "path", "op", "offset", "nbytes"])
        for e in self.events:
            writer.writerow(
                [f"{e.time:.9f}", e.process, e.path, e.op, e.offset, e.nbytes]
            )
        return len(self.events)

    def dumps(self) -> str:
        """The trace as a CSV string."""
        buf = io.StringIO()
        self.to_csv(buf)
        return buf.getvalue()


def load_trace(fp: _t.TextIO) -> list[TraceEvent]:
    """Parse a trace CSV (schema above; header required)."""
    reader = csv.DictReader(fp)
    required = {"time", "process", "path", "op", "offset", "nbytes"}
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise ValueError(
            f"trace CSV needs columns {sorted(required)}, "
            f"got {reader.fieldnames}"
        )
    events = [
        TraceEvent(
            time=float(row["time"]),
            process=row["process"],
            path=row["path"],
            op=row["op"],
            offset=int(row["offset"]),
            nbytes=int(row["nbytes"]),
        )
        for row in reader
    ]
    events.sort(key=lambda e: e.time)
    return events


def loads_trace(text: str) -> list[TraceEvent]:
    """Parse a trace CSV from a string."""
    return load_trace(io.StringIO(text))


class TraceReplayer:
    """Re-issues a recorded trace against a (possibly different) cluster.

    Each distinct trace process becomes one simulated process, placed
    on a node by ``placement`` (dict process -> node; defaults to
    round-robin over the compute nodes).  With ``preserve_timing`` the
    original inter-arrival gaps are kept (open-loop replay); without
    it, requests are issued back to back (closed-loop).
    """

    def __init__(
        self,
        cluster: Cluster,
        events: _t.Sequence[TraceEvent],
        placement: dict[str, str] | None = None,
        preserve_timing: bool = True,
    ) -> None:
        self.cluster = cluster
        self.events = sorted(events, key=lambda e: e.time)
        self.preserve_timing = preserve_timing
        processes = sorted({e.process for e in self.events})
        nodes = cluster.compute_nodes
        self.placement = placement or {
            proc: nodes[i % len(nodes)] for i, proc in enumerate(processes)
        }
        missing = {e.process for e in self.events} - set(self.placement)
        if missing:
            raise ValueError(f"no placement for processes {sorted(missing)}")
        #: Completion time per trace process, filled during replay.
        self.completion: dict[str, float] = {}

    def spawn(self) -> list[Process]:
        """Start one replay process per trace process."""
        by_process: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            by_process.setdefault(event.process, []).append(event)
        return [
            self.cluster.env.process(
                self._replay_one(name, events),
                name=f"replay-{name}",
            )
            for name, events in sorted(by_process.items())
        ]

    def run(self) -> float:
        """Replay everything; returns the simulated makespan."""
        env = self.cluster.env
        start = env.now
        env.run(until=env.all_of(self.spawn()))
        return env.now - start

    def _replay_one(
        self, name: str, events: list[TraceEvent]
    ) -> _t.Generator:
        env = self.cluster.env
        client = self.cluster.client(self.placement[name])
        client.process_name = f"replay/{name}"
        handles: dict[str, _t.Any] = {}
        start = env.now
        base = events[0].time if events else 0.0
        for event in events:
            if self.preserve_timing:
                due = start + (event.time - base)
                if due > env.now:
                    yield env.timeout(due - env.now)
            handle = handles.get(event.path)
            if handle is None:
                handle = yield from client.open(event.path)
                handles[event.path] = handle
            if event.op == "read":
                yield from client.read(handle, event.offset, event.nbytes)
            elif event.op == "write":
                yield from client.write(handle, event.offset, event.nbytes)
            else:
                yield from client.sync_write(
                    handle, event.offset, event.nbytes
                )
        self.completion[name] = env.now - start
