"""The workload trace IR: a serializable, versioned request-stream format.

The paper closes by noting "there is a lack of benchmarks containing
groups of applications sharing data".  Traces are the practical
substitute, and this module makes them a first-class currency for the
whole stack: every driver can *record* its request stream
(:mod:`repro.workload.record`), *replay* it deterministically against
a different cluster configuration (:mod:`repro.workload.replay`),
*transform* it into a family of scenarios
(:mod:`repro.workload.transform`), and *import* traces measured on
external systems.

Event model
-----------

A :class:`TraceEvent` is one I/O request: ``(time, process, path, op,
offset, nbytes)`` plus workload tags (``app``, ``instance``), an
optional closed-loop think time (``think_s``), and a strided/list-I/O
shape (``stride``, ``count``) after the noncontiguous request patterns
of parallel applications (cf. arXiv:cs/0207096): a request with
``count > 1`` touches ``count`` ranges of ``nbytes`` each, spaced
``stride`` bytes apart.  ``count == 1`` is the ordinary contiguous
request.

The canonical op spelling is ``sync_write`` — the spelling the metrics
(``client.sync_writes``), classifier, and docs already use.  The
legacy trace spelling ``sync-write`` is accepted on import as a
deprecated alias and canonicalized.

Serialization
-------------

The native format is versioned JSONL: a header object followed by one
JSON object per event::

    {"format": "repro-trace", "version": 2, "events": 2, "meta": {}}
    {"time": 0.0, "process": "app-a", "path": "/shared", "op": "read",
     "offset": 0, "nbytes": 4096}
    {"time": 0.001, "process": "app-a", "path": "/shared", "op": "read",
     "offset": 65536, "nbytes": 4096, "stride": 16384, "count": 4}

Event fields at their defaults are omitted.  The header's ``events``
count makes truncation detectable.  The older CSV schema
(``time,process,path,op,offset,nbytes``) is retained as the *version-1
import dialect*; it cannot carry tags or strided shapes.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import io
import json
import math
import typing as _t
import warnings

#: Format marker in the JSONL header line.
TRACE_FORMAT = "repro-trace"

#: Current trace IR version.  Version 1 is the legacy CSV dialect.
TRACE_VERSION = 2

#: Canonical operation names of the IR.
CANONICAL_OPS = ("read", "write", "sync_write")

#: Deprecated spellings accepted on import and canonicalized.
LEGACY_OP_ALIASES = {"sync-write": "sync_write"}

#: CSV dialect column order (the version-1 schema).
CSV_COLUMNS = ("time", "process", "path", "op", "offset", "nbytes")


class TraceFormatError(ValueError):
    """A trace file or event failed validation."""


def canonical_op(op: str) -> str:
    """Canonicalize an op spelling (legacy aliases map to canonical).

    Raises :class:`TraceFormatError` for unknown ops.
    """
    op = LEGACY_OP_ALIASES.get(op, op)
    if op not in CANONICAL_OPS:
        raise TraceFormatError(
            f"unknown op {op!r}; canonical ops are {CANONICAL_OPS}"
        )
    return op


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One I/O request of a workload trace."""

    time: float
    process: str
    path: str
    op: str  # one of CANONICAL_OPS ("sync-write" canonicalized)
    offset: int
    nbytes: int
    #: Application tag (e.g. "microbench", "miner") — which program
    #: issued the request.
    app: str = ""
    #: Application-instance id (multiprogrammed workloads).
    instance: int = 0
    #: Closed-loop think time before issuing the request; honored by
    #: the replayer when original arrival times are not preserved.
    think_s: float = 0.0
    #: Strided/list-I/O shape: ``count`` ranges of ``nbytes`` each,
    #: range *i* starting at ``offset + i * stride``.  ``count == 1``
    #: is a plain contiguous request (``stride`` ignored).
    stride: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", canonical_op(self.op))
        if not math.isfinite(self.time):
            raise TraceFormatError(f"non-finite event time {self.time!r}")
        if self.offset < 0 or self.nbytes < 0:
            raise TraceFormatError(
                f"bad geometry offset={self.offset} nbytes={self.nbytes}"
            )
        if self.think_s < 0:
            raise TraceFormatError(f"negative think_s {self.think_s}")
        if self.count < 1:
            raise TraceFormatError(f"count must be >= 1, got {self.count}")
        if self.count > 1 and self.stride < self.nbytes:
            raise TraceFormatError(
                f"strided event needs stride >= nbytes, got "
                f"stride={self.stride} nbytes={self.nbytes}"
            )

    # -- shape ------------------------------------------------------------
    @property
    def is_list(self) -> bool:
        """True for strided/list-I/O requests (count > 1)."""
        return self.count > 1

    @property
    def ranges(self) -> list[tuple[int, int]]:
        """The (offset, nbytes) ranges the request touches."""
        return [
            (self.offset + i * self.stride, self.nbytes)
            for i in range(self.count)
        ]

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all ranges."""
        return self.nbytes * self.count

    @property
    def end_offset(self) -> int:
        """One past the last byte the request touches."""
        if self.count == 1:
            return self.offset + self.nbytes
        return self.offset + (self.count - 1) * self.stride + self.nbytes

    # -- serialization ---------------------------------------------------
    def to_json(self) -> dict[str, _t.Any]:
        """The event as a JSON-ready dict (defaults omitted)."""
        obj: dict[str, _t.Any] = {
            "time": self.time,
            "process": self.process,
            "path": self.path,
            "op": self.op,
            "offset": self.offset,
            "nbytes": self.nbytes,
        }
        if self.app:
            obj["app"] = self.app
        if self.instance:
            obj["instance"] = self.instance
        if self.think_s:
            obj["think_s"] = self.think_s
        if self.count > 1:
            obj["stride"] = self.stride
            obj["count"] = self.count
        return obj

    @classmethod
    def from_json(cls, obj: _t.Any, line_no: int | None = None) -> "TraceEvent":
        """Parse one event object (strict on required fields/types)."""
        where = f" (line {line_no})" if line_no is not None else ""
        if not isinstance(obj, dict):
            raise TraceFormatError(f"event is not an object{where}: {obj!r}")
        missing = [k for k in ("time", "process", "path", "op", "offset", "nbytes")
                   if k not in obj]
        if missing:
            raise TraceFormatError(f"event missing fields {missing}{where}")
        try:
            return cls(
                time=float(obj["time"]),
                process=str(obj["process"]),
                path=str(obj["path"]),
                op=str(obj["op"]),
                offset=int(obj["offset"]),
                nbytes=int(obj["nbytes"]),
                app=str(obj.get("app", "")),
                instance=int(obj.get("instance", 0)),
                think_s=float(obj.get("think_s", 0.0)),
                stride=int(obj.get("stride", 0)),
                count=int(obj.get("count", 1)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, TraceFormatError):
                raise TraceFormatError(f"{exc}{where}") from exc
            raise TraceFormatError(f"malformed event{where}: {exc}") from exc


def _sort_key(event: TraceEvent) -> tuple[float, str, int]:
    # Total order so a trace's canonical event order (and hence its
    # content hash and replay schedule) never depends on input order.
    return (event.time, event.process, event.offset)


@dataclasses.dataclass
class Trace:
    """An ordered, versioned collection of trace events plus metadata.

    ``meta`` carries free-form provenance (source, seed, config
    snapshot, applied transforms); it rides along through
    serialization and transforms.
    """

    events: list[TraceEvent] = dataclasses.field(default_factory=list)
    meta: dict[str, _t.Any] = dataclasses.field(default_factory=dict)
    version: int = TRACE_VERSION

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=_sort_key)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> _t.Iterator[TraceEvent]:
        return iter(self.events)

    # -- introspection ---------------------------------------------------
    @property
    def processes(self) -> list[str]:
        """Distinct process names, sorted."""
        return sorted({e.process for e in self.events})

    @property
    def paths(self) -> list[str]:
        """Distinct file paths, sorted."""
        return sorted({e.path for e in self.events})

    def by_process(self) -> dict[str, list[TraceEvent]]:
        """Events grouped per process (trace order within each)."""
        out: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            out.setdefault(event.process, []).append(event)
        return out

    def op_counts(self) -> dict[str, int]:
        """How many events of each op the trace holds."""
        out = {op: 0 for op in CANONICAL_OPS}
        for event in self.events:
            out[event.op] += 1
        return out

    def content_hash(self) -> str:
        """BLAKE2b digest of the canonical event stream.

        Two traces with identical events (same canonical order) share
        the hash regardless of how they were produced, serialized, or
        reloaded.  This is the *content* identity; the schedule
        identity of a replay is the engine's trace hash.
        """
        acc = hashlib.blake2b(digest_size=16)
        for event in self.events:
            acc.update(
                json.dumps(event.to_json(), sort_keys=True).encode()
            )
            acc.update(b"\n")
        return acc.hexdigest()

    def derive(
        self, events: _t.Iterable[TraceEvent], note: str
    ) -> "Trace":
        """A new trace with ``events`` and this trace's meta + a
        transform note appended (used by the transform passes)."""
        meta = dict(self.meta)
        meta["transforms"] = [*meta.get("transforms", []), note]
        return Trace(events=list(events), meta=meta)

    # -- JSONL serialization ---------------------------------------------
    def dump_jsonl(self, fp: _t.TextIO) -> int:
        """Write the trace as versioned JSONL; returns event count."""
        header = {
            "format": TRACE_FORMAT,
            "version": self.version,
            "events": len(self.events),
            "meta": self.meta,
        }
        fp.write(json.dumps(header, sort_keys=True) + "\n")
        for event in self.events:
            fp.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
        return len(self.events)

    def dumps(self) -> str:
        """The trace as a JSONL string."""
        buf = io.StringIO()
        self.dump_jsonl(buf)
        return buf.getvalue()

    # -- CSV export (legacy dialect) -------------------------------------
    def dump_csv(self, fp: _t.TextIO) -> int:
        """Write the version-1 CSV dialect; returns event count.

        CSV cannot carry tags or strided shapes — strided events are
        rejected rather than silently flattened.
        """
        writer = csv.writer(fp)
        writer.writerow(CSV_COLUMNS)
        for e in self.events:
            if e.is_list:
                raise TraceFormatError(
                    "the CSV dialect cannot express strided/list events; "
                    "serialize as JSONL instead"
                )
            writer.writerow(
                [f"{e.time:.9f}", e.process, e.path, e.op, e.offset, e.nbytes]
            )
        return len(self.events)


# -- loading ---------------------------------------------------------------
def _warn_legacy_ops(n: int) -> None:
    warnings.warn(
        f"trace uses the deprecated op spelling 'sync-write' ({n} "
        "events); the canonical IR spelling is 'sync_write'",
        DeprecationWarning,
        stacklevel=3,
    )


def _load_jsonl(lines: list[str]) -> Trace:
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"malformed trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"not a {TRACE_FORMAT} header: {lines[0][:80]!r}"
        )
    version = header.get("version")
    if version not in (1, TRACE_VERSION):
        raise TraceFormatError(
            f"unsupported trace version {version!r}; this build reads "
            f"versions 1 and {TRACE_VERSION}"
        )
    events: list[TraceEvent] = []
    legacy_ops = 0
    for line_no, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"malformed event (line {line_no}): {exc}"
            ) from exc
        if isinstance(obj, dict) and obj.get("op") in LEGACY_OP_ALIASES:
            legacy_ops += 1
        events.append(TraceEvent.from_json(obj, line_no=line_no))
    declared = header.get("events")
    if isinstance(declared, int) and declared != len(events):
        raise TraceFormatError(
            f"trace truncated or padded: header declares {declared} "
            f"events, found {len(events)}"
        )
    if legacy_ops:
        _warn_legacy_ops(legacy_ops)
    meta = header.get("meta") or {}
    if not isinstance(meta, dict):
        raise TraceFormatError(f"trace meta is not an object: {meta!r}")
    return Trace(events=events, meta=meta, version=TRACE_VERSION)


def _load_csv(text: str) -> Trace:
    reader = csv.DictReader(io.StringIO(text))
    required = set(CSV_COLUMNS)
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise TraceFormatError(
            f"trace CSV needs columns {sorted(required)}, "
            f"got {reader.fieldnames}"
        )
    events: list[TraceEvent] = []
    legacy_ops = 0
    for line_no, row in enumerate(reader, start=2):
        if row.get("op") in LEGACY_OP_ALIASES:
            legacy_ops += 1
        try:
            events.append(
                TraceEvent(
                    time=float(row["time"]),
                    process=row["process"],
                    path=row["path"],
                    op=row["op"],
                    offset=int(row["offset"]),
                    nbytes=int(row["nbytes"]),
                    app=row.get("app", "") or "",
                    instance=int(row.get("instance") or 0),
                    think_s=float(row.get("think_s") or 0.0),
                    stride=int(row.get("stride") or 0),
                    count=int(row.get("count") or 1),
                )
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, TraceFormatError):
                raise TraceFormatError(
                    f"{exc} (line {line_no})"
                ) from exc
            raise TraceFormatError(
                f"malformed CSV event (line {line_no}): {exc}"
            ) from exc
    if legacy_ops:
        _warn_legacy_ops(legacy_ops)
    return Trace(events=events, meta={"dialect": "csv"})


def loads(text: str) -> Trace:
    """Parse a trace from a string, sniffing the dialect.

    A leading ``{`` means the native JSONL format; anything else is
    tried as the version-1 CSV dialect.
    """
    stripped = text.lstrip()
    if not stripped:
        raise TraceFormatError("empty trace")
    if stripped.startswith("{"):
        return _load_jsonl(text.splitlines())
    return _load_csv(text)


def load(fp: _t.TextIO) -> Trace:
    """Parse a trace from a file object (JSONL or CSV dialect)."""
    return loads(fp.read())


def load_path(path: str) -> Trace:
    """Parse a trace from a file path (JSONL or CSV dialect)."""
    with open(path) as fp:
        return load(fp)


def validate_trace(trace: Trace) -> list[str]:
    """Structural lint over a parsed trace; returns human-readable
    issues (empty list == clean).

    Event-level validity is enforced at construction; this checks the
    cross-event properties an importer cares about: per-process time
    monotonicity and degenerate (empty / zero-byte-only) traces.

    Open-loop traces (``meta["open_loop"]``, see
    :mod:`repro.workload.openloop`) are an arrival *schedule*, not a
    recording of completions: unbounded think time between events and
    pure-metadata churn are legitimate there, so the closed-loop
    degeneracy heuristics do not apply.  Instead the schedule is
    checked against its own declared provenance (arrival count and
    horizon).
    """
    issues: list[str] = []
    if not trace.events:
        issues.append("trace has no events")
        return issues
    for process, events in sorted(trace.by_process().items()):
        last = -math.inf
        for event in events:
            if event.time < last:
                issues.append(
                    f"process {process!r} times go backwards at "
                    f"t={event.time}"
                )
                break
            last = event.time
    if trace.meta.get("open_loop"):
        declared = trace.meta.get("offered_ops")
        if declared is not None and int(declared) != len(trace.events):
            issues.append(
                f"open-loop meta declares {declared} offered ops but "
                f"the trace has {len(trace.events)} events"
            )
        horizon = trace.meta.get("duration_s")
        if horizon is not None:
            late = max(e.time for e in trace.events)
            if late > float(horizon):
                issues.append(
                    f"open-loop arrival at t={late} lands past the "
                    f"declared {horizon}s schedule horizon"
                )
    elif all(e.total_bytes == 0 for e in trace.events):
        issues.append("every event transfers zero bytes")
    return issues


# -- legacy API (pre-IR call sites) ----------------------------------------
def load_trace(fp: _t.TextIO) -> list[TraceEvent]:
    """Parse a trace and return its events (legacy list-based API)."""
    return load(fp).events


def loads_trace(text: str) -> list[TraceEvent]:
    """Parse a trace string and return its events (legacy API)."""
    return loads(text).events


# Recorder/replayer re-exports keep the historical import surface
# (``repro.workload.trace.TraceRecorder`` / ``TraceReplayer``)
# working; the implementations live in their own modules now.  Lazy
# (PEP 562) because those modules import this one at load time.
def __getattr__(name: str) -> _t.Any:
    if name == "TraceRecorder":
        from repro.workload.record import TraceRecorder

        return TraceRecorder
    if name == "TraceReplayer":
        from repro.workload.replay import TraceReplayer

        return TraceReplayer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CANONICAL_OPS",
    "CSV_COLUMNS",
    "LEGACY_OP_ALIASES",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceEvent",
    "TraceFormatError",
    "TraceRecorder",
    "TraceReplayer",
    "canonical_op",
    "load",
    "load_path",
    "load_trace",
    "loads",
    "loads_trace",
    "validate_trace",
]
