"""Run one cluster configuration with one or more benchmark instances.

This is the choke point every experiment driver goes through, so it is
where the trace IR plugs into the stack:

* ``record=True`` taps the run via the instrumentation bus and returns
  the recorded :class:`~repro.workload.trace.Trace` on
  ``RunOutcome.trace`` — any driver's workload can be serialized.
* When the config resolves a trace source (``trace_source`` field or
  ``REPRO_TRACE``), the synthetic benchmark described by
  ``instance_params`` is *replaced* by a closed-loop replay of that
  trace on the configured cluster — so "run fig5 against this recorded
  workload" needs no driver changes at all.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.workload.microbench import MicroBenchmark, MicroBenchParams

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workload.trace import Trace


@dataclasses.dataclass
class InstanceResult:
    instance: int
    makespan: float
    per_rank: dict[int, float]


@dataclasses.dataclass
class RunOutcome:
    """Everything an experiment needs from one simulated run."""

    instances: list[InstanceResult]
    #: Simulated wall-clock from spawn to last rank's completion.
    total_time: float
    mean_read_latency: float
    mean_write_latency: float
    counters: dict[str, int]
    #: The live cluster, or ``None`` for sharded replays (each
    #: shard's cluster lives and dies inside its worker).
    cluster: Cluster | None
    #: The run's recorded trace (``record=True`` only).
    trace: "Trace | None" = None

    @property
    def makespan(self) -> float:
        """Slowest instance (the figure 6-8 y-axis)."""
        return max(i.makespan for i in self.instances)

    def counter(self, name: str) -> int:
        """A counter's final value (0 if absent)."""
        return self.counters.get(name, 0)

    @property
    def cache_hit_ratio(self) -> float:
        """hits / (hits + misses) across the run."""
        hits = self.counter("cache.hits")
        total = hits + self.counter("cache.misses")
        return hits / total if total else 0.0


def run_instances(
    config: ClusterConfig,
    instance_params: _t.Sequence[MicroBenchParams],
    record: bool = False,
) -> RunOutcome:
    """Build a cluster, run all instances concurrently, gather results.

    With a resolved trace source the synthetic instances are replaced
    by a replay of that trace (see module docstring); ``record=True``
    attaches a bus-tap recorder either way.
    """
    trace_source = config.resolved_trace_source
    if trace_source is not None:
        return _run_replay(config, trace_source, record=record)
    cluster = Cluster(config)
    env = cluster.env
    recorder = _tap(cluster) if record else None
    benches = [MicroBenchmark(p) for p in instance_params]
    procs = []
    for bench in benches:
        procs.extend(bench.spawn(cluster))
    done = env.all_of(procs)
    start = env.now
    env.run(until=done)
    total = env.now - start
    cluster.record_network_metrics()  # net.* saturation counters
    cluster.record_scheduler_metrics()  # sim.* event-loop counters
    metrics = cluster.metrics
    return RunOutcome(
        instances=[
            InstanceResult(
                instance=b.params.instance,
                makespan=b.makespan,
                per_rank=dict(b.completion_times),
            )
            for b in benches
        ],
        total_time=total,
        mean_read_latency=metrics.mean("client.read_latency"),
        mean_write_latency=metrics.mean("client.write_latency"),
        counters=dict(metrics.counters),
        cluster=cluster,
        trace=_finish(recorder, config, "microbench"),
    )


def _tap(cluster: Cluster):
    from repro.workload.record import TraceRecorder

    recorder = TraceRecorder(cluster)
    recorder.tap()
    return recorder


def _finish(recorder, config: ClusterConfig, source: str) -> "Trace | None":
    if recorder is None:
        return None
    recorder.close()
    return recorder.trace(
        source=source,
        compute_nodes=config.compute_nodes,
        iod_nodes=config.iod_nodes,
        caching=config.caching,
    )


def _run_replay(
    config: ClusterConfig, trace_source: str, record: bool
) -> RunOutcome:
    """Replay ``trace_source`` on the configured cluster, closed-loop.

    Instances are reconstructed from the trace's instance tags: each
    tag becomes one :class:`InstanceResult`, with ranks numbered by
    sorted process name within the tag — so figure drivers keyed on
    per-instance makespans keep working on replayed runs.
    """
    from repro.workload.replay import TraceReplayer
    from repro.workload.trace import load_path

    trace = load_path(trace_source)
    shards = config.resolved_engine_shards
    if shards > 1:
        if record:
            raise ValueError(
                "record=True taps one live cluster and cannot observe a "
                "sharded replay; record with engine_shards=1"
            )
        from repro.sim.parallel import run_sharded_replay

        outcome = run_sharded_replay(config, trace, shards=shards)
        return RunOutcome(
            instances=_replay_instances(trace, outcome.completion),
            total_time=outcome.total_time,
            mean_read_latency=outcome.mean_series("client.read_latency"),
            mean_write_latency=outcome.mean_series("client.write_latency"),
            counters=dict(outcome.counters),
            cluster=None,
            trace=None,
        )
    cluster = Cluster(config)
    recorder = _tap(cluster) if record else None
    replayer = TraceReplayer(cluster, trace, preserve_timing=False)
    total = replayer.run()
    cluster.record_network_metrics()
    cluster.record_scheduler_metrics()
    metrics = cluster.metrics
    return RunOutcome(
        instances=_replay_instances(trace, replayer.completion),
        total_time=total,
        mean_read_latency=metrics.mean("client.read_latency"),
        mean_write_latency=metrics.mean("client.write_latency"),
        counters=dict(metrics.counters),
        cluster=cluster,
        trace=_finish(recorder, config, f"replay:{trace_source}"),
    )


def _replay_instances(
    trace: "Trace", completion: dict[str, float]
) -> list[InstanceResult]:
    """Per-instance results reconstructed from replay completions."""
    by_instance: dict[int, dict[str, float]] = {}
    tags = {e.process: e.instance for e in trace.events}
    for process, elapsed in completion.items():
        by_instance.setdefault(tags.get(process, 0), {})[process] = elapsed
    return [
        InstanceResult(
            instance=tag,
            makespan=max(completions.values()),
            per_rank={
                rank: completions[process]
                for rank, process in enumerate(sorted(completions))
            },
        )
        for tag, completions in sorted(by_instance.items())
    ]
