"""Run one cluster configuration with one or more benchmark instances."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.workload.microbench import MicroBenchmark, MicroBenchParams


@dataclasses.dataclass
class InstanceResult:
    instance: int
    makespan: float
    per_rank: dict[int, float]


@dataclasses.dataclass
class RunOutcome:
    """Everything an experiment needs from one simulated run."""

    instances: list[InstanceResult]
    #: Simulated wall-clock from spawn to last rank's completion.
    total_time: float
    mean_read_latency: float
    mean_write_latency: float
    counters: dict[str, int]
    cluster: Cluster

    @property
    def makespan(self) -> float:
        """Slowest instance (the figure 6-8 y-axis)."""
        return max(i.makespan for i in self.instances)

    def counter(self, name: str) -> int:
        """A counter's final value (0 if absent)."""
        return self.counters.get(name, 0)

    @property
    def cache_hit_ratio(self) -> float:
        """hits / (hits + misses) across the run."""
        hits = self.counter("cache.hits")
        total = hits + self.counter("cache.misses")
        return hits / total if total else 0.0


def run_instances(
    config: ClusterConfig,
    instance_params: _t.Sequence[MicroBenchParams],
) -> RunOutcome:
    """Build a cluster, run all instances concurrently, gather results."""
    cluster = Cluster(config)
    env = cluster.env
    benches = [MicroBenchmark(p) for p in instance_params]
    procs = []
    for bench in benches:
        procs.extend(bench.spawn(cluster))
    done = env.all_of(procs)
    start = env.now
    env.run(until=done)
    total = env.now - start
    cluster.record_network_metrics()  # net.* saturation counters
    cluster.record_scheduler_metrics()  # sim.* event-loop counters
    metrics = cluster.metrics
    return RunOutcome(
        instances=[
            InstanceResult(
                instance=b.params.instance,
                makespan=b.makespan,
                per_rank=dict(b.completion_times),
            )
            for b in benches
        ],
        total_time=total,
        mean_read_latency=metrics.mean("client.read_latency"),
        mean_write_latency=metrics.mean("client.write_latency"),
        counters=dict(metrics.counters),
        cluster=cluster,
    )
