"""Workloads: the micro-benchmark, applications, and the trace IR.

Two ways to drive the simulated cluster:

* **Synthetic generators** — the paper's customizable micro-benchmark
  (Section 4.1; ``d``/``p``/``l``/``s`` knobs) and the application mixes
  of :mod:`repro.workload.apps`.
* **The trace IR** — any run can be *recorded* into a serializable,
  versioned :class:`Trace` (:mod:`repro.workload.record`),
  *transformed* into scenario families
  (:mod:`repro.workload.transform`), *replayed* deterministically
  against any configuration (:mod:`repro.workload.replay`), and
  external traces can be *imported* from JSONL/CSV with validation and
  sharing classification on ingest.
"""

from repro.workload.classify import (
    SharingClassifier,
    TraceCollector,
    classify_trace,
)
from repro.workload.microbench import MicroBenchmark, MicroBenchParams
from repro.workload.pattern import AccessPattern
from repro.workload.record import TraceRecorder
from repro.workload.replay import (
    TraceReplayer,
    record_microbench_trace,
    replay_trace_hash,
)
from repro.workload.runner import InstanceResult, RunOutcome, run_instances
from repro.workload.trace import (
    Trace,
    TraceEvent,
    TraceFormatError,
    load_trace,
    loads_trace,
    validate_trace,
)

__all__ = [
    "AccessPattern",
    "InstanceResult",
    "MicroBenchmark",
    "MicroBenchParams",
    "RunOutcome",
    "SharingClassifier",
    "Trace",
    "TraceCollector",
    "TraceEvent",
    "TraceFormatError",
    "TraceRecorder",
    "TraceReplayer",
    "classify_trace",
    "load_trace",
    "loads_trace",
    "record_microbench_trace",
    "replay_trace_hash",
    "run_instances",
    "validate_trace",
]
