"""The paper's customizable micro-benchmark (Section 4.1).

A parallel application whose processes issue read/write requests of
size ``d`` against shared/private files, with a tunable degree of
locality ``l`` (target cache-hit ratio), degree of data sharing ``s``
across application instances, and the node set ``p`` it is
parallelized over.  Running several instances on the same nodes
produces the multiprogrammed workloads of Sections 4.2.3/4.2.4.
"""

from repro.workload.classify import SharingClassifier, TraceCollector
from repro.workload.microbench import MicroBenchmark, MicroBenchParams
from repro.workload.pattern import AccessPattern
from repro.workload.runner import InstanceResult, RunOutcome, run_instances
from repro.workload.trace import TraceRecorder, TraceReplayer

__all__ = [
    "AccessPattern",
    "InstanceResult",
    "MicroBenchmark",
    "MicroBenchParams",
    "RunOutcome",
    "SharingClassifier",
    "TraceCollector",
    "TraceRecorder",
    "TraceReplayer",
    "run_instances",
]
