"""Reuse-distance (Mattson stack) analysis of block traces.

The paper fixes the cache at 1.2 MB and probes locality empirically
with the ``l`` knob.  Stack-distance analysis answers the underlying
question analytically: from *one* pass over a block trace, LRU's hit
ratio can be predicted for **every** cache size simultaneously
(Mattson et al., 1970) — because LRU has the inclusion property, an
access hits in a cache of ``C`` blocks iff its reuse distance is
< ``C``.

Combined with :mod:`repro.workload.trace`, this turns any recorded
workload into a cache-sizing curve without re-running the simulation
per size; a validation test cross-checks the prediction against the
simulated exact-LRU cache.
"""

from __future__ import annotations

import math
import typing as _t

from repro.workload.trace import TraceEvent

BlockId = _t.Hashable

INFINITE = math.inf


def reuse_distances(accesses: _t.Iterable[BlockId]) -> list[float]:
    """The LRU stack distance of every access.

    Distance = number of *distinct* blocks touched since the previous
    access to the same block; ``inf`` for first-ever accesses
    (compulsory misses).

    Uses the classic balanced-structure trick (here: order-statistics
    via a sorted timestamp list) giving O(n log n) overall.
    """
    import bisect

    last_time: dict[BlockId, int] = {}
    #: Sorted list of "last access times" of all distinct blocks.
    stack_times: list[int] = []
    out: list[float] = []
    for t, block in enumerate(accesses):
        prev = last_time.get(block)
        if prev is None:
            out.append(INFINITE)
        else:
            idx = bisect.bisect_left(stack_times, prev)
            # blocks with last-access time > prev are above it on the
            # LRU stack
            out.append(float(len(stack_times) - idx - 1))
            del stack_times[idx]
        stack_times.append(t)
        last_time[block] = t
    return out


def hit_ratio_curve(
    distances: _t.Sequence[float],
    cache_sizes: _t.Sequence[int],
) -> dict[int, float]:
    """Predicted LRU hit ratio for each cache size (in blocks).

    An access with reuse distance d hits in any LRU cache of size
    > d blocks (inclusion property).
    """
    if not distances:
        return {size: 0.0 for size in cache_sizes}
    finite = sorted(d for d in distances if d != INFINITE)
    n = len(distances)
    out: dict[int, float] = {}
    import bisect

    for size in cache_sizes:
        if size <= 0:
            raise ValueError(f"cache size must be positive, got {size}")
        hits = bisect.bisect_left(finite, float(size))
        out[size] = hits / n
    return out


def working_set_size(accesses: _t.Iterable[BlockId]) -> int:
    """Number of distinct blocks in the trace."""
    return len(set(accesses))


def events_to_blocks(
    events: _t.Sequence[TraceEvent],
    block_size: int = 4096,
    ops: _t.Container[str] = ("read", "write", "sync_write"),
) -> list[tuple[str, int]]:
    """Expand trace events into per-block accesses (trace order).

    Strided/list events contribute every range they touch.  Returns
    ``(path, block_no)`` tuples so blocks of different files never
    alias.
    """
    out: list[tuple[str, int]] = []
    for event in sorted(events, key=lambda e: e.time):
        if event.op not in ops:
            continue
        for offset, nbytes in event.ranges:
            if nbytes <= 0:
                continue
            first = offset // block_size
            last = (offset + nbytes - 1) // block_size
            for block_no in range(first, last + 1):
                out.append((event.path, block_no))
    return out


def analyze_trace(
    events: _t.Sequence[TraceEvent],
    cache_sizes: _t.Sequence[int],
    block_size: int = 4096,
) -> dict[str, _t.Any]:
    """One-call summary: reuse profile + hit-ratio curve for a trace."""
    blocks = events_to_blocks(events, block_size=block_size)
    distances = reuse_distances(blocks)
    finite = [d for d in distances if d != INFINITE]
    return {
        "accesses": len(blocks),
        "distinct_blocks": working_set_size(blocks),
        "compulsory_misses": len(distances) - len(finite),
        "median_reuse_distance": (
            sorted(finite)[len(finite) // 2] if finite else INFINITE
        ),
        "hit_ratio_by_cache_blocks": hit_ratio_curve(distances, cache_sizes),
    }
