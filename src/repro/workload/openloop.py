"""Open-loop workload generation (DESIGN.md §18).

The micro-benchmark and the recorded traces are *closed loop*: each
client issues its next request only after the previous one finishes,
so a slow system is offered less load — the feedback that hides
saturation.  This module generates *open-loop* workloads, where
arrival times are decided in advance by a stochastic process and do
not slow down with the system, which is how the metadata server's
serialization point becomes visible as a throughput knee.

Everything is emitted as ordinary Trace IR with absolute timestamps
(``meta["open_loop"] = True``), so an open-loop workload composes with
:class:`~repro.workload.replay.TraceReplayer` (``preserve_timing=True``
holds each arrival to its stamp), the transform passes, the parallel
engine shards, and the analytic models for free.

Structure of a generated workload:

* **Arrivals**: :class:`PoissonArrivals` (memoryless at a fixed rate)
  or :class:`MMPPArrivals` (a two-state Markov-modulated Poisson
  process — exponentially distributed ON bursts at ``burst_factor``
  times the base rate, OFF lulls at a reduced rate, long-run average
  equal to the configured rate).
* **Popularity**: :class:`ZipfSampler` ranks the file namespace by a
  heavy-tailed Zipf(``alpha``) law, the shape CAWL-style workload
  studies report for shared storage.
* **Sharing**: each request targets the cluster-wide shared namespace
  (``/shared/f<rank>``) with probability ``sharing``, otherwise the
  process-private twin (``/p<i>/f<rank>``) — the inter-application
  sharing structure the paper's cache exploits.
* **Shape**: fixed-size requests, optionally strided list-I/O
  (``stride_count > 1``), drawn from a read/write/sync_write mix.

All randomness comes from ``numpy.random.default_rng`` seeded through
one :class:`numpy.random.SeedSequence` spawn per process stream, so a
workload is a deterministic function of its parameters — the same
trace serially, in parallel sweep workers, and across sessions.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

import numpy as np

from repro.workload.trace import Trace, TraceEvent

#: Recognised arrival processes.
ARRIVALS = ("poisson", "mmpp")

#: Recognised per-file access patterns: sequential cursors (``seq``)
#: or uniformly random request-aligned offsets (``uniform``).
ACCESS_PATTERNS = ("seq", "uniform")

_INF = float("inf")


# -- samplers ---------------------------------------------------------------
class ZipfSampler:
    """Zipf(``alpha``) ranks over ``n`` items, clipped to [0, n).

    Draw ``r`` means "the r-th most popular file".  Draws beyond the
    namespace clip to the coldest rank, matching the
    :func:`~repro.workload.transform.zipf_reskew` transform.
    """

    def __init__(self, alpha: float, n: int, seed: _t.Any) -> None:
        if alpha <= 1.0:
            raise ValueError(f"zipf alpha must be > 1, got {alpha}")
        if n < 1:
            raise ValueError(f"need at least one item, got {n}")
        self.alpha = alpha
        self.n = n
        self._rng = np.random.default_rng(seed)

    def draw(self) -> int:
        """The next rank."""
        return min(int(self._rng.zipf(self.alpha)), self.n) - 1

    def draws(self, count: int) -> list[int]:
        """The next ``count`` ranks."""
        return [self.draw() for _ in range(count)]


class PoissonArrivals:
    """Exponential inter-arrival gaps at ``rate_ops_s``."""

    def __init__(self, rate_ops_s: float, seed: _t.Any) -> None:
        if rate_ops_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_ops_s}")
        self.rate_ops_s = rate_ops_s
        self._rng = np.random.default_rng(seed)

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return float(self._rng.exponential(1.0 / self.rate_ops_s))

    def gaps(self, count: int) -> list[float]:
        """The next ``count`` inter-arrival gaps."""
        return [self.next_gap() for _ in range(count)]


class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The modulating chain alternates exponentially distributed ON and
    OFF sojourns (means ``on_fraction * cycle_s`` and
    ``(1 - on_fraction) * cycle_s``); arrivals are Poisson at
    ``burst_factor * rate`` while ON and at the complementary reduced
    rate while OFF, so the long-run average is exactly
    ``rate_ops_s``.  ``burst_factor * on_fraction <= 1`` is required
    (the OFF rate cannot go negative); equality makes OFF silent.
    """

    def __init__(
        self,
        rate_ops_s: float,
        seed: _t.Any,
        burst_factor: float = 4.0,
        on_fraction: float = 0.25,
        cycle_s: float = 0.2,
    ) -> None:
        if rate_ops_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_ops_s}")
        if burst_factor < 1:
            raise ValueError(
                f"burst_factor must be >= 1, got {burst_factor}"
            )
        if not (0 < on_fraction < 1):
            raise ValueError(
                f"on_fraction must be in (0,1), got {on_fraction}"
            )
        if cycle_s <= 0:
            raise ValueError(f"cycle_s must be positive, got {cycle_s}")
        if burst_factor * on_fraction > 1 + 1e-12:
            raise ValueError(
                "burst_factor * on_fraction must be <= 1 so the OFF "
                f"rate stays non-negative, got "
                f"{burst_factor} * {on_fraction}"
            )
        self.rate_ops_s = rate_ops_s
        self.on_rate = burst_factor * rate_ops_s
        self.off_rate = max(
            0.0,
            rate_ops_s * (1.0 - burst_factor * on_fraction)
            / (1.0 - on_fraction),
        )
        self.mean_on_s = on_fraction * cycle_s
        self.mean_off_s = (1.0 - on_fraction) * cycle_s
        self._rng = np.random.default_rng(seed)
        self._on = True
        self._state_left = float(self._rng.exponential(self.mean_on_s))

    def _flip(self) -> None:
        self._on = not self._on
        mean = self.mean_on_s if self._on else self.mean_off_s
        self._state_left = float(self._rng.exponential(mean))

    def next_gap(self) -> float:
        """Seconds until the next arrival (spanning state flips)."""
        elapsed = 0.0
        while True:
            rate = self.on_rate if self._on else self.off_rate
            wait = (
                float(self._rng.exponential(1.0 / rate))
                if rate > 0
                else _INF
            )
            if wait <= self._state_left:
                self._state_left -= wait
                return elapsed + wait
            elapsed += self._state_left
            self._flip()

    def gaps(self, count: int) -> list[float]:
        """The next ``count`` inter-arrival gaps."""
        return [self.next_gap() for _ in range(count)]


# -- parameters --------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class OpenLoopParams:
    """Shape of one open-loop workload."""

    #: Independent client processes the offered load is split across.
    processes: int = 8
    #: Length of the arrival schedule (trace span), seconds.
    duration_s: float = 1.0
    #: Aggregate offered rate across all processes, ops/second.
    rate_ops_s: float = 2000.0
    #: Arrival process: ``"poisson"`` or ``"mmpp"``.
    arrival: str = "poisson"
    #: MMPP knobs (ignored for poisson); see :class:`MMPPArrivals`.
    burst_factor: float = 4.0
    on_fraction: float = 0.25
    cycle_s: float = 0.2
    #: Files per namespace (shared and each private one).
    n_files: int = 64
    #: Zipf popularity skew over the namespace (> 1).
    zipf_alpha: float = 1.3
    #: Probability a request targets the shared namespace.
    sharing: float = 0.5
    #: Probability a request opens a *fresh* file instead of drawing
    #: from the popularity distribution (namespace churn: log/temp
    #: file creation).  Every fresh open pays a metadata round trip —
    #: ``churn=1`` is the pure metadata-stress workload that exposes
    #: the mgr's serialization point.
    churn: float = 0.0
    #: Op mix; the remainder after read + write is sync_write.
    read_fraction: float = 0.65
    write_fraction: float = 0.25
    #: Bytes per request (per range when strided).
    request_bytes: int = 4096
    #: Logical file size; sequential per-file cursors wrap here.
    file_bytes: int = 1 << 20
    #: Offset choice within a file: ``"seq"`` advances a per-file
    #: cursor (stream-like); ``"uniform"`` draws request-aligned
    #: offsets uniformly, spreading load over every stripe (and thus
    #: every iod) instead of pounding stripe 0.
    access: str = "seq"
    #: Strided list-I/O shape: ``stride_count > 1`` turns each request
    #: into a regular strided event of ``stride_count`` ranges spaced
    #: ``stride_bytes`` apart (0 = dense, back-to-back ranges).
    stride_bytes: int = 0
    stride_count: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError(f"need >= 1 process, got {self.processes}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration_s}")
        if self.rate_ops_s <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate_ops_s}")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival {self.arrival!r}; have {ARRIVALS}"
            )
        if self.n_files < 1:
            raise ValueError(f"need >= 1 file, got {self.n_files}")
        if not (0.0 <= self.sharing <= 1.0):
            raise ValueError(f"sharing must be in [0,1], got {self.sharing}")
        if not (0.0 <= self.churn <= 1.0):
            raise ValueError(f"churn must be in [0,1], got {self.churn}")
        if (
            self.read_fraction < 0
            or self.write_fraction < 0
            or self.read_fraction + self.write_fraction > 1.0 + 1e-12
        ):
            raise ValueError(
                "op mix fractions must be non-negative and sum to <= 1, "
                f"got read={self.read_fraction} write={self.write_fraction}"
            )
        if self.access not in ACCESS_PATTERNS:
            raise ValueError(
                f"unknown access {self.access!r}; have {ACCESS_PATTERNS}"
            )
        if self.request_bytes <= 0:
            raise ValueError(
                f"request_bytes must be > 0, got {self.request_bytes}"
            )
        if self.file_bytes < self.request_bytes:
            raise ValueError(
                f"file of {self.file_bytes} cannot hold one request of "
                f"{self.request_bytes}"
            )
        if self.stride_count < 1:
            raise ValueError(
                f"stride_count must be >= 1, got {self.stride_count}"
            )
        if self.stride_bytes < 0:
            raise ValueError(
                f"stride_bytes must be >= 0, got {self.stride_bytes}"
            )
        if self.request_span > self.file_bytes:
            raise ValueError(
                f"strided span of {self.request_span} bytes does not "
                f"fit in a {self.file_bytes}-byte file"
            )

    @property
    def request_span(self) -> int:
        """Bytes one (possibly strided) request spans in the file."""
        stride = self.stride_bytes or self.request_bytes
        if self.stride_count == 1:
            return self.request_bytes
        return (self.stride_count - 1) * stride + self.request_bytes

    def process_names(self) -> list[str]:
        """Client process names, in spawn (= sorted) order."""
        return [f"openloop{i:03d}" for i in range(self.processes)]

    def arrivals_for(self, seed: _t.Any) -> PoissonArrivals | MMPPArrivals:
        """One process's arrival sampler at its share of the rate."""
        rate = self.rate_ops_s / self.processes
        if self.arrival == "poisson":
            return PoissonArrivals(rate, seed)
        return MMPPArrivals(
            rate,
            seed,
            burst_factor=self.burst_factor,
            on_fraction=self.on_fraction,
            cycle_s=self.cycle_s,
        )


# -- generation --------------------------------------------------------------
def generate(params: OpenLoopParams) -> Trace:
    """Generate the open-loop workload trace for ``params``.

    Each process stream draws from its own spawned seed sequence, so
    streams are mutually independent yet the whole trace is a pure
    function of ``params``.
    """
    seeds = np.random.SeedSequence(params.seed).spawn(params.processes)
    effective_stride = params.stride_bytes or params.request_bytes
    span = params.request_span
    events: list[TraceEvent] = []
    for i, name in enumerate(params.process_names()):
        arrival_seed, zipf_seed, mix_seed = seeds[i].spawn(3)
        arrivals = params.arrivals_for(arrival_seed)
        popularity = ZipfSampler(
            params.zipf_alpha, params.n_files, zipf_seed
        )
        mix_rng = np.random.default_rng(mix_seed)
        cursors: dict[str, int] = {}
        fresh = 0
        t = arrivals.next_gap()
        while t <= params.duration_s:
            if params.churn and mix_rng.random() < params.churn:
                path = f"/p{i}/new{fresh}"
                fresh += 1
            else:
                rank = popularity.draw()
                shared = mix_rng.random() < params.sharing
                path = (
                    f"/shared/f{rank}" if shared else f"/p{i}/f{rank}"
                )
            draw = mix_rng.random()
            if draw < params.read_fraction:
                op = "read"
            elif draw < params.read_fraction + params.write_fraction:
                op = "write"
            else:
                op = "sync_write"
            if params.access == "uniform":
                slots = (params.file_bytes - span) // params.request_bytes
                cursor = int(
                    mix_rng.integers(0, slots + 1)
                ) * params.request_bytes
            else:
                cursor = cursors.get(path, 0)
                if cursor + span > params.file_bytes:
                    cursor = 0
                cursors[path] = cursor + span
            events.append(
                TraceEvent(
                    time=t,
                    process=name,
                    path=path,
                    op=op,
                    offset=cursor,
                    nbytes=params.request_bytes,
                    app="openloop",
                    instance=i,
                    stride=(
                        effective_stride if params.stride_count > 1 else 0
                    ),
                    count=params.stride_count,
                )
            )
            t += arrivals.next_gap()
    trace = Trace(events)
    trace.meta.update(
        {
            "open_loop": True,
            "arrival": params.arrival,
            "offered_ops": len(events),
            "offered_rate_ops_s": params.rate_ops_s,
            "duration_s": params.duration_s,
            "processes": params.processes,
            "zipf_alpha": params.zipf_alpha,
            "sharing": params.sharing,
            "churn": params.churn,
            "seed": params.seed,
        }
    )
    return trace


def is_open_loop(trace: Trace) -> bool:
    """Whether ``trace`` declares itself an open-loop workload."""
    return bool(trace.meta.get("open_loop"))


def offered_load_stats(trace: Trace) -> dict[str, float]:
    """Offered-load statistics of an open-loop trace.

    Computed from the events themselves (the meta block is
    provenance, not authority): total arrivals, schedule span, the
    aggregate offered rate, and the mean per-process rate.
    """
    if not trace.events:
        return {
            "offered_ops": 0,
            "span_s": 0.0,
            "duration_s": 0.0,
            "offered_ops_per_s": 0.0,
            "per_process_ops_per_s": 0.0,
        }
    span = trace.events[-1].time - trace.events[0].time
    # The declared schedule length is the honest denominator when
    # present — the last arrival lands before the horizon, not at it.
    duration = float(trace.meta.get("duration_s") or 0.0) or span
    n = len(trace.events)
    rate = n / duration if duration > 0 else math.inf
    return {
        "offered_ops": n,
        "span_s": span,
        "duration_s": duration,
        "offered_ops_per_s": rate,
        "per_process_ops_per_s": rate / max(1, len(trace.processes)),
    }


# -- measurement --------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class OpenLoopReport:
    """Offered vs. completed load of one open-loop run."""

    offered_ops: int
    duration_s: float
    makespan_s: float
    #: Per-op latency percentiles over every completed data call.
    p50_s: float
    p95_s: float
    p99_s: float

    @property
    def offered_ops_per_s(self) -> float:
        """Arrival rate the generator scheduled."""
        return self.offered_ops / self.duration_s

    @property
    def completed_ops_per_s(self) -> float:
        """Throughput actually sustained (ops over the makespan).

        Below saturation the makespan tracks the schedule and this
        matches the offered rate; past the knee the makespan stretches
        and completed falls behind offered.
        """
        if self.makespan_s <= 0:
            return 0.0
        return self.offered_ops / self.makespan_s

    @property
    def saturated(self) -> bool:
        """Whether the run fell measurably behind its arrival schedule."""
        return self.makespan_s > 1.05 * self.duration_s


#: Latency series a data op lands in, by op kind.
_LATENCY_SERIES = (
    "client.read_latency",
    "client.write_latency",
    "client.sync_write_latency",
)


def _percentile(data: list[float], q: float) -> float:
    """Nearest-rank percentile (matching ``Metrics.percentile``)."""
    if not data:
        return math.nan
    ordered = sorted(data)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def report_from_series(
    trace: Trace,
    makespan_s: float,
    series: _t.Mapping[str, _t.Sequence[float]],
) -> OpenLoopReport:
    """Fold a replay's latency series into an :class:`OpenLoopReport`."""
    latencies: list[float] = []
    for name in _LATENCY_SERIES:
        latencies.extend(series.get(name, ()))
    duration = float(trace.meta.get("duration_s") or 0.0)
    if duration <= 0.0 and trace.events:
        duration = trace.events[-1].time
    return OpenLoopReport(
        offered_ops=len(trace.events),
        duration_s=duration,
        makespan_s=makespan_s,
        p50_s=_percentile(latencies, 50),
        p95_s=_percentile(latencies, 95),
        p99_s=_percentile(latencies, 99),
    )


def run_open_loop(
    config: _t.Any, params: OpenLoopParams
) -> OpenLoopReport:
    """Generate and replay one open-loop workload against ``config``.

    Runs through :func:`repro.sim.parallel.run_sharded_replay`, which
    degenerates to the exact serial engine at one shard — so the same
    call measures serial and ``--engine-shards`` execution.
    ``preserve_timing=True`` is what makes the replay open loop: every
    request waits for its scheduled arrival, never for its
    predecessor's completion on another stream.
    """
    from repro.sim.parallel import run_sharded_replay

    trace = generate(params)
    outcome = run_sharded_replay(config, trace, preserve_timing=True)
    return report_from_series(trace, outcome.total_time, outcome.series)
