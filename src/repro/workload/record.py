"""Recording workload traces from live simulated runs.

Two attachment styles produce the same IR
(:class:`~repro.workload.trace.Trace`):

* **Per-client**: :meth:`TraceRecorder.attach` installs itself as a
  client's ``trace_sink`` — precise control over which processes are
  recorded, and the style the classifier tests use.

* **Bus tap**: :meth:`TraceRecorder.tap` subscribes to the cluster's
  svc instrumentation bus and collects the ``client_io`` records every
  :class:`~repro.pvfs.client.PVFSClient` emits when the bus has
  subscribers.  This taps *any* run — microbench, app mixes, the
  experiment drivers — without touching its code, and it is the path
  ``run_instances(record=True)`` uses.

Either way, recording is synchronous Python off the simulation's event
schedule: no simulated time passes and no events are (de)scheduled, so
a recorded run keeps the exact BLAKE2b schedule hash of an unrecorded
one.
"""

from __future__ import annotations

import typing as _t

from repro.svc.events import ServiceEvent, get_bus
from repro.workload.trace import Trace, TraceEvent

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.pvfs.client import PVFSClient


class TraceRecorder:
    """Collect the I/O requests of a run as trace IR events."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.events: list[TraceEvent] = []
        self._paths: dict[int, str] = {}
        self._detach: _t.Callable[[], None] | None = None

    # -- per-client attachment -------------------------------------------
    def attach(
        self,
        client: "PVFSClient",
        process_name: str,
        app: str = "",
        instance: int = 0,
    ) -> "PVFSClient":
        """Record ``client``'s data calls under ``process_name``;
        returns the client for chaining."""
        client.process_name = process_name
        if app:
            client.app = app
        client.instance = instance

        def sink(
            time: float,
            process: str,
            file_id: int,
            offset: int,
            nbytes: int,
            op: str,
        ) -> None:
            self.events.append(
                TraceEvent(
                    time=time,
                    process=process,
                    path=self._path_of(file_id),
                    op=op,
                    offset=offset,
                    nbytes=nbytes,
                    app=client.app,
                    instance=client.instance,
                )
            )

        client.trace_sink = sink
        return client

    # -- bus tap ----------------------------------------------------------
    def tap(self) -> _t.Callable[[], None]:
        """Record every client on the cluster via the instrumentation
        bus; returns a detach callable (also kept for :meth:`close`)."""
        self._detach = get_bus(self.cluster.env).subscribe(self._on_bus_event)
        return self._detach

    def close(self) -> None:
        """Detach the bus tap, if one is active."""
        if self._detach is not None:
            self._detach()
            self._detach = None

    def _on_bus_event(self, record: ServiceEvent) -> None:
        if record.kind != "client_io":
            return
        d = record.detail
        self.events.append(
            TraceEvent(
                time=record.time,
                process=d["process"],
                path=self._path_of(d["file_id"]),
                op=d["op"],
                offset=d["offset"],
                nbytes=d["nbytes"],
                app=d.get("app", ""),
                instance=d.get("instance", 0),
                stride=d.get("stride", 0),
                count=d.get("count", 1),
            )
        )

    # -- results ----------------------------------------------------------
    def _path_of(self, file_id: int) -> str:
        """Resolve a file id back to its path via the mgr namespace.

        Memoized: an id is stable for the run, and a later unlink must
        not erase the identity of already-recorded accesses.
        """
        path = self._paths.get(file_id)
        if path is None:
            for candidate, handle in self.cluster.mgr._by_path.items():
                self._paths.setdefault(handle.file_id, candidate)
            path = self._paths.get(file_id, f"/unknown/fid-{file_id}")
            self._paths[file_id] = path
        return path

    def trace(self, **meta: _t.Any) -> Trace:
        """The recording as a :class:`Trace` (``meta`` is attached)."""
        return Trace(events=list(self.events), meta=dict(meta))

    def dumps(self) -> str:
        """The recording serialized as JSONL."""
        return self.trace().dumps()

    def to_csv(self, fp: _t.TextIO) -> int:
        """The recording in the legacy CSV dialect."""
        return self.trace().dump_csv(fp)
