"""Access-pattern generation for the micro-benchmark.

Each process walks its own partition of a file ("each processor/node
in an application accesses a distinct portion of the file — completely
data parallel").  Two knobs shape the stream:

* **locality** ``l``: each request re-visits the previous offset with
  probability ``l`` (a guaranteed cache hit when caching is on, since
  a request never exceeds the cache size), otherwise advances to fresh
  data.  ``l=0`` makes every request a compulsory miss; ``l=1`` makes
  every request after the first a hit — exactly the paper's best/worst
  cases.
* **sharing** ``s``: a request targets the *shared* file with
  probability ``s``, the instance-private file otherwise.  Instances
  draw the same shared-offset sequence, so one instance's misses
  become the other's hits when they share a node's cache.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np


@dataclasses.dataclass
class AccessDescriptor:
    """One generated request."""

    target: str  # "shared" | "private"
    offset: int
    nbytes: int
    fresh: bool  # False when this is a locality re-visit


class AccessPattern:
    """Deterministic per-process request stream."""

    def __init__(
        self,
        request_size: int,
        partition_start: int,
        partition_bytes: int,
        locality: float,
        sharing: float,
        seed: int,
        shared_start_slot: int = 0,
    ) -> None:
        if request_size <= 0:
            raise ValueError(f"request size must be positive, got {request_size}")
        if partition_bytes < request_size:
            raise ValueError(
                f"partition of {partition_bytes} cannot hold one request "
                f"of {request_size}"
            )
        if not (0.0 <= locality <= 1.0):
            raise ValueError(f"locality must be in [0,1], got {locality}")
        if not (0.0 <= sharing <= 1.0):
            raise ValueError(f"sharing must be in [0,1], got {sharing}")
        self.request_size = request_size
        self.partition_start = partition_start
        self.partition_bytes = partition_bytes
        self.locality = locality
        self.sharing = sharing
        self._rng = np.random.default_rng(seed)
        #: Both instances walk the SAME shared slots (that is what
        #: "sharing" means), but starting ``shared_start_slot`` apart:
        #: two copies of one program rarely process the dataset from
        #: the identical position, and the stagger is what lets each
        #: instance first-touch half the data while hitting on the
        #: other half — perfectly phase-locked walks would instead
        #: collide on every in-flight fetch.
        self._cursor: dict[str, int] = {
            "shared": shared_start_slot,
            "private": 0,
        }
        self._last: dict[str, int | None] = {"shared": None, "private": None}
        #: How many requests fit in the partition before wrapping.
        self.requests_per_pass = partition_bytes // request_size

    def _fresh_offset(self, target: str) -> int:
        slot = self._cursor[target] % self.requests_per_pass
        self._cursor[target] += 1
        return self.partition_start + slot * self.request_size

    def next(self) -> AccessDescriptor:
        """Generate the next request descriptor."""
        target = "shared" if self._rng.random() < self.sharing else "private"
        last = self._last[target]
        if last is not None and self._rng.random() < self.locality:
            return AccessDescriptor(
                target=target,
                offset=last,
                nbytes=self.request_size,
                fresh=False,
            )
        offset = self._fresh_offset(target)
        self._last[target] = offset
        return AccessDescriptor(
            target=target, offset=offset, nbytes=self.request_size, fresh=True
        )

    def stream(self, n: int) -> _t.Iterator[AccessDescriptor]:
        """Yield the next ``n`` request descriptors."""
        for _ in range(n):
            yield self.next()
