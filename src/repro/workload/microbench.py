"""The micro-benchmark application (Section 4.1)."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cluster import Cluster
from repro.sim import Process
from repro.workload.pattern import AccessPattern


@dataclasses.dataclass
class MicroBenchParams:
    """Command-line parameters of the paper's micro-benchmark.

    ``nodes`` is the node set the instance is parallelized over (its
    length is the paper's ``p``); ``request_size`` is ``d``;
    ``locality`` is ``l``; ``sharing`` is ``s``.
    """

    nodes: list[str]
    request_size: int
    iterations: int
    mode: str = "read"  # "read" | "write" | "sync-write"
    locality: float = 0.0
    sharing: float = 0.0
    instance: int = 0
    #: Bytes of each process's private partition walked by fresh
    #: requests.  Must defeat the 1.2 MB client cache (so l=0 really
    #: means all-miss) while fitting the iods' page cache.
    partition_bytes: int = 8 * 2**20
    shared_path: str = "/shared/dataset"
    private_path_template: str = "/private/instance-{instance}"
    #: Carry real bytes end-to-end (slower host-side; used by
    #: correctness tests) or run size-only (benchmarks).
    want_data: bool = False
    #: Sequentially touch the whole partition once before the timed
    #: loop (warms the iod page caches for steady-state figures).
    warmup: bool = False
    #: Mean of the exponential think time between requests (models OS
    #: scheduling noise; keeps co-scheduled instances from running in
    #: artificial lockstep).
    think_time_mean_s: float = 50e-6
    #: Each instance starts its shared-file walk this many request
    #: slots further in (wrapping): instance i begins at slot
    #: ``i * shared_stagger_slots``.  Staggered starts split the
    #: first-toucher cost between the instances; see AccessPattern.
    shared_stagger_slots: int = 2
    #: In write mode: fraction of writes issued as coherent
    #: ``sync_write`` (the paper's consistency-critical applications
    #: mix coherent and plain writes; 0.0 = all buffered, 1.0 = all
    #: coherent).
    sync_fraction: float = 0.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("instance needs at least one node")
        if self.mode not in ("read", "write", "sync-write"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if not (0.0 <= self.sync_fraction <= 1.0):
            raise ValueError(
                f"sync_fraction must be in [0,1], got {self.sync_fraction}"
            )

    @property
    def p(self) -> int:
        """Degree of parallelism (number of nodes)."""
        return len(self.nodes)

    @property
    def private_path(self) -> str:
        """This instance's private file path."""
        return self.private_path_template.format(instance=self.instance)

    @property
    def total_bytes_per_process(self) -> int:
        """iterations x request_size."""
        return self.iterations * self.request_size


class MicroBenchmark:
    """Spawns one process per node of the instance."""

    def __init__(self, params: MicroBenchParams) -> None:
        self.params = params
        #: Completion time of each rank, filled as processes finish.
        self.completion_times: dict[int, float] = {}

    def spawn(self, cluster: Cluster) -> list[Process]:
        """Start all ranks; returns their processes (wait with AllOf)."""
        procs = []
        for rank, node in enumerate(self.params.nodes):
            procs.append(
                cluster.env.process(
                    self._run_rank(cluster, node, rank),
                    name=(
                        f"mb-i{self.params.instance}-r{rank}@{node}"
                    ),
                )
            )
        return procs

    def _run_rank(
        self, cluster: Cluster, node: str, rank: int
    ) -> _t.Generator:
        params = self.params
        client = cluster.client(node)
        # Stable identity (not the id()-derived default) so recorded
        # traces name ranks deterministically across runs.
        client.process_name = f"mb-i{params.instance}-r{rank}@{node}"
        client.app = "microbench"
        client.instance = params.instance
        shared = yield from client.open(params.shared_path)
        private = yield from client.open(params.private_path)
        handles = {"shared": shared, "private": private}
        pattern = AccessPattern(
            request_size=params.request_size,
            # Each rank owns a distinct partition (data parallel).  The
            # shared file's partitions are per-*rank* so co-scheduled
            # instances touch the same shared bytes on the same node.
            # The pattern seed deliberately does NOT mix in the
            # instance id: two instances of the benchmark run the same
            # binary with the same parameters (as in the paper), so
            # rank k of each instance issues the same request stream —
            # maximising the temporal overlap on the shared file.
            # Distinct params.seed values decouple them if desired.
            partition_start=rank * params.partition_bytes,
            partition_bytes=params.partition_bytes,
            locality=params.locality,
            sharing=params.sharing,
            seed=params.seed + 7919 * rank,
            shared_start_slot=params.instance * params.shared_stagger_slots,
        )
        if params.warmup:
            yield from self._warmup(cluster, client, handles, rank)
        # Scheduling jitter: unlike the access pattern, this IS
        # per-instance (it models the OS, not the program).
        import numpy as np

        jitter_rng = np.random.default_rng(
            params.seed + 31 * rank + 7907 * params.instance + 1
        )
        start = cluster.env.now
        for desc in pattern.stream(params.iterations):
            if params.think_time_mean_s > 0:
                yield cluster.env.timeout(
                    float(jitter_rng.exponential(params.think_time_mean_s))
                )
            handle = handles[desc.target]
            data = None
            if params.want_data and params.mode != "read":
                data = self._payload(desc.offset, desc.nbytes)
            if params.mode == "read":
                yield from client.read(
                    handle, desc.offset, desc.nbytes, want_data=params.want_data
                )
            elif params.mode == "write":
                if (
                    params.sync_fraction > 0.0
                    and jitter_rng.random() < params.sync_fraction
                ):
                    yield from client.sync_write(
                        handle, desc.offset, desc.nbytes, data
                    )
                else:
                    yield from client.write(
                        handle, desc.offset, desc.nbytes, data
                    )
            else:
                yield from client.sync_write(
                    handle, desc.offset, desc.nbytes, data
                )
        elapsed = cluster.env.now - start
        self.completion_times[rank] = elapsed
        cluster.metrics.record("app.completion_time", elapsed)
        return elapsed

    def _warmup(
        self, cluster: Cluster, client, handles, rank: int
    ) -> _t.Generator:
        """One sequential pass over the rank's partitions, bypassing
        the cache module, to warm the iods' page caches."""
        params = self.params
        raw = cluster.client(params.nodes[rank], use_cache=False)
        raw.record_metrics = False
        chunk = 2**20
        targets = ["private"] if params.sharing == 0 else ["private", "shared"]
        for target in targets:
            base = rank * params.partition_bytes
            pos = 0
            while pos < params.partition_bytes:
                n = min(chunk, params.partition_bytes - pos)
                if params.mode == "read":
                    yield from raw.read(handles[target], base + pos, n)
                else:
                    yield from raw.write(handles[target], base + pos, n, None)
                pos += n

    @staticmethod
    def _payload(offset: int, nbytes: int) -> bytes:
        """Deterministic bytes so readers can verify content."""
        pattern = (offset // 4096 % 251 + 1).to_bytes(1, "big")
        return pattern * nbytes

    @property
    def makespan(self) -> float:
        """Slowest rank's elapsed time (the instance's completion)."""
        if not self.completion_times:
            raise RuntimeError("benchmark has not finished")
        return max(self.completion_times.values())
