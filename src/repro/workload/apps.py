"""Application-level benchmarks with inter-application data sharing.

The paper closes on exactly this gap: "there is a lack of benchmarks
containing groups of applications sharing data.  Identification and
characterization of such benchmarks is also an interesting topic".
This module provides that characterisation: four synthetic applications
drawn from the paper's motivating domains (Section 1: "medical imaging,
data analysis and mining, video processing, large archive maintenance"),
each a generator-based program against the public API, plus a
:func:`run_app_mix` harness that co-schedules them the way Figure 1's
analysis cycle does.

Each application declares its access *signature* (the sharing pattern a
classifier should find), so the suite doubles as ground truth for
:mod:`repro.workload.classify`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cluster import Cluster
from repro.sim import Process


@dataclasses.dataclass
class AppResult:
    name: str
    node: str
    elapsed_s: float
    requests: int


class BaseApp:
    """A simulated application bound to one node of a cluster."""

    #: Sharing pattern the app's file accesses should classify as when
    #: co-run with its natural partners.
    signature: str = "private"

    def __init__(
        self, cluster: Cluster, node: str, name: str | None = None
    ) -> None:
        self.cluster = cluster
        self.node = node
        self.name = name or type(self).__name__
        self.client = cluster.client(node)
        self.client.process_name = f"{self.name}@{node}"
        self.client.app = self.name
        self.requests = 0
        self.result: AppResult | None = None

    def spawn(self) -> Process:
        """Start the app as a simulation process."""
        return self.cluster.env.process(
            self._timed_run(), name=f"app-{self.name}@{self.node}"
        )

    def _timed_run(self) -> _t.Generator:
        env = self.cluster.env
        start = env.now
        yield from self.run()
        self.result = AppResult(
            name=self.name,
            node=self.node,
            elapsed_s=env.now - start,
            requests=self.requests,
        )
        self.cluster.metrics.record(f"app.{self.name}.elapsed", self.result.elapsed_s)
        return self.result

    def run(self) -> _t.Generator:  # pragma: no cover - interface
        """Process body: the application's program."""
        raise NotImplementedError

    # -- instrumented I/O helpers -------------------------------------------
    def _read(self, handle, offset, nbytes) -> _t.Generator:
        self.requests += 1
        yield from self.client.read(handle, offset, nbytes)

    def _write(self, handle, offset, nbytes) -> _t.Generator:
        self.requests += 1
        yield from self.client.write(handle, offset, nbytes, None)

    def _compute(self, seconds: float) -> _t.Generator:
        yield from self.cluster.node(self.node).compute(seconds)


class OutOfCoreMatrixMultiply(BaseApp):
    """Tiled out-of-core C = A x B (the compiler-literature workload
    the paper's related work revolves around: Bordawekar, Paleczny...).

    Reads tiles of A row-panel-wise and B column-panel-wise — B's
    panels are re-read once per row panel, which is where a cache (or
    a co-scheduled sibling) helps.
    """

    signature = "read-shared"

    def __init__(
        self,
        cluster: Cluster,
        node: str,
        tiles: int = 4,
        tile_bytes: int = 128 * 1024,
        a_path: str = "/ooc/A",
        b_path: str = "/ooc/B",
        c_path: str = "/ooc/C",
        flops_per_tile_s: float = 1.5e-3,
        name: str | None = None,
    ) -> None:
        super().__init__(cluster, node, name)
        self.tiles = tiles
        self.tile_bytes = tile_bytes
        self.a_path, self.b_path, self.c_path = a_path, b_path, c_path
        self.flops_per_tile_s = flops_per_tile_s

    def run(self) -> _t.Generator:
        """Tiled OOC matmul: panel reads, tile compute, result writes."""
        a = yield from self.client.open(self.a_path)
        b = yield from self.client.open(self.b_path)
        c = yield from self.client.open(self.c_path)
        for i in range(self.tiles):
            yield from self._read(a, i * self.tile_bytes, self.tile_bytes)
            for j in range(self.tiles):
                # B's panel j is re-read for every row panel i.
                yield from self._read(b, j * self.tile_bytes, self.tile_bytes)
                yield from self._compute(self.flops_per_tile_s)
            yield from self._write(c, i * self.tile_bytes, self.tile_bytes)


class AssociationMiningScan(BaseApp):
    """Multi-pass data mining (Apriori-style): every pass re-scans the
    whole transaction file with shrinking compute per pass."""

    signature = "read-shared"

    def __init__(
        self,
        cluster: Cluster,
        node: str,
        dataset: str = "/mining/transactions",
        dataset_bytes: int = 1024 * 1024,
        passes: int = 3,
        chunk_bytes: int = 64 * 1024,
        compute_per_chunk_s: float = 1e-3,
        name: str | None = None,
    ) -> None:
        super().__init__(cluster, node, name)
        self.dataset = dataset
        self.dataset_bytes = dataset_bytes
        self.passes = passes
        self.chunk_bytes = chunk_bytes
        self.compute_per_chunk_s = compute_per_chunk_s

    def run(self) -> _t.Generator:
        """K passes over the dataset with shrinking compute."""
        handle = yield from self.client.open(self.dataset)
        for pass_no in range(self.passes):
            pos = 0
            while pos < self.dataset_bytes:
                n = min(self.chunk_bytes, self.dataset_bytes - pos)
                yield from self._read(handle, pos, n)
                yield from self._compute(
                    self.compute_per_chunk_s / (pass_no + 1)
                )
                pos += n


class VideoFrameExtractor(BaseApp):
    """Video processing: strided reads (every k-th frame) of a large
    stream — the spatial-locality-without-reuse pattern.

    With ``batch_frames > 1`` the extractor issues each batch as one
    strided list-I/O request (``readv``) instead of per-frame reads —
    the noncontiguous request shape that traces record as a single
    ``count > 1`` event.
    """

    signature = "disjoint"

    def __init__(
        self,
        cluster: Cluster,
        node: str,
        stream: str = "/video/stream",
        frame_bytes: int = 64 * 1024,
        frames: int = 24,
        stride: int = 2,
        offset_frames: int = 0,
        decode_s: float = 8e-4,
        batch_frames: int = 1,
        name: str | None = None,
    ) -> None:
        super().__init__(cluster, node, name)
        self.stream = stream
        self.frame_bytes = frame_bytes
        self.frames = frames
        self.stride = stride
        self.offset_frames = offset_frames
        self.decode_s = decode_s
        if batch_frames < 1:
            raise ValueError("batch_frames must be >= 1")
        self.batch_frames = batch_frames

    def run(self) -> _t.Generator:
        """Strided frame reads with per-frame decode."""
        handle = yield from self.client.open(self.stream)
        frame = self.offset_frames
        remaining = self.frames
        while remaining > 0:
            batch = min(self.batch_frames, remaining)
            if batch > 1:
                self.requests += 1
                yield from self.client.readv(
                    handle,
                    [
                        ((frame + k * self.stride) * self.frame_bytes,
                         self.frame_bytes)
                        for k in range(batch)
                    ],
                )
            else:
                yield from self._read(
                    handle, frame * self.frame_bytes, self.frame_bytes
                )
            yield from self._compute(self.decode_s * batch)
            frame += self.stride * batch
            remaining -= batch


class ArchiveMaintainer(BaseApp):
    """Large archive maintenance: appends batches to an archive file
    and periodically re-reads the recent window to build an index."""

    signature = "producer-consumer"

    def __init__(
        self,
        cluster: Cluster,
        node: str,
        archive: str = "/archive/log",
        batch_bytes: int = 32 * 1024,
        batches: int = 16,
        index_every: int = 4,
        window_batches: int = 4,
        name: str | None = None,
    ) -> None:
        super().__init__(cluster, node, name)
        self.archive = archive
        self.batch_bytes = batch_bytes
        self.batches = batches
        self.index_every = index_every
        self.window_batches = window_batches

    def run(self) -> _t.Generator:
        """Batch appends with periodic index re-reads."""
        handle = yield from self.client.open(self.archive)
        for batch in range(self.batches):
            yield from self._write(
                handle, batch * self.batch_bytes, self.batch_bytes
            )
            if (batch + 1) % self.index_every == 0:
                first = max(0, batch + 1 - self.window_batches)
                yield from self._read(
                    handle,
                    first * self.batch_bytes,
                    (batch + 1 - first) * self.batch_bytes,
                )


def run_app_mix(
    cluster: Cluster, apps: _t.Sequence[BaseApp]
) -> list[AppResult]:
    """Co-schedule the applications; returns per-app results."""
    procs = [app.spawn() for app in apps]
    cluster.env.run(until=cluster.env.all_of(procs))
    results = [app.result for app in apps]
    assert all(r is not None for r in results)
    return _t.cast(list[AppResult], results)


def analysis_cycle_mix(cluster: Cluster, nodes: _t.Sequence[str]) -> list[BaseApp]:
    """The paper's Figure 1 cycle as an app mix: archive maintenance
    feeding mining and visualization-like scans, plus an independent
    out-of-core solver — a representative multiprogrammed I/O mix."""
    apps: list[BaseApp] = []
    apps.append(ArchiveMaintainer(cluster, nodes[0], name="archiver"))
    apps.append(
        AssociationMiningScan(cluster, nodes[0], name="miner")
    )
    second_node = nodes[1] if len(nodes) > 1 else nodes[0]
    apps.append(
        AssociationMiningScan(cluster, second_node, name="miner-2")
    )
    apps.append(
        OutOfCoreMatrixMultiply(cluster, nodes[0], name="solver")
    )
    for i, node in enumerate(nodes):
        apps.append(
            VideoFrameExtractor(
                cluster,
                node,
                stride=len(nodes),
                offset_frames=i,
                name=f"frames-{i}",
            )
        )
    return apps
