"""Command-line micro-benchmark, mirroring the paper's Section 4.1.

"At the high level, this benchmark is a parallel application in which
multiple processors execute read/write requests of specified sizes on
shared (or private) file(s) at different offsets.  The command line
parameters include the size of the file, the size of each I/O request
(denoted d), the number of nodes over which the application is
parallelized (p), and a variable indicating whether read or write is
to be performed. [...] Another parameter, the degree of locality
(denoted l) [...] the user can also specify the desired degree of data
sharing between applications (denoted s)."

Examples::

    python -m repro.workload --d 65536 --p 4 --mode read --l 0.5
    python -m repro.workload --d 4096 --p 2 --instances 2 --s 0.75
    python -m repro.workload --d 262144 --mode write --no-caching
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.cluster.config import CacheConfig, ClusterConfig, CostModel
from repro.workload.microbench import MicroBenchParams
from repro.workload.runner import run_instances


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Run the paper's customizable micro-benchmark on a "
        "simulated PVFS cluster.",
    )
    parser.add_argument("--d", "--request-size", dest="d", type=int,
                        default=65536, help="request size in bytes")
    parser.add_argument("--p", dest="p", type=int, default=4,
                        help="nodes the application is parallelized over")
    parser.add_argument("--mode", choices=("read", "write", "sync-write"),
                        default="read")
    parser.add_argument("--iterations", type=int, default=32,
                        help="I/O requests per process")
    parser.add_argument("--l", "--locality", dest="l", type=float,
                        default=0.0, help="degree of locality in [0,1]")
    parser.add_argument("--s", "--sharing", dest="s", type=float,
                        default=0.0, help="degree of data sharing in [0,1]")
    parser.add_argument("--instances", type=int, default=1,
                        help="application instances (multiprogramming)")
    parser.add_argument("--no-caching", action="store_true",
                        help="run the original PVFS without the cache module")
    parser.add_argument("--cache-size", type=int, default=1_200 * 1024,
                        help="per-node cache size in bytes")
    parser.add_argument("--fabric", choices=("switch", "hub"),
                        default="switch")
    parser.add_argument("--global-cache", action="store_true",
                        help="enable the cooperative global cache")
    parser.add_argument("--readahead", action="store_true",
                        help="enable sequential prefetching")
    parser.add_argument("--warmup", action="store_true",
                        help="warm the iod page caches before timing")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--config", type=str, default=None, metavar="FILE",
                        help="JSON cluster config (overrides --p, "
                        "--cache-size, --fabric, extension flags)")
    return parser


def main(argv: _t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.p < 1 or args.instances < 1:
        print("error: --p and --instances must be >= 1", file=sys.stderr)
        return 2
    if args.config:
        from repro.cluster.configio import load_config

        with open(args.config) as fp:
            config = load_config(fp)
    else:
        config = ClusterConfig(
            compute_nodes=args.p,
            iod_nodes=args.p,
            caching=not args.no_caching,
            cache=CacheConfig(
                size_bytes=args.cache_size,
                global_cache=args.global_cache,
                readahead=args.readahead,
            ),
            costs=CostModel(fabric=args.fabric),
        )
    instances = [
        MicroBenchParams(
            nodes=config.compute_node_names(),
            request_size=args.d,
            iterations=args.iterations,
            mode=args.mode,
            locality=args.l,
            sharing=args.s,
            instance=i,
            warmup=args.warmup,
            seed=args.seed,
        )
        for i in range(args.instances)
    ]
    outcome = run_instances(config, instances)

    version = "caching" if config.caching else "no caching"
    print(f"micro-benchmark ({version} version)")
    print(f"  d={args.d}  p={config.compute_nodes}  mode={args.mode}  "
          f"l={args.l}  s={args.s}  instances={args.instances}  "
          f"iterations={args.iterations}")
    print(f"  total simulated time : {outcome.total_time:.6f} s")
    for inst in outcome.instances:
        print(f"  instance {inst.instance} makespan: "
              f"{inst.makespan:.6f} s")
    if args.mode == "read":
        print(f"  mean time per read   : {outcome.mean_read_latency:.6f} s")
    else:
        latency = (
            outcome.mean_write_latency
            if args.mode == "write"
            else outcome.cluster.metrics.mean("client.sync_write_latency")
        )
        print(f"  mean time per {args.mode:<5}: {latency:.6f} s")
    if config.caching:
        hits = outcome.counter("cache.hits")
        misses = outcome.counter("cache.misses")
        total = hits + misses
        print(f"  cache hits/misses    : {hits}/{misses}"
              + (f"  (hit ratio {hits / total:.2%})" if total else ""))
        print(f"  faked iod acks       : {outcome.counter('cache.faked_acks')}")
        print(f"  blocks flushed       : "
              f"{outcome.counter('flusher.blocks_cleaned')}")
        if args.global_cache:
            print(f"  peer-cache hits      : "
                  f"{outcome.counter('gcache.remote_hits')}")
        if args.readahead:
            print(f"  blocks prefetched    : "
                  f"{outcome.counter('prefetch.completed')}")
    print(f"  iod page-cache hits  : "
          f"{outcome.counter('iod.pagecache_hits')}")
    print(f"  bytes over the wire  : "
          f"{outcome.cluster.network.fabric.bytes_transferred}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
