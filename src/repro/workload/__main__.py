"""Workload CLI: the paper's micro-benchmark plus the trace IR tools.

Bare flags run the Section 4.1 micro-benchmark, exactly as before::

    python -m repro.workload --d 65536 --p 4 --mode read --l 0.5
    python -m repro.workload --d 4096 --p 2 --instances 2 --s 0.75

Subcommands operate on the trace IR (mirroring the
``repro.experiments`` CLI conventions)::

    python -m repro.workload record --out run.jsonl --d 4096 --p 2
    python -m repro.workload replay --trace run.jsonl --p 4 --hash
    python -m repro.workload transform --trace run.jsonl --out big.jsonl \\
        --scale-out 2 --remix-sharing 0.5
    python -m repro.workload validate --trace big.jsonl

Each subcommand has ``--help``.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.cluster.config import CacheConfig, ClusterConfig, CostModel
from repro.workload.microbench import MicroBenchParams
from repro.workload.runner import run_instances

SUBCOMMANDS = ("record", "replay", "transform", "validate")


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    """Flags that size and configure the simulated cluster."""
    parser.add_argument("--p", dest="p", type=int, default=4,
                        help="nodes the application is parallelized over")
    parser.add_argument("--no-caching", action="store_true",
                        help="run the original PVFS without the cache module")
    parser.add_argument("--cache-size", type=int, default=1_200 * 1024,
                        help="per-node cache size in bytes")
    parser.add_argument("--fabric", choices=("switch", "hub"),
                        default="switch")
    parser.add_argument("--global-cache", action="store_true",
                        help="enable the cooperative global cache")
    parser.add_argument("--readahead", action="store_true",
                        help="enable sequential prefetching")
    parser.add_argument("--config", type=str, default=None, metavar="FILE",
                        help="JSON cluster config (overrides --p, "
                        "--cache-size, --fabric, extension flags)")


def _add_micro_args(parser: argparse.ArgumentParser) -> None:
    """Flags describing the micro-benchmark workload itself."""
    parser.add_argument("--d", "--request-size", dest="d", type=int,
                        default=65536, help="request size in bytes")
    parser.add_argument("--mode", choices=("read", "write", "sync-write"),
                        default="read")
    parser.add_argument("--iterations", type=int, default=32,
                        help="I/O requests per process")
    parser.add_argument("--l", "--locality", dest="l", type=float,
                        default=0.0, help="degree of locality in [0,1]")
    parser.add_argument("--s", "--sharing", dest="s", type=float,
                        default=0.0, help="degree of data sharing in [0,1]")
    parser.add_argument("--instances", type=int, default=1,
                        help="application instances (multiprogramming)")
    parser.add_argument("--warmup", action="store_true",
                        help="warm the iod page caches before timing")
    parser.add_argument("--seed", type=int, default=1234)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Run the paper's customizable micro-benchmark on a "
        "simulated PVFS cluster (see also the record/replay/transform/"
        "validate trace subcommands).",
    )
    _add_micro_args(parser)
    _add_cluster_args(parser)
    return parser


def _build_config(args: argparse.Namespace) -> ClusterConfig:
    if args.config:
        from repro.cluster.configio import load_config

        with open(args.config) as fp:
            return load_config(fp)
    return ClusterConfig(
        compute_nodes=args.p,
        iod_nodes=args.p,
        caching=not args.no_caching,
        cache=CacheConfig(
            size_bytes=args.cache_size,
            global_cache=args.global_cache,
            readahead=args.readahead,
        ),
        costs=CostModel(fabric=args.fabric),
    )


def _build_instances(
    args: argparse.Namespace, config: ClusterConfig
) -> list[MicroBenchParams]:
    return [
        MicroBenchParams(
            nodes=config.compute_node_names(),
            request_size=args.d,
            iterations=args.iterations,
            mode=args.mode,
            locality=args.l,
            sharing=args.s,
            instance=i,
            warmup=args.warmup,
            seed=args.seed,
        )
        for i in range(args.instances)
    ]


def _load_trace_arg(path: str):
    from repro.workload.trace import load, load_path

    if path == "-":
        return load(sys.stdin)
    return load_path(path)


def _write_text(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w") as fp:
        fp.write(text)


# -- subcommands -----------------------------------------------------------
def _cmd_record(argv: _t.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload record",
        description="Run the micro-benchmark and record its request "
        "stream as a versioned JSONL trace.",
    )
    parser.add_argument("--out", type=str, default="-", metavar="FILE",
                        help="trace output path ('-' = stdout)")
    _add_micro_args(parser)
    _add_cluster_args(parser)
    args = parser.parse_args(argv)
    if args.p < 1 or args.instances < 1:
        print("error: --p and --instances must be >= 1", file=sys.stderr)
        return 2
    config = _build_config(args)
    outcome = run_instances(config, _build_instances(args, config), record=True)
    assert outcome.trace is not None
    _write_text(args.out, outcome.trace.dumps())
    print(
        f"recorded {len(outcome.trace)} events from "
        f"{len(outcome.trace.processes)} processes "
        f"(content hash {outcome.trace.content_hash()})",
        file=sys.stderr,
    )
    return 0


def _cmd_replay(argv: _t.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload replay",
        description="Replay a recorded/imported trace against a "
        "(possibly different) cluster configuration.",
    )
    parser.add_argument("--trace", type=str, required=True, metavar="FILE",
                        help="trace to replay (JSONL or CSV, '-' = stdin)")
    parser.add_argument("--open-loop", action="store_true",
                        help="preserve the trace's original request "
                        "timing (default: closed loop, think times only)")
    parser.add_argument("--hash", action="store_true",
                        help="print the replay's BLAKE2b schedule hash")
    _add_cluster_args(parser)
    args = parser.parse_args(argv)
    if args.p < 1:
        print("error: --p must be >= 1", file=sys.stderr)
        return 2
    from repro.cluster.cluster import Cluster
    from repro.workload.replay import TraceReplayer

    trace = _load_trace_arg(args.trace)
    cluster = Cluster(_build_config(args))
    if args.hash:
        cluster.env.enable_trace_hash()
    replayer = TraceReplayer(
        cluster, trace, preserve_timing=args.open_loop
    )
    makespan = replayer.run()
    print(f"replayed {len(trace)} events "
          f"({'open' if args.open_loop else 'closed'} loop)")
    print(f"  makespan             : {makespan:.6f} s")
    for process in sorted(replayer.completion):
        print(f"  {process:<20} : {replayer.completion[process]:.6f} s")
    hits = cluster.metrics.count("cache.hits")
    misses = cluster.metrics.count("cache.misses")
    if hits + misses:
        print(f"  cache hits/misses    : {hits}/{misses}  "
              f"(hit ratio {hits / (hits + misses):.2%})")
    if args.hash:
        print(f"  schedule trace hash  : {cluster.env.trace_hash()}")
    return 0


def _cmd_transform(argv: _t.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload transform",
        description="Apply composable trace->trace passes.  Passes run "
        "in a fixed order: --remap, --time-scale, --scale-out, "
        "--remix-sharing, --zipf.",
    )
    parser.add_argument("--trace", type=str, required=True, metavar="FILE",
                        help="input trace (JSONL or CSV, '-' = stdin)")
    parser.add_argument("--out", type=str, default="-", metavar="FILE",
                        help="output trace path ('-' = stdout)")
    parser.add_argument("--remap", action="append", default=[],
                        metavar="OLD=NEW",
                        help="rename process OLD to NEW (repeatable)")
    parser.add_argument("--time-scale", type=float, default=None,
                        metavar="F", help="scale timestamps/think times by F")
    parser.add_argument("--scale-out", type=int, default=None, metavar="N",
                        help="clone every process stream N-fold")
    parser.add_argument("--remix-sharing", type=float, default=None,
                        metavar="S",
                        help="re-mix the degree of sharing to S in [0,1]")
    parser.add_argument("--zipf", type=float, default=None, metavar="ALPHA",
                        help="re-skew path popularity to Zipf(ALPHA)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the randomized passes")
    args = parser.parse_args(argv)
    from repro.workload import transform as tr

    passes: list[tr.Transform] = []
    if args.remap:
        mapping = {}
        for spec in args.remap:
            old, sep, new = spec.partition("=")
            if not sep or not old or not new:
                print(f"error: --remap wants OLD=NEW, got {spec!r}",
                      file=sys.stderr)
                return 2
            mapping[old] = new
        passes.append(tr.process_remap(mapping))
    if args.time_scale is not None:
        passes.append(tr.time_scale(args.time_scale))
    if args.scale_out is not None:
        passes.append(tr.scale_out(args.scale_out))
    if args.remix_sharing is not None:
        passes.append(tr.remix_sharing(args.remix_sharing, seed=args.seed))
    if args.zipf is not None:
        passes.append(tr.zipf_reskew(args.zipf, seed=args.seed))
    if not passes:
        print("error: no transform given (see --help)", file=sys.stderr)
        return 2
    trace = tr.compose(*passes)(_load_trace_arg(args.trace))
    _write_text(args.out, trace.dumps())
    applied = trace.meta.get("transforms", [])
    print(
        f"transformed: {len(trace)} events, "
        f"{len(trace.processes)} processes; passes: {applied}",
        file=sys.stderr,
    )
    return 0


def _cmd_validate(argv: _t.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload validate",
        description="Validate a trace file and classify its sharing "
        "patterns (the import ingest check).  Exit status 1 when "
        "issues are found.",
    )
    parser.add_argument("--trace", type=str, required=True, metavar="FILE",
                        help="trace to validate (JSONL or CSV, '-' = stdin)")
    args = parser.parse_args(argv)
    from collections import Counter

    from repro.workload.classify import classify_trace
    from repro.workload.openloop import is_open_loop, offered_load_stats
    from repro.workload.trace import TraceFormatError, validate_trace

    try:
        trace = _load_trace_arg(args.trace)
    except TraceFormatError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    ops = trace.op_counts()
    span = (
        trace.events[-1].time - trace.events[0].time if trace.events else 0.0
    )
    print(f"trace: {len(trace)} events, {len(trace.processes)} processes, "
          f"{len(trace.paths)} paths, span {span:.6f} s")
    print(f"  ops                  : " +
          "  ".join(f"{op}={n}" for op, n in ops.items()))
    strided = sum(1 for e in trace.events if e.is_list)
    if strided:
        print(f"  strided/list events  : {strided}")
    print(f"  content hash         : {trace.content_hash()}")
    if trace.meta:
        print(f"  meta                 : {trace.meta}")
    if is_open_loop(trace):
        # An open-loop trace is an arrival schedule: summarize its
        # offered load instead of judging it by closed-loop standards.
        load = offered_load_stats(trace)
        print(f"  offered load         : "
              f"{load['offered_ops']} arrivals over the "
              f"{load['duration_s']:.6f} s schedule "
              f"= {load['offered_ops_per_s']:.1f} ops/s "
              f"({load['per_process_ops_per_s']:.1f} per process)")
    patterns = classify_trace(trace)
    if len(patterns) > 20:
        # Churn-heavy (open-loop) namespaces run to thousands of
        # single-use paths; a per-path listing would drown the report.
        counts = Counter(patterns.values())
        print("  sharing patterns     : " + "  ".join(
            f"{pattern}={n}" for pattern, n in sorted(counts.items())))
    else:
        for path, pattern in patterns.items():
            print(f"  {path:<20} : {pattern}")
    issues = validate_trace(trace)
    for issue in issues:
        print(f"  ISSUE: {issue}", file=sys.stderr)
    return 1 if issues else 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        handler = {
            "record": _cmd_record,
            "replay": _cmd_replay,
            "transform": _cmd_transform,
            "validate": _cmd_validate,
        }[argv[0]]
        return handler(argv[1:])
    args = build_parser().parse_args(argv)
    if args.p < 1 or args.instances < 1:
        print("error: --p and --instances must be >= 1", file=sys.stderr)
        return 2
    config = _build_config(args)
    outcome = run_instances(config, _build_instances(args, config))

    version = "caching" if config.caching else "no caching"
    print(f"micro-benchmark ({version} version)")
    print(f"  d={args.d}  p={config.compute_nodes}  mode={args.mode}  "
          f"l={args.l}  s={args.s}  instances={args.instances}  "
          f"iterations={args.iterations}")
    print(f"  total simulated time : {outcome.total_time:.6f} s")
    for inst in outcome.instances:
        print(f"  instance {inst.instance} makespan: "
              f"{inst.makespan:.6f} s")
    if args.mode == "read":
        print(f"  mean time per read   : {outcome.mean_read_latency:.6f} s")
    else:
        latency = (
            outcome.mean_write_latency
            if args.mode == "write"
            else outcome.cluster.metrics.mean("client.sync_write_latency")
        )
        print(f"  mean time per {args.mode:<5}: {latency:.6f} s")
    if config.caching:
        hits = outcome.counter("cache.hits")
        misses = outcome.counter("cache.misses")
        total = hits + misses
        print(f"  cache hits/misses    : {hits}/{misses}"
              + (f"  (hit ratio {hits / total:.2%})" if total else ""))
        print(f"  faked iod acks       : {outcome.counter('cache.faked_acks')}")
        print(f"  blocks flushed       : "
              f"{outcome.counter('flusher.blocks_cleaned')}")
        if args.global_cache:
            print(f"  peer-cache hits      : "
                  f"{outcome.counter('gcache.remote_hits')}")
        if args.readahead:
            print(f"  blocks prefetched    : "
                  f"{outcome.counter('prefetch.completed')}")
    print(f"  iod page-cache hits  : "
          f"{outcome.counter('iod.pagecache_hits')}")
    print(f"  bytes over the wire  : "
          f"{outcome.cluster.network.fabric.bytes_transferred}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
