"""The buffer manager: the paper's "full-fledged buffer manager of
blocks, requiring the implementation of hash tables, free list and
dirty list"."""

from __future__ import annotations

import typing as _t

from repro.analysis.sanitize import atomic_section, maybe_install
from repro.analysis.shared import shared_state
from repro.cache.block import BlockKey, BlockState, CacheBlock
from repro.cache.clock import ClockPolicy, ExactLRUPolicy
from repro.cache.dirtylist import DirtyList
from repro.cache.freelist import FreeList
from repro.cache.hashtable import BlockHashTable
from repro.cluster.config import CacheConfig
from repro.metrics import Metrics
from repro.sim import Environment


@shared_state("table", "freelist", "dirtylist", "policy", "_inflight")
class BufferManager:
    """Owns every cache frame of one node's cache module.

    Hot-path operations (``lookup``, ``insert``) are synchronous —
    atomic in the cooperative simulation, mirroring the short critical
    sections the paper protects with fine-grained locks.  The
    multi-step miss path yields (waiting for a free block), so
    duplicate fetches for one key are prevented with an in-flight
    reservation map: the second requester waits for the first one's
    allocation instead of allocating a twin.
    """

    def __init__(
        self,
        env: Environment,
        config: CacheConfig,
        metrics: Metrics,
        name: str = "cache",
    ) -> None:
        self.env = env
        self.config = config
        self.metrics = metrics
        self.name = name
        self.blocks = [
            CacheBlock(i, config.block_size) for i in range(config.n_blocks)
        ]
        self.table = BlockHashTable(n_buckets_hint=2 * config.n_blocks)
        self.freelist = FreeList(
            env,
            self.blocks,
            low_blocks=config.low_blocks,
            high_blocks=config.high_blocks,
        )
        self.dirtylist = DirtyList()
        if config.replacement == "clock":
            self.policy: _t.Any = ClockPolicy()
        else:
            self.policy = ExactLRUPolicy()
        self._inflight: dict[BlockKey, _t.Any] = {}
        #: Opt-in runtime checker (REPRO_SANITIZE=1): validates the
        #: block-accounting invariant at scheduler-step granularity
        #: and arms the atomic_section race detector.  None in
        #: normal runs — the structures run their unwrapped methods.
        self.sanitizer = maybe_install(self)

    # -- residency -------------------------------------------------------------
    @property
    def n_resident(self) -> int:
        """Blocks currently in the hash table."""
        return len(self.table)

    @property
    def n_free(self) -> int:
        """Blocks currently on the free list."""
        return len(self.freelist)

    @property
    def n_dirty(self) -> int:
        """Blocks currently on the dirty list."""
        return len(self.dirtylist)

    def lookup(self, key: BlockKey) -> CacheBlock | None:
        """Hash probe; touches the replacement policy on a find."""
        block = self.table.get(key)
        if block is not None:
            self.policy.touch(block)
        return block

    def get_or_allocate(self, key: BlockKey) -> _t.Generator:
        """Process body: return ``(block, was_resident)``.

        Misses allocate a fresh PENDING block (waiting on the free
        list if it is dry — the paper's blocking-for-cache-space).
        Concurrent misses on one key coalesce onto a single block.
        """
        while True:
            block = self.table.get(key)
            if block is not None:
                self.policy.touch(block)
                return block, True
            pending = self._inflight.get(key)
            if pending is not None:
                # Someone else is allocating this key: wait, then
                # re-probe (their block may even be gone again).
                yield pending
                continue
            reservation = self.env.event()
            # The flow analyzer's linear model cannot see that waiting
            # on a rival's reservation loops back to a fresh re-probe
            # (the `continue` above) before reaching this write.
            self._inflight[key] = reservation  # noqa: RPL100 - re-probed after wait
            try:
                block = yield from self.freelist.acquire()
            except BaseException:
                del self._inflight[key]
                reservation.succeed(None)
                raise
            # The allocation commit must stay atomic (no yields): a
            # second requester probing between insert and the
            # reservation hand-off would see half-committed state.
            with atomic_section(
                self.table, self.policy, label="get_or_allocate.commit"
            ):
                block.assign(key, self.env.event())
                # The miss-probe of `table` happened before the
                # freelist wait, but a rival insert of this key is
                # impossible: our _inflight reservation (registered
                # with no intervening yield) makes rivals wait.
                self.table.insert(block)  # noqa: RPL100 - guarded by reservation
                self.policy.admit(block)
                del self._inflight[key]
                reservation.succeed(block)
            self.metrics.inc(f"{self.name}.allocations")
            return block, False

    # -- dirty tracking ------------------------------------------------------------
    def note_write(self, block: CacheBlock) -> None:
        """Register a block the caller just dirtied."""
        self.dirtylist.add(block)

    def note_cleaned(self, block: CacheBlock, epoch: int) -> bool:
        """Flusher callback: mark clean unless a write raced the flush."""
        if block.mark_clean(epoch):
            self.dirtylist.discard(block)
            return True
        return False

    # -- eviction --------------------------------------------------------------------
    def evict(self, block: CacheBlock, force: bool = False) -> None:
        """Return a resident block to the free list.

        Dirty blocks may only be evicted with ``force`` (used by
        coherence invalidations, where the remote sync_write wins);
        the harvester must flush them first instead.
        """
        if block.state is BlockState.FREE:
            raise ValueError(f"evict of free block {block!r}")
        if block.pins:
            raise ValueError(f"evict of pinned block {block!r}")
        if block.state is BlockState.DIRTY and not force:
            raise ValueError(f"evict of dirty block {block!r} without force")
        # Eviction walks four structures; a yield between them would
        # leave a frame visible in none (or two) of them.
        with atomic_section(
            self.table,
            self.freelist,
            self.dirtylist,
            self.policy,
            label="evict",
        ):
            self.policy.forget(block)
            self.table.remove(block)
            self.dirtylist.discard(block)
            block.reset()
            self.freelist.release(block)
        self.metrics.inc(f"{self.name}.evictions")

    def invalidate(self, key: BlockKey) -> bool:
        """Coherence: drop ``key`` if resident (even dirty — the remote
        sync_write wins).  True when a copy was (or will be) dropped.

        A PENDING block is marked *doomed*: the iod snapshots the
        bytes for the in-flight fetch when the read *request* is
        handled, which can be before the racing sync_write lands
        there, so the data the fetch brings back may already be
        stale.  The fetch completes normally (its waiters still need
        an answer for this access) and the block is dropped the
        moment it is READY and unpinned.  A pinned block (mid-copy in
        some reader) is likewise doomed and dropped when the last pin
        releases — a kernel cannot rip a page out from under an
        in-progress copy either.
        """
        block = self.table.get(key)
        if block is None:
            return False
        if block.state is BlockState.PENDING:
            block.doomed = True
            self.metrics.inc(f"{self.name}.deferred_invalidations")
            return True
        if block.pins:
            block.doomed = True
            self.metrics.inc(f"{self.name}.deferred_invalidations")
            return True
        self.evict(block, force=True)
        self.metrics.inc(f"{self.name}.invalidated_blocks")
        return True

    def unpin(self, block: CacheBlock) -> None:
        """Release a pin, completing any deferred invalidation."""
        block.unpin()
        if block.doomed and block.pins == 0 and block.state in (
            BlockState.CLEAN,
            BlockState.DIRTY,
        ):
            self.evict(block, force=True)
            self.metrics.inc(f"{self.name}.invalidated_blocks")

    def select_victims(self, n: int) -> list[CacheBlock]:
        """Policy passthrough honouring clean preference."""
        return self.policy.select_victims(
            n, prefer_clean=self.config.prefer_clean_eviction
        )

    def resident_keys(self) -> set[BlockKey]:
        """Snapshot of resident keys (test/inspection helper)."""
        return {b.key for b in self.table.blocks() if b.key is not None}
