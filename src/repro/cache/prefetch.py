"""Sequential readahead inside the cache module.

Paper, Section 5 (future work): "runtime support to detect and exploit
inter-application sharing patterns, for possible combining of I/O
requests, *prefetching*, and other optimizations."

This implements the classic kernel readahead policy at the cache-module
level: a per-file sequential-run detector with a window that doubles on
confirmed sequentiality (up to a cap) and resets on a non-sequential
access.  Prefetches are issued asynchronously after the demand fetch
returns, so they hide iod latency without delaying the foreground
request; prefetched blocks land in the shared cache, so — true to the
paper's theme — one application's readahead also feeds its neighbours.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.shared import shared_state
from repro.pvfs.protocol import FileHandle

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cache.module import CacheModule


@dataclasses.dataclass
class _FileStream:
    """Readahead state for one file (shared by the node's processes)."""

    next_expected_block: int = -1
    #: Current window, in blocks.
    window: int = 0
    sequential_runs: int = 0


@shared_state("_streams", "_inflight")
class ReadAhead:
    """Per-node sequential prefetcher."""

    def __init__(
        self,
        module: "CacheModule",
        initial_window: int = 4,
        max_window: int = 32,
    ) -> None:
        if initial_window < 1 or max_window < initial_window:
            raise ValueError(
                f"bad readahead windows {initial_window}/{max_window}"
            )
        self.module = module
        self.env = module.env
        self.initial_window = initial_window
        self.max_window = max_window
        self._streams: dict[int, _FileStream] = {}
        #: Blocks currently being prefetched (avoid duplicate issues).
        self._inflight: set[tuple[int, int]] = set()

    def observe_read(
        self, handle: FileHandle, first_block: int, n_blocks: int
    ) -> None:
        """Called by the module on every read; may start a prefetch."""
        stream = self._streams.setdefault(handle.file_id, _FileStream())
        if first_block == stream.next_expected_block:
            stream.sequential_runs += 1
            stream.window = min(
                self.max_window,
                max(self.initial_window, stream.window * 2),
            )
        else:
            stream.sequential_runs = 0
            stream.window = 0
        stream.next_expected_block = first_block + n_blocks
        if stream.window > 0:
            self._issue(handle, stream.next_expected_block, stream.window)

    def _issue(self, handle: FileHandle, start_block: int, count: int) -> None:
        wanted = []
        manager = self.module.manager
        for block_no in range(start_block, start_block + count):
            key = (handle.file_id, block_no)
            if key in self._inflight or manager.lookup(key) is not None:
                continue
            wanted.append(block_no)
            self._inflight.add(key)
        if not wanted:
            return
        # Cap: never let prefetch consume more than a quarter of the
        # cache's free pool (demand requests come first).
        budget = max(0, len(manager.freelist) // 4)
        for key in [(handle.file_id, b) for b in wanted[budget:]]:
            self._inflight.discard(key)
        wanted = wanted[:budget]
        if not wanted:
            return
        self.module.metrics.inc("prefetch.issued", len(wanted))
        self.env.process(
            self._prefetch(handle, wanted),
            name=f"readahead-{self.module.node.name}-{handle.file_id}",
        )

    def _prefetch(
        self, handle: FileHandle, block_nos: list[int]
    ) -> _t.Generator:
        """Background fetch of ``block_nos`` into the shared cache."""
        manager = self.module.manager
        owned = {}
        try:
            for block_no in block_nos:
                key = (handle.file_id, block_no)
                block = manager.table.get(key)
                if block is not None:
                    continue  # demand fetch beat us to it
                block, resident = yield from manager.get_or_allocate(key)
                if not resident:
                    owned[block_no] = block
            if owned:
                from repro.cache.fsm import FSMState, RequestFSM

                fsm = RequestFSM(self.env)
                fsm.to(FSMState.LOOKUP)
                yield from self.module._fetch(
                    handle, fsm, owned, {}, want_data=True
                )
                self.module.metrics.inc("prefetch.completed", len(owned))
        finally:
            for block_no in block_nos:
                self._inflight.discard((handle.file_id, block_no))

    def stream_state(self, file_id: int) -> _FileStream | None:
        """Inspection helper for tests."""
        return self._streams.get(file_id)
