"""The kernel cache module: socket-call interception for libpvfs.

One instance per node, shared by every process on the node.  The
module owns the node's connections to the iods (multiplexed over
:class:`~repro.net.rpc.RpcChannel`, since responses for different
processes interleave), the buffer manager, the flusher and harvester
kernel threads, and the invalidation listener used by ``sync_write``
coherence.

Requests are processed in bounded *segments* (at most
``CacheConfig.effective_segment_blocks`` blocks pinned at a time) so
that concurrent large requests cannot pin the entire cache — the
equivalent of the real module's progressive copy-out as socket data
arrives.
"""

from __future__ import annotations

import typing as _t

from repro.cache.block import BlockState, CacheBlock
from repro.cache.fsm import FSMState, RequestFSM
from repro.cache.harvester import Harvester
from repro.cache.flusher import Flusher
from repro.cache.manager import BufferManager
from repro.cluster.config import CacheConfig
from repro.cluster.node import Node
from repro.disk.filesystem import blocks_spanned
from repro.metrics import Metrics
from repro.net import Message
from repro.pvfs import protocol
from repro.pvfs.protocol import (
    FileHandle,
    InvalidateRequest,
    ReadData,
    ReadRequest,
    WriteRequest,
    coalesce_ranges,
)
from repro.pvfs.striping import StripeLayout
from repro.svc import Service, handles

#: Sentinel distinguishing "macro path declined" from a served read
#: whose return value is legitimately ``None`` (``want_data=False``).
MACRO_MISS = object()


class CacheModule(Service):
    """The per-node kernel-level shared I/O cache."""

    def __init__(
        self,
        node: Node,
        layout: StripeLayout,
        iod_nodes: _t.Sequence[str],
        metrics: Metrics,
        config: CacheConfig,
        iod_port: int = 7000,
        flush_port: int = 7001,
        invalidate_port: int = 7002,
        engine_macro: bool = False,
    ) -> None:
        super().__init__(node.env, f"cache-{node.name}", node=node)
        #: Macro-event fast path (DESIGN.md §14): service fully-resident
        #: uncontended read bursts under a single scheduled event.
        self.engine_macro = engine_macro
        self.layout = layout
        self.iod_nodes = tuple(iod_nodes)
        self.metrics = metrics
        self.config = config
        self.iod_port = iod_port
        self.invalidate_port = invalidate_port
        self.block_size = config.block_size
        self.manager = BufferManager(node.env, config, metrics)
        self.flusher = self.adopt(
            Flusher(
                node,
                self.manager,
                layout,
                iod_nodes,
                metrics,
                period_s=config.flush_period_s,
                flush_port=flush_port,
            )
        )
        self.harvester = self.adopt(
            Harvester(node.env, self.manager, self.flusher, metrics)
        )
        # Evictions pipeline with flushing: every batch of cleaned
        # blocks immediately re-arms the harvester.
        self.flusher.on_clean = self.harvester.wake
        self._iod_pool = self.pool(iod_port, label=self.name)
        #: Cooperative cluster-wide cache extension (attached by the
        #: cluster builder when ``CacheConfig.global_cache`` is set).
        self.gcache = None
        self.readahead = None
        if config.readahead:
            from repro.cache.prefetch import ReadAhead

            self.readahead = ReadAhead(self)

    # -- lifecycle ---------------------------------------------------------
    def _on_start(self) -> None:
        """Load the module: kernel threads + invalidation listener."""
        self.flusher.start()
        self.harvester.start()
        if self.gcache is not None:
            if self.gcache not in self._children:
                self.adopt(self.gcache)
            self.gcache.start()
        self.serve(self.invalidate_port, label="inval")

    def _drain(self) -> _t.Generator:
        """Draining the module == flushing its dirty blocks."""
        yield from self.flusher.drain()

    @handles(protocol.INVALIDATE)
    def _handle_invalidate(self, msg: Message, endpoint) -> _t.Generator:
        req: InvalidateRequest = msg.payload
        yield from self.node.compute(
            self.node.costs.cache_lookup_s * max(1, len(req.block_nos))
        )
        for block_no in req.block_nos:
            self.manager.invalidate((req.file_id, block_no))
        self.metrics.inc("cache.invalidations_received", len(req.block_nos))
        self._emit("invalidation", blocks=len(req.block_nos))
        yield endpoint.send(
            msg.reply(protocol.INVALIDATE_ACK, protocol.ACK_BYTES)
        )

    def stats(self) -> dict[str, _t.Any]:
        """Point-in-time snapshot of this node's cache state."""
        states: dict[str, int] = {}
        for block in self.manager.blocks:
            states[block.state.value] = states.get(block.state.value, 0) + 1
        return {
            "node": self.node.name,
            "n_blocks": self.config.n_blocks,
            "resident": self.manager.n_resident,
            "free": self.manager.n_free,
            "dirty": self.manager.n_dirty,
            "states": states,
            "flush_inflight": len(self.flusher._inflight),
            "gcache": self.gcache is not None,
            "readahead": self.readahead is not None,
        }

    def _channel(self, iod_node: str) -> _t.Generator:
        channel = yield from self._iod_pool.channel(iod_node)
        return channel

    # -- geometry helpers ------------------------------------------------------
    def _segments(
        self, offset: int, nbytes: int
    ) -> _t.Iterator[tuple[int, int]]:
        """Split a request into block-bounded segments of at most
        ``effective_segment_blocks`` blocks."""
        seg_bytes = self.config.effective_segment_blocks * self.block_size
        pos = offset
        end = offset + nbytes
        while pos < end:
            # Segment boundary aligned to the block grid.
            boundary = ((pos // seg_bytes) + 1) * seg_bytes
            nxt = min(end, boundary)
            yield pos, nxt - pos
            pos = nxt

    def _block_slice(
        self, offset: int, nbytes: int, block_no: int
    ) -> tuple[int, int]:
        """Overlap of the request with ``block_no`` in block coords
        (start, end)."""
        bs = self.block_size
        lo = max(offset, block_no * bs)
        hi = min(offset + nbytes, (block_no + 1) * bs)
        return lo - block_no * bs, hi - block_no * bs

    def _iod_for_block(self, block_no: int) -> str:
        return self.iod_nodes[
            self.layout.iod_index(block_no * self.block_size)
        ]

    # -- read ----------------------------------------------------------------------
    def read(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        want_data: bool = False,
    ) -> _t.Generator:
        """Process body: serve a read through the cache."""
        if nbytes == 0:
            return b"" if want_data else None
        if self.engine_macro:
            served = yield from self.macro_read(
                handle, offset, nbytes, want_data
            )
            if served is not MACRO_MISS:
                return served
        buf = bytearray(nbytes) if want_data else None
        yield from self._pipeline_segments(
            offset,
            nbytes,
            lambda so, sn: self._read_segment(handle, so, sn, buf, offset),
        )
        self.metrics.inc("cache.read_requests")
        if self.readahead is not None:
            blocks = blocks_spanned(offset, nbytes, self.block_size)
            self.readahead.observe_read(handle, blocks[0], len(blocks))
        return bytes(buf) if buf is not None else None

    def macro_read(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        want_data: bool,
        pre_compute_s: float = 0.0,
    ) -> _t.Generator:
        """One-event service of a fully-resident, uncontended read.

        Synchronously probes every spanned block (the same
        ``manager.lookup`` the per-segment path uses, so replacement
        policy touches are identical); if all are resident with valid
        coverage and the node CPU is idle, the whole burst is charged
        as a single timeout of the same total compute the per-segment
        path would accrue (lookup + copy-out per block), plus the
        caller's ``pre_compute_s`` (libpvfs folds the syscall cost in
        so the whole read costs one event).  Declines — returning
        ``MACRO_MISS`` before any yield, so no event is scheduled and
        no simulated time passes — on a miss, a PENDING block, a
        coverage gap, or CPU contention; the caller then falls through
        to the validated per-segment path.

        Unlike that path, all spanned blocks stay pinned at once for
        the (single-event) service interval rather than at most
        ``2 x segment_blocks``; acceptable because nothing can evict
        mid-event.  See DESIGN.md §14 for the validity envelope.
        """
        cpu = self.node.cpu
        grant = cpu.acquire_now()
        if grant is None:
            return MACRO_MISS
        manager = self.manager
        file_id = handle.file_id
        bs = self.block_size
        block_nos = blocks_spanned(offset, nbytes, bs)
        pinned: list[tuple[CacheBlock, int, int, int]] = []
        try:
            for block_no in block_nos:
                block = manager.lookup((file_id, block_no))
                if block is None or block.state is BlockState.PENDING:
                    return MACRO_MISS
                start, end = self._block_slice(offset, nbytes, block_no)
                if not block.valid.covers(start, end):
                    return MACRO_MISS
                block.pin()
                pinned.append((block, block_no, start, end))
            n = len(block_nos)
            costs = self.node.costs
            yield self.env.timeout(
                pre_compute_s
                + (costs.cache_lookup_s + costs.cache_copy_block_s) * n
            )
            buf = None
            if want_data:
                buf = bytearray(nbytes)
                for block, block_no, start, end in pinned:
                    piece = block.read_slice(start, end)
                    if piece is not None:
                        dst = block_no * bs + start - offset
                        buf[dst : dst + (end - start)] = piece
            # Mirror the per-segment counters so fig4/fig5 hit ratios
            # stay comparable across the seam, plus macro-only ones.
            seg_bytes = self.config.effective_segment_blocks * bs
            n_segs = (offset + nbytes - 1) // seg_bytes - offset // seg_bytes + 1
            metrics = self.metrics
            metrics.inc("cache.hits", n)
            metrics.inc("cache.read_segments", n_segs)
            metrics.inc("cache.fully_hit_segments", n_segs)
            metrics.inc("cache.read_requests")
            metrics.inc("cache.macro_reads")
            # Estimated: each avoided segment costs ~2 computes (grant +
            # timeout each) on the event-level path; we spent one event.
            self.env.note_coalesced_burst(events_saved=4 * n_segs - 1)
            if self.readahead is not None:
                self.readahead.observe_read(handle, block_nos[0], n)
            return bytes(buf) if buf is not None else None
        finally:
            for block, _block_no, _start, _end in pinned:
                manager.unpin(block)
            cpu.release(grant)

    #: How many segments of one request may be in flight at once.
    #: Depth 2 keeps the wire busy across segment boundaries while
    #: bounding pinned blocks to 2 x segment_blocks per request.
    PIPELINE_DEPTH = 2

    def _pipeline_segments(
        self,
        offset: int,
        nbytes: int,
        run_segment: _t.Callable[[int, int], _t.Generator],
    ) -> _t.Generator:
        """Run a request's segments with bounded overlap."""
        segments = list(self._segments(offset, nbytes))
        if len(segments) == 1:
            yield from run_segment(*segments[0])
            return
        if len(segments) <= self.PIPELINE_DEPTH:
            # Few enough segments that the depth limit cannot bind:
            # skip the slot Resource entirely (its request/grant events
            # are pure overhead when every grant is immediate).
            procs = [
                self.env.process(run_segment(so, sn), name=f"seg-{so}")
                for so, sn in segments
            ]
            yield self.env.all_of(procs)
            return
        from repro.sim import Resource

        slots = Resource(self.env, capacity=self.PIPELINE_DEPTH)

        def runner(so: int, sn: int) -> _t.Generator:
            with slots.request() as req:
                yield req
                yield from run_segment(so, sn)

        procs = [
            self.env.process(runner(so, sn), name=f"seg-{so}")
            for so, sn in segments
        ]
        yield self.env.all_of(procs)

    def _read_segment(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        buf: bytearray | None,
        request_base: int,
    ) -> _t.Generator:
        fsm = RequestFSM(self.env)
        fsm.to(FSMState.LOOKUP)
        block_nos = list(blocks_spanned(offset, nbytes, self.block_size))
        yield from self.node.compute(
            self.node.costs.cache_lookup_s * len(block_nos)
        )
        pinned: list[CacheBlock] = []
        #: blocks we allocated (whole-block fetch), by block_no.
        owned: dict[int, CacheBlock] = {}
        #: resident blocks with gaps to fill: block_no -> (block, gaps)
        gappy: dict[int, tuple[CacheBlock, list[tuple[int, int]]]] = {}
        #: every block this segment touched, by block_no — pinned for
        #: the whole segment, so the copy-out loop can use these
        #: directly instead of re-probing the hash table.
        resolved: dict[int, CacheBlock] = {}
        try:
            for block_no in block_nos:
                yield from self._classify_block(
                    handle.file_id, block_no, offset, nbytes,
                    pinned, owned, gappy, resolved,
                )
            if owned or gappy:
                yield from self._fetch(
                    handle, fsm, owned, gappy, buf is not None
                )
            else:
                self.metrics.inc("cache.fully_hit_segments")
            fsm.to(FSMState.COPY)
            # The kernel->user copy is an *extra* cost only for blocks
            # served from the cache; for fetched blocks it replaces the
            # socket-receive copy that the no-cache path performs
            # inside its network transfer.
            served_from_cache = len(block_nos) - len(owned)
            yield from self.node.compute(
                self.node.costs.cache_copy_block_s * served_from_cache
            )
            if buf is not None:
                for block_no in block_nos:
                    block = resolved.get(block_no)
                    if block is None:
                        continue
                    start, end = self._block_slice(offset, nbytes, block_no)
                    piece = block.read_slice(start, end)
                    if piece is not None:
                        dst = block_no * self.block_size + start - request_base
                        buf[dst : dst + (end - start)] = piece
            fsm.to(FSMState.DONE)
        finally:
            for block in pinned:
                self.manager.unpin(block)
        self.metrics.inc("cache.read_segments")

    def _classify_block(
        self,
        file_id: int,
        block_no: int,
        offset: int,
        nbytes: int,
        pinned: list[CacheBlock],
        owned: dict[int, CacheBlock],
        gappy: dict[int, tuple[CacheBlock, list[tuple[int, int]]]],
        resolved: dict[int, CacheBlock],
    ) -> _t.Generator:
        """Decide hit / pending-wait / gap-fetch / miss for one block."""
        key = (file_id, block_no)
        start, end = self._block_slice(offset, nbytes, block_no)
        while True:
            block = self.manager.lookup(key)
            if block is None:
                block, resident = yield from self.manager.get_or_allocate(key)
                if not resident:
                    block.pin()
                    pinned.append(block)
                    owned[block_no] = block
                    resolved[block_no] = block
                    self.metrics.inc("cache.misses")
                    return
                continue  # raced: re-examine the resident block
            block.pin()
            pinned.append(block)
            resolved[block_no] = block
            if block.state is BlockState.PENDING:
                # Another process is fetching this block: wait for its
                # data instead of issuing a duplicate request.  This is
                # the inter-application de-duplication path.
                self.metrics.inc("cache.pending_waits")
                if block.ready_event is not None:
                    try:
                        yield block.ready_event
                    except RuntimeError:
                        # Fetch owner disappeared; retry from scratch.
                        self.manager.unpin(block)
                        pinned.remove(block)
                        continue
            if block.valid.covers(start, end):
                self.metrics.inc("cache.hits")
                return
            gaps = block.valid.gaps(start, end)
            gappy[block_no] = (block, gaps)
            self.metrics.inc("cache.partial_hits")
            return

    def _fetch(
        self,
        handle: FileHandle,
        fsm: RequestFSM,
        owned: dict[int, CacheBlock],
        gappy: dict[int, tuple[CacheBlock, list[tuple[int, int]]]],
        want_data: bool,
    ) -> _t.Generator:
        """Issue the miss requests and merge the arriving data."""
        bs = self.block_size
        if self.gcache is not None and owned:
            # Cooperative global cache: ask each missing block's home
            # node before touching the iods.
            remote_hits = yield from self.gcache.lookup_remote(
                handle.file_id, list(owned), want_data
            )
            for block_no, data in remote_hits.items():
                block = owned.pop(block_no)
                block.merge_fetch(0, bs, data)
                block.make_ready()
            if not owned and not gappy:
                fsm.to(FSMState.REQUESTS_ISSUED)
                fsm.to(FSMState.ACK_FAKED)
                fsm.to(FSMState.AWAIT_DATA)
                return
        # Absolute byte ranges to request.
        ranges: list[tuple[int, int]] = [
            (block_no * bs, bs) for block_no in owned
        ]
        for block_no, (_block, gaps) in gappy.items():
            for lo, hi in gaps:
                ranges.append((block_no * bs + lo, hi - lo))
        per_iod: dict[str, list[tuple[int, int]]] = {}
        for off, n in ranges:
            iod = self.iod_nodes[self.layout.iod_index(off)]
            per_iod.setdefault(iod, []).append((off, n))
        fsm.to(FSMState.REQUESTS_ISSUED)
        calls = []
        requested_bytes = 0
        for iod_node in sorted(per_iod):
            iod_ranges = coalesce_ranges(per_iod[iod_node])
            if not self.config.split_on_cached_block and len(iod_ranges) > 1:
                # Ablation: no request splitting — fetch the full hull,
                # re-transferring the cached blocks in the middle.
                lo = min(r[0] for r in iod_ranges)
                hi = max(r[0] + r[1] for r in iod_ranges)
                iod_ranges = [(lo, hi - lo)]
            else:
                fsm.split_requests += len(iod_ranges) - 1
                self.metrics.inc("cache.split_requests", len(iod_ranges) - 1)
            requested_bytes += sum(n for _, n in iod_ranges)
            channel = yield from self._channel(iod_node)
            req = ReadRequest(
                file_id=handle.file_id,
                ranges=iod_ranges,
                from_cache=True,
                requester_node=self.node.name,
                want_data=want_data,
            )
            calls.append(
                channel.call(
                    Message(
                        kind=protocol.IOD_READ,
                        size_bytes=req.wire_size(),
                        payload=req,
                    )
                )
            )
        # The real iod acks arrive later on the shared socket; the
        # module acknowledges libpvfs locally right away.
        fsm.to(FSMState.ACK_FAKED)
        fsm.fake_ack(len(calls))
        self.metrics.inc("cache.faked_acks", len(calls))
        yield from self.node.compute(self.node.costs.cache_fsm_s)
        fsm.to(FSMState.AWAIT_DATA)
        for call in calls:
            ack = yield call.response()
            if ack.kind != protocol.IOD_READ_ACK:
                raise ValueError(f"expected read ack, got {ack.kind!r}")
            data_msg = yield call.response()
            if data_msg.kind != protocol.IOD_DATA:
                raise ValueError(f"expected data, got {data_msg.kind!r}")
            call.close()
            payload: ReadData = data_msg.payload
            for (roff, rlen), chunk in zip(payload.ranges, payload.chunks):
                self._merge_range(handle.file_id, roff, rlen, chunk, owned, gappy)
        for block in owned.values():
            block.make_ready()
            if block.doomed and block.pins == 0:
                # A coherence invalidation raced this fetch: the iod
                # snapshot may predate the remote sync_write, so the
                # bytes just merged can be stale.  Unpinned here means
                # nobody is mid-copy (a prefetch), so drop the block
                # now; pinned blocks are dropped by the last unpin.
                self.manager.evict(block, force=True)
                self.metrics.inc(f"{self.manager.name}.invalidated_blocks")
        # Count what actually crossed the wire (hull mode re-fetches
        # cached middle blocks, so this can exceed the needed ranges).
        self.metrics.inc("cache.fetched_bytes", requested_bytes)

    def _merge_range(
        self,
        file_id: int,
        roff: int,
        rlen: int,
        chunk: bytes | None,
        owned: dict[int, CacheBlock],
        gappy: dict[int, tuple[CacheBlock, list[tuple[int, int]]]],
    ) -> None:
        bs = self.block_size
        for block_no in blocks_spanned(roff, rlen, bs):
            block = owned.get(block_no)
            if block is None and block_no in gappy:
                block = gappy[block_no][0]
            if block is None:
                # Hull-mode over-fetch covering an already-valid block.
                continue
            lo = max(roff, block_no * bs)
            hi = min(roff + rlen, (block_no + 1) * bs)
            piece = (
                chunk[lo - roff : hi - roff] if chunk is not None else None
            )
            block.merge_fetch(lo - block_no * bs, hi - block_no * bs, piece)

    # -- write --------------------------------------------------------------------
    def write(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None = None,
    ) -> _t.Generator:
        """Process body: buffered write — cache only, flushed later.

        Control returns to libpvfs as soon as the bytes are in cache
        blocks; the flusher propagates them in the background.  May
        block waiting for free blocks when the cache is full (the
        paper's observed behaviour for large writes).
        """
        if nbytes == 0:
            return
        yield from self._pipeline_segments(
            offset,
            nbytes,
            lambda so, sn: self._write_segment(
                handle, so, sn, data, offset, sync=False
            ),
        )
        self.metrics.inc("cache.write_requests")

    def sync_write(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None = None,
    ) -> _t.Generator:
        """Process body: coherent write — cache + iod + invalidations."""
        if nbytes == 0:
            return
        yield from self._pipeline_segments(
            offset,
            nbytes,
            lambda so, sn: self._write_segment(
                handle, so, sn, data, offset, sync=True
            ),
        )
        self.metrics.inc("cache.sync_write_requests")

    def _write_segment(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None,
        request_base: int,
        sync: bool,
    ) -> _t.Generator:
        fsm = RequestFSM(self.env)
        fsm.to(FSMState.LOOKUP)
        block_nos = list(blocks_spanned(offset, nbytes, self.block_size))
        yield from self.node.compute(
            self.node.costs.cache_lookup_s * len(block_nos)
        )
        touched: list[tuple[CacheBlock, int]] = []  # (block, epoch)
        for block_no in block_nos:
            key = (handle.file_id, block_no)
            start, end = self._block_slice(offset, nbytes, block_no)
            piece = None
            if data is not None:
                src = block_no * self.block_size + start - request_base
                piece = data[src : src + (end - start)]
            # Resident fast path: a plain lookup avoids spinning up the
            # get_or_allocate generator for write hits (the common case
            # once a file's working set is cached).
            block = self.manager.lookup(key)
            if block is not None:
                resident = True
            else:
                block, resident = yield from self.manager.get_or_allocate(key)
            # CacheBlock.write is synchronous (not the yielding
            # CacheModule.write that shares its name) — no yield from.
            block.write(start, end, piece)
            self.manager.note_write(block)
            if not resident:
                # Write-allocate: no fetch needed, the block is born
                # dirty; wake any waiters immediately.
                block.make_ready()
                self.metrics.inc("cache.write_allocates")
            else:
                self.metrics.inc("cache.write_hits")
            touched.append((block, block.dirty_epoch))
        # Copy user -> kernel.
        fsm.to(FSMState.COPY)
        yield from self.node.compute(
            self.node.costs.cache_copy_block_s * len(block_nos)
        )
        if sync:
            yield from self._propagate_sync(handle, offset, nbytes, data, request_base)
            for block, epoch in touched:
                self.manager.note_cleaned(block, epoch)
        fsm.to(FSMState.DONE)
        self.metrics.inc("cache.write_segments")

    def _propagate_sync(
        self,
        handle: FileHandle,
        offset: int,
        nbytes: int,
        data: bytes | None,
        request_base: int,
    ) -> _t.Generator:
        """Write through to the iods and wait for their sync acks
        (which include the remote invalidations)."""
        per_iod = self.layout.split(offset, nbytes)
        calls = []
        for idx, ranges in sorted(per_iod.items()):
            ranges = coalesce_ranges(ranges)
            chunks: list[bytes | None] = [
                data[roff - request_base : roff - request_base + rlen]
                if data is not None
                else None
                for roff, rlen in ranges
            ]
            channel = yield from self._channel(handle.iod_nodes[idx])
            req = WriteRequest(
                file_id=handle.file_id,
                ranges=ranges,
                chunks=chunks,
                from_cache=True,
                requester_node=self.node.name,
                sync=True,
            )
            calls.append(
                channel.call(
                    Message(
                        kind=protocol.IOD_SYNC_WRITE,
                        size_bytes=req.wire_size(),
                        payload=req,
                    )
                )
            )
        for call in calls:
            ack = yield call.response()
            if ack.kind != protocol.IOD_SYNC_ACK:
                raise ValueError(f"expected sync ack, got {ack.kind!r}")
            call.close()
        self.metrics.inc("cache.sync_propagations", len(calls))
