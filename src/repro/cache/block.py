"""Cache blocks and their lifecycle.

A block is one 4 KB cache frame.  States:

* ``FREE``    — on the free list, no identity.
* ``PENDING`` — allocated to a (file, block#) key with a fetch in
  flight; concurrent requesters for the same key wait on
  :attr:`CacheBlock.ready_event` instead of issuing duplicate fetches
  (this de-duplication is where much of the inter-application benefit
  comes from).
* ``CLEAN``   — valid data, identical to the iod's copy.
* ``DIRTY``   — locally written bytes not yet flushed.

``valid``/``dirty`` are byte-interval sets within the block because
sub-block writes (the micro-benchmark's 1 KB and 2 KB request sizes)
populate blocks partially.
"""

from __future__ import annotations

import enum
import typing as _t

from repro.cache.ranges import ByteRanges

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Event


class BlockState(enum.Enum):
    """Lifecycle states of a cache frame."""

    FREE = "free"
    PENDING = "pending"
    CLEAN = "clean"
    DIRTY = "dirty"


BlockKey = tuple[int, int]  # (file_id, block_no)


class CacheBlock:
    """One cache frame."""

    __slots__ = (
        "index",
        "block_size",
        "state",
        "key",
        "data",
        "valid",
        "dirty",
        "refbit",
        "pins",
        "dirty_epoch",
        "ready_event",
        "doomed",
        "sweep_mark",
    )

    def __init__(self, index: int, block_size: int) -> None:
        self.index = index
        self.block_size = block_size
        self.state = BlockState.FREE
        self.key: BlockKey | None = None
        #: Real bytes, lazily allocated (None in size-only workloads).
        self.data: bytearray | None = None
        self.valid = ByteRanges()
        self.dirty = ByteRanges()
        #: Clock reference bit (approximate LRU).
        self.refbit = False
        #: Pinned blocks (mid-copy) are not evictable.
        self.pins = 0
        #: Bumped on every dirtying write; the flusher only marks a
        #: block clean if the epoch it captured is still current.
        self.dirty_epoch = 0
        #: Set while PENDING; fires when the fetch lands.
        self.ready_event: "Event | None" = None
        #: Invalidated while pinned: dropped as soon as the last pin
        #: releases (deferred coherence eviction).
        self.doomed = False
        #: Clock-sweep generation that last handled this block; lets
        #: the policy skip already-selected blocks without id() sets.
        self.sweep_mark = 0

    # -- state transitions ---------------------------------------------------
    def assign(self, key: BlockKey, ready_event: "Event") -> None:
        """FREE -> PENDING under ``key``."""
        if self.state is not BlockState.FREE:
            raise RuntimeError(f"assign on non-free block {self!r}")
        self.key = key
        self.state = BlockState.PENDING
        self.ready_event = ready_event
        self.refbit = True

    def merge_fetch(self, start: int, end: int, data: bytes | None) -> None:
        """Merge a fetched range without clobbering dirty bytes."""
        self._check_bounds(start, end)
        if data is None:
            self.valid.add(start, end)
            return
        buf = self._buffer()
        for lo, hi in self.dirty.gaps(start, end):
            buf[lo:hi] = data[lo - start : hi - start]
        self.valid.add(start, end)

    def write(self, start: int, end: int, data: bytes | None) -> None:
        """Record locally written bytes; block becomes DIRTY."""
        self._check_bounds(start, end)
        if self.state is BlockState.FREE:
            raise RuntimeError(f"write to free block {self!r}")
        if data is not None:
            self._buffer()[start:end] = data
        self.valid.add(start, end)
        self.dirty.add(start, end)
        self.state = BlockState.DIRTY
        self.dirty_epoch += 1
        self.refbit = True

    def mark_clean(self, epoch: int) -> bool:
        """Flusher callback: clean if no write raced the flush."""
        if self.state is BlockState.DIRTY and self.dirty_epoch == epoch:
            self.dirty.clear()
            self.state = BlockState.CLEAN
            return True
        return False

    def make_ready(self) -> None:
        """PENDING -> CLEAN (or stays DIRTY if written while pending)."""
        if self.state is BlockState.PENDING:
            self.state = BlockState.CLEAN if self.dirty.is_empty() else (
                BlockState.DIRTY
            )
        event, self.ready_event = self.ready_event, None
        if event is not None and not event.triggered:
            event.succeed(self)

    def reset(self) -> None:
        """Any state -> FREE (eviction)."""
        if self.pins:
            raise RuntimeError(f"reset of pinned block {self!r}")
        event, self.ready_event = self.ready_event, None
        if event is not None and not event.triggered:
            event.fail(RuntimeError(f"block {self.index} evicted while pending"))
        self.state = BlockState.FREE
        self.key = None
        self.data = None
        self.valid.clear()
        self.dirty.clear()
        self.refbit = False
        self.dirty_epoch = 0
        self.doomed = False

    # -- helpers -----------------------------------------------------------------
    def read_slice(self, start: int, end: int) -> bytes | None:
        """Bytes of [start, end); None when running size-only."""
        self._check_bounds(start, end)
        if self.data is None:
            return None
        return bytes(self.data[start:end])

    def pin(self) -> None:
        """Prevent eviction while a copy is in progress."""
        self.pins += 1

    def unpin(self) -> None:
        """Release one pin."""
        if self.pins <= 0:
            raise RuntimeError(f"unpin of unpinned block {self!r}")
        self.pins -= 1

    @property
    def is_evictable(self) -> bool:
        """True for unpinned CLEAN/DIRTY blocks."""
        return (
            self.state in (BlockState.CLEAN, BlockState.DIRTY)
            and self.pins == 0
        )

    def _buffer(self) -> bytearray:
        if self.data is None:
            self.data = bytearray(self.block_size)
        return self.data

    def _check_bounds(self, start: int, end: int) -> None:
        if not (0 <= start <= end <= self.block_size):
            raise ValueError(
                f"range [{start}, {end}) outside block of {self.block_size}"
            )

    def __repr__(self) -> str:
        return (
            f"<CacheBlock #{self.index} {self.state.value} key={self.key} "
            f"pins={self.pins}{' ref' if self.refbit else ''}>"
        )
