"""The harvester kernel thread: eviction ahead of demand.

The paper: "we have a harvester thread that becomes active whenever
the number of blocks in the free list falls below a certain threshold.
This thread frees up blocks till the free list size reaches a high
water mark."
"""

from __future__ import annotations

import typing as _t

from repro.cache.block import BlockState
from repro.cache.flusher import Flusher
from repro.cache.manager import BufferManager
from repro.metrics import Metrics
from repro.sim import Environment
from repro.svc import Service


class Harvester(Service):
    """Refills the free list between the low and high watermarks.

    The wake signal stays a bare simulation event rather than a
    mailbox message: ``wake()`` must be callable from synchronous code
    (the free list's low-watermark hook) without scheduling anything
    when the thread is already awake.
    """

    #: Fallback poll interval when no wake signal is expected (e.g.
    #: every evictable block is pinned by in-progress copies).
    FALLBACK_DELAY_S = 2e-3

    def __init__(
        self,
        env: Environment,
        manager: BufferManager,
        flusher: Flusher,
        metrics: Metrics,
    ) -> None:
        super().__init__(
            env, f"harvester-{flusher.node.name}", node=flusher.node
        )
        self.manager = manager
        self.flusher = flusher
        self.metrics = metrics
        self._wake = env.event()
        # Hook the free list's low-watermark signal.
        manager.freelist.on_low = self.wake

    def _on_start(self) -> None:
        self.spawn(self._loop(), name=self.name)

    def wake(self) -> None:
        """Poke the thread (cheap; callable from synchronous code)."""
        if not self._wake.triggered:
            self._wake.succeed()

    def _rearm(self) -> None:
        if self._wake.triggered:
            self._wake = self.env.event()

    def _loop(self) -> _t.Generator:
        # Hysteresis, exactly as the paper describes: the thread
        # "becomes active whenever the number of blocks in the free
        # list falls below a certain threshold [and] frees up blocks
        # till the free list size reaches a high water mark".
        active = False
        while True:
            if not active:
                if not self.manager.freelist.below_low:
                    yield self._wake
                    self._rearm()
                    continue
                active = True
                self.metrics.inc("harvester.activations")
            if not self.manager.freelist.below_high:
                active = False
                continue
            progress = yield from self._harvest_some()
            if progress == 0:
                # Nothing evictable and nothing newly flushable right
                # now: sleep until a flush batch cleans blocks (the
                # flusher's on_clean hook pokes us) or, as a fallback,
                # a short poll in case everything was merely pinned.
                yield self.env.any_of(
                    [self._wake, self.env.timeout(self.FALLBACK_DELAY_S)]
                )
                self._rearm()

    def _harvest_some(self) -> _t.Generator:
        """One pass: evict clean victims, start flushes for dirty ones.

        Dirty victims are handed to the flusher without waiting for
        acks (they are registered in-flight immediately, so the next
        pass never double-ships); they get evicted on a later pass
        once the flusher's on_clean hook re-arms us.  Returns a
        progress score (evictions + newly initiated flushes).
        """
        shortfall = self.manager.config.high_blocks - len(self.manager.freelist)
        if shortfall <= 0:
            return 0
        victims = self.manager.select_victims(shortfall)
        freed = 0
        dirty_victims = [
            b
            for b in victims
            if b.state is BlockState.DIRTY and b not in self.flusher._inflight
        ]
        if dirty_victims:
            # Clean-preferred policy may still surface dirty victims
            # when nothing clean remains: flush, then free later.
            yield from self.flusher.initiate_flush(dirty_victims)
            self.metrics.inc("harvester.dirty_flushes", len(dirty_victims))
        for block in victims:
            if block.state is BlockState.CLEAN and block.pins == 0:
                self.manager.evict(block)
                freed += 1
        self.metrics.inc("harvester.freed", freed)
        if freed:
            self._emit("eviction", freed=freed)
        return freed + len(dirty_victims)
