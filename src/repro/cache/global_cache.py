"""Cluster-wide cooperative cache lookup (the paper's ongoing work).

Paper, Section 5: "We are extending the current system to also include
a global cache that can be shared by all the nodes (the current cache
is shared only by the application processes at a given node) before
disk operations are really invoked."

Design: every block has a *home* cache node (hash of its key over the
caching nodes).  On a local miss, the module first asks the home
node's cache; only if the home also misses does the request go to the
iod.  A remote cache hit costs one LAN round trip plus the peer's
lookup/copy — far cheaper than an iod disk miss, comparable to an iod
page-cache hit, so the win shows when iod page caches are small or
cold (large datasets), which is exactly the regime the paper's
motivation describes.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cache.block import BlockKey, BlockState
from repro.net import Message
from repro.pvfs import protocol
from repro.svc import Service, handles

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cache.module import CacheModule

GCACHE_PORT = 7003


@dataclasses.dataclass
class PeerLookupRequest:
    file_id: int
    block_nos: list[int]
    want_data: bool

    def wire_size(self) -> int:
        """Bytes this request occupies on the wire."""
        return protocol.BLOCK_ID_BYTES * max(1, len(self.block_nos))


@dataclasses.dataclass
class PeerLookupReply:
    file_id: int
    #: block_no -> bytes | None for blocks the peer held (valid,
    #: whole-block); missing blocks are simply absent.
    hits: dict[int, bytes | None]

    def wire_size(self) -> int:
        """Bytes this reply occupies on the wire."""
        return sum(
            protocol.BLOCK_ID_BYTES + (len(d) if d is not None else 4096)
            for d in self.hits.values()
        ) or protocol.ACK_BYTES


class GlobalCacheDirectory:
    """Static home assignment: hash *extents* over the peer set.

    Homing individual 4 KB blocks would shred a multi-block request
    into alternating-home fragments — and fragments that fall through
    to the iods become single-block disk reads, each paying a seek.
    Homing contiguous extents (default 16 blocks = one 64 KB stripe
    unit) keeps a typical request on one home while still spreading a
    file across the peer set.
    """

    def __init__(
        self, cache_nodes: _t.Sequence[str], extent_blocks: int = 16
    ) -> None:
        if not cache_nodes:
            raise ValueError("global cache needs at least one caching node")
        if extent_blocks < 1:
            raise ValueError(f"extent_blocks must be >= 1, got {extent_blocks}")
        self.cache_nodes = tuple(sorted(cache_nodes))
        self.extent_blocks = extent_blocks

    def home_of(self, key: BlockKey) -> str:
        """The cache node responsible for ``key``."""
        file_id, block_no = key
        extent = block_no // self.extent_blocks
        return self.cache_nodes[
            (file_id * 0x9E3779B1 + extent) % len(self.cache_nodes)
        ]


class GlobalCacheClient(Service):
    """The peer-lookup side car attached to one CacheModule."""

    def __init__(
        self,
        module: "CacheModule",
        directory: GlobalCacheDirectory,
        port: int = GCACHE_PORT,
    ) -> None:
        super().__init__(
            module.env, f"gcache-{module.node.name}", node=module.node
        )
        self.module = module
        self.directory = directory
        self.port = port
        self._peer_pool = self.pool(port, label=self.name)

    # -- server side -------------------------------------------------------
    def _on_start(self) -> None:
        """Serve peer lookups on this node."""
        self.serve(self.port)

    # Back-compat name from before the service runtime.
    start_listener = Service.start

    @handles(protocol.GCACHE_LOOKUP)
    def _handle_lookup(self, msg: Message, endpoint) -> _t.Generator:
        manager = self.module.manager
        metrics = self.module.metrics
        costs = self.module.node.costs
        req: PeerLookupRequest = msg.payload
        yield from self.module.node.compute(
            costs.cache_lookup_s * max(1, len(req.block_nos))
        )
        hits: dict[int, bytes | None] = {}
        for block_no in req.block_nos:
            block = manager.lookup((req.file_id, block_no))
            if (
                block is not None
                and block.state in (BlockState.CLEAN, BlockState.DIRTY)
                and block.valid.covers(0, block.block_size)
            ):
                hits[block_no] = (
                    block.read_slice(0, block.block_size)
                    if req.want_data
                    else None
                )
        if hits:
            yield from self.module.node.compute(
                costs.cache_copy_block_s * len(hits)
            )
        metrics.inc("gcache.peer_lookups_served", len(req.block_nos))
        metrics.inc("gcache.peer_hits_served", len(hits))
        reply = PeerLookupReply(file_id=req.file_id, hits=hits)
        yield endpoint.send(
            msg.reply(
                protocol.GCACHE_REPLY, reply.wire_size(), payload=reply
            )
        )

    # -- client side -----------------------------------------------------------
    def lookup_remote(
        self, file_id: int, block_nos: _t.Sequence[int], want_data: bool
    ) -> _t.Generator:
        """Process body: ask each block's home cache; returns
        ``{block_no: data | None}`` for remote hits."""
        per_home: dict[str, list[int]] = {}
        me = self.module.node.name
        for block_no in block_nos:
            home = self.directory.home_of((file_id, block_no))
            if home != me:
                per_home.setdefault(home, []).append(block_no)
        if not per_home:
            return {}
        calls = []
        for home in sorted(per_home):
            channel = yield from self._channel(home)
            req = PeerLookupRequest(
                file_id=file_id,
                block_nos=per_home[home],
                want_data=want_data,
            )
            calls.append(
                channel.call(
                    Message(
                        kind=protocol.GCACHE_LOOKUP,
                        size_bytes=req.wire_size(),
                        payload=req,
                    )
                )
            )
        hits: dict[int, bytes | None] = {}
        for call in calls:
            reply_msg = yield call.response()
            call.close()
            reply: PeerLookupReply = reply_msg.payload
            hits.update(reply.hits)
        self.module.metrics.inc("gcache.remote_lookups", len(block_nos))
        self.module.metrics.inc("gcache.remote_hits", len(hits))
        return hits

    def _channel(self, node: str) -> _t.Generator:
        channel = yield from self._peer_pool.channel(node)
        return channel
