"""Disjoint byte-interval sets.

Cache blocks track which of their bytes are *valid* (populated by a
write or a fetch) and which are *dirty* (not yet flushed).  Requests
are contiguous, but sub-block writes mean a block can be partially
valid, so both sets are interval lists rather than booleans.
"""

from __future__ import annotations

import typing as _t

Interval = tuple[int, int]  # half-open [start, end)


class ByteRanges:
    """A set of disjoint, sorted, half-open integer intervals."""

    __slots__ = ("_ivals",)

    def __init__(self, intervals: _t.Iterable[Interval] = ()) -> None:
        self._ivals: list[Interval] = []
        for start, end in intervals:
            self.add(start, end)

    # -- mutation ------------------------------------------------------------
    def add(self, start: int, end: int) -> None:
        """Insert [start, end), merging with touching intervals."""
        if start > end:
            raise ValueError(f"inverted interval [{start}, {end})")
        if start == end:
            return
        merged: list[Interval] = []
        placed = False
        for s, e in self._ivals:
            if e < start or s > end:  # disjoint and not adjacent
                if s > end and not placed:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:  # overlap or adjacency: absorb
                start, end = min(s, start), max(e, end)
        if not placed:
            merged.append((start, end))
        merged.sort()
        self._ivals = merged

    def remove(self, start: int, end: int) -> None:
        """Delete [start, end) from the set (splitting as needed)."""
        if start > end:
            raise ValueError(f"inverted interval [{start}, {end})")
        if start == end:
            return
        out: list[Interval] = []
        for s, e in self._ivals:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self._ivals = out

    def clear(self) -> None:
        """Remove every interval."""
        self._ivals = []

    # -- queries ---------------------------------------------------------------
    def covers(self, start: int, end: int) -> bool:
        """True when [start, end) is fully inside one interval."""
        if start == end:
            return True
        return any(s <= start and end <= e for s, e in self._ivals)

    def gaps(self, start: int, end: int) -> list[Interval]:
        """Sub-intervals of [start, end) NOT covered by this set."""
        if start > end:
            raise ValueError(f"inverted interval [{start}, {end})")
        out: list[Interval] = []
        cursor = start
        for s, e in self._ivals:
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                out.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
        return out

    def intersect(self, start: int, end: int) -> list[Interval]:
        """Sub-intervals of [start, end) covered by this set."""
        out: list[Interval] = []
        for s, e in self._ivals:
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                out.append((lo, hi))
        return out

    @property
    def total(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in self._ivals)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The disjoint sorted intervals as a tuple."""
        return tuple(self._ivals)

    def is_empty(self) -> bool:
        """True when nothing is covered."""
        return not self._ivals

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ByteRanges):
            return self._ivals == other._ivals
        return NotImplemented

    def __repr__(self) -> str:
        return f"ByteRanges({self._ivals!r})"
