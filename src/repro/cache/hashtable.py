"""Open-hashing block table.

The paper: "The used cache blocks ... are chained in a hash table
(open hashing) for faster retrieval and access."  We implement the
bucket-chained structure literally (rather than hiding behind a Python
dict) so bucket-chain statistics are inspectable and the per-bucket
locking granularity of the paper has a concrete home.
"""

from __future__ import annotations

import typing as _t

from repro.cache.block import BlockKey, CacheBlock


def _next_prime(n: int) -> int:
    """Smallest prime >= n (n is small; trial division is fine)."""

    def is_prime(x: int) -> bool:
        if x < 2:
            return False
        if x % 2 == 0:
            return x == 2
        f = 3
        while f * f <= x:
            if x % f == 0:
                return False
            f += 2
        return True

    while not is_prime(n):
        n += 1
    return n


class BlockHashTable:
    """Bucket-chained map from (file_id, block_no) to CacheBlock."""

    def __init__(self, n_buckets_hint: int = 257) -> None:
        if n_buckets_hint < 1:
            raise ValueError(f"need at least one bucket, got {n_buckets_hint}")
        self.n_buckets = _next_prime(max(2, n_buckets_hint))
        self._buckets: list[list[CacheBlock]] = [
            [] for _ in range(self.n_buckets)
        ]
        self._size = 0

    def _bucket(self, key: BlockKey) -> list[CacheBlock]:
        file_id, block_no = key
        return self._buckets[(file_id * 0x9E3779B1 + block_no) % self.n_buckets]

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: BlockKey) -> bool:
        return self.get(key) is not None

    def get(self, key: BlockKey) -> CacheBlock | None:
        """The resident block under ``key``, or None."""
        for block in self._bucket(key):
            if block.key == key:
                return block
        return None

    def insert(self, block: CacheBlock) -> None:
        """Chain a keyed block (KeyError on duplicates)."""
        if block.key is None:
            raise ValueError("cannot insert a block without a key")
        chain = self._bucket(block.key)
        if any(b.key == block.key for b in chain):
            raise KeyError(f"duplicate insert for {block.key}")
        chain.append(block)
        self._size += 1

    def remove(self, block: CacheBlock) -> None:
        """Unchain a block (KeyError if absent)."""
        if block.key is None:
            raise ValueError("cannot remove a block without a key")
        chain = self._bucket(block.key)
        try:
            chain.remove(block)
        except ValueError:
            raise KeyError(f"{block.key} not in table") from None
        self._size -= 1

    def blocks(self) -> _t.Iterator[CacheBlock]:
        """All resident blocks (bucket order; used by the clock sweep)."""
        for chain in self._buckets:
            yield from chain

    def chain_lengths(self) -> list[int]:
        """Bucket chain lengths (distribution probe for tests)."""
        return [len(c) for c in self._buckets]
