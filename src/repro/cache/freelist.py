"""The free list, with low/high watermarks driving the harvester.

The paper: "Rather than allocate/free blocks on demand, which can
incur higher latencies at those points, we have a harvester thread
that becomes active whenever the number of blocks in the free list
falls below a certain threshold."  Allocation therefore *waits* when
the list runs dry (the paper observes exactly this for large writes),
and every drop below the low watermark pokes the harvester.
"""

from __future__ import annotations

import typing as _t

from repro.cache.block import BlockState, CacheBlock
from repro.sim import Environment, Store


class FreeList:
    """FIFO pool of FREE blocks with watermark signalling."""

    def __init__(
        self,
        env: Environment,
        blocks: _t.Iterable[CacheBlock],
        low_blocks: int,
        high_blocks: int,
    ) -> None:
        self.env = env
        self.low_blocks = low_blocks
        self.high_blocks = high_blocks
        self._store = Store(env)
        self._count = 0
        for block in blocks:
            if block.state is not BlockState.FREE:
                raise ValueError(f"{block!r} is not free")
            self._store.put(block)
            self._count += 1
        #: Called (synchronously) whenever the free count drops below
        #: the low watermark; the harvester hooks this to wake up.
        self.on_low: _t.Callable[[], None] | None = None
        self.allocation_waits = 0

    def __len__(self) -> int:
        # _count goes negative while allocators are queued; as a pool
        # size, clamp at zero.
        return max(0, self._count)

    @property
    def below_low(self) -> bool:
        """True when the free count is under the low watermark."""
        return self._count < self.low_blocks

    @property
    def below_high(self) -> bool:
        """True when the free count is under the high watermark."""
        return self._count < self.high_blocks

    def acquire(self) -> _t.Generator:
        """Process body: take a FREE block (waits when the pool is dry).

        The wait path is the paper's "writes may need to block for
        availability of cache space".
        """
        if self._count == 0:
            self.allocation_waits += 1
        self._count -= 1  # may go negative: that many waiters queued
        if self._count < self.low_blocks and self.on_low is not None:
            self.on_low()
        block = yield self._store.get()
        return block

    def release(self, block: CacheBlock) -> None:
        """Return a reset block to the pool."""
        if block.state is not BlockState.FREE:
            raise ValueError(f"release of non-free block {block!r}")
        self._store.put(block)
        self._count += 1
