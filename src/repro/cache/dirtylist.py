"""The dirty list: blocks awaiting write-back, in first-dirtied order."""

from __future__ import annotations

from repro.cache.block import BlockState, CacheBlock


class DirtyList:
    """Ordered set of dirty blocks.

    Insertion order == first-dirtied order, so the flusher naturally
    writes back the oldest dirty data first (bounding staleness at the
    iod to roughly one flush period).
    """

    def __init__(self) -> None:
        self._blocks: dict[CacheBlock, None] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: CacheBlock) -> bool:
        return block in self._blocks

    def add(self, block: CacheBlock) -> None:
        """Track a dirty block; re-adding keeps the original position."""
        if block.state is not BlockState.DIRTY:
            raise ValueError(f"{block!r} is not dirty")
        self._blocks.setdefault(block, None)

    def discard(self, block: CacheBlock) -> None:
        """Stop tracking a block (no-op if untracked)."""
        self._blocks.pop(block, None)

    def snapshot(self) -> list[CacheBlock]:
        """Current dirty blocks, oldest-first (for one flush round)."""
        return list(self._blocks)

    def drain(self) -> list[CacheBlock]:
        """Snapshot and clear (the flusher re-adds anything that
        re-dirties mid-flight via the write path)."""
        blocks = list(self._blocks)
        self._blocks.clear()
        return blocks
