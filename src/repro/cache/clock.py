"""Replacement policies: the paper's clock (approximate LRU) and an
exact-LRU alternative used for ablation.

The paper: "We use an approximate LRU replacement algorithm to free up
the blocks (since exact LRU can result in a significant overhead at
each read/write invocation), and preference for replacement is given
to clean blocks over dirty ones."
"""

from __future__ import annotations

from repro.cache.block import BlockState, CacheBlock


class ReplacementPolicy:
    """Interface: pick eviction victims among resident blocks."""

    def touch(self, block: CacheBlock) -> None:  # pragma: no cover
        """Record a reference to a resident block."""
        raise NotImplementedError

    def forget(self, block: CacheBlock) -> None:  # pragma: no cover
        """Drop a block from the policy's tracking."""
        raise NotImplementedError

    def select_victims(
        self, n: int, prefer_clean: bool = True
    ) -> list[CacheBlock]:  # pragma: no cover
        """Pick up to ``n`` eviction victims."""
        raise NotImplementedError


class ClockPolicy(ReplacementPolicy):
    """Second-chance clock sweep over the resident blocks.

    ``touch`` costs O(1) (set the reference bit) — the cheapness on
    the hot path is the whole point versus exact LRU.
    """

    def __init__(self) -> None:
        self._ring: list[CacheBlock] = []
        self._hand = 0
        #: Bumped per sweep; blocks stamped with the current generation
        #: have already been picked (victim or dirty fallback).
        self._sweep_gen = 0

    def touch(self, block: CacheBlock) -> None:
        """Set the reference bit (O(1) hot path; ring membership is
        managed by admit()/forget(), called once per residency)."""
        block.refbit = True

    def admit(self, block: CacheBlock) -> None:
        """Register a newly resident block with the sweep ring."""
        self._ring.append(block)
        block.refbit = True

    def forget(self, block: CacheBlock) -> None:
        """Remove a block from the ring, fixing the hand."""
        try:
            idx = self._ring.index(block)
        except ValueError:
            return
        self._ring.pop(idx)
        if idx < self._hand:
            self._hand -= 1
        if self._ring:
            self._hand %= len(self._ring)
        else:
            self._hand = 0

    def select_victims(
        self, n: int, prefer_clean: bool = True
    ) -> list[CacheBlock]:
        """Sweep the ring, giving referenced blocks a second chance.

        With ``prefer_clean``, dirty blocks get an extra pass of grace:
        they are only chosen once no clean candidate remains.
        """
        if n <= 0 or not self._ring:
            return []
        victims: list[CacheBlock] = []
        dirty_fallback: list[CacheBlock] = []
        # Two full sweeps: the first clears reference bits, the second
        # collects whatever is evictable.  If a whole revolution makes
        # no progress at all (everything pinned / pending / already in
        # flight), stop early — a longer sweep cannot help.
        #
        # This loop dominates harvester cost on cache-pressure
        # workloads, so it iterates a hand-rotated list copy (C-speed
        # iteration, no per-step index/wrap arithmetic) on local
        # variables.  Instead of id() sets, already-picked blocks carry
        # the sweep generation in their ``sweep_mark`` — nothing can
        # touch a block mid-sweep (the sweep is synchronous), so victim
        # and fallback sets are disjoint and one stamp covers both.
        # The fallback list only ever yields its first ``n`` entries,
        # so appends stop there; later dirty candidates still get
        # marked and counted as revolution progress, exactly as if they
        # had been collected.
        self._sweep_gen += 1
        gen = self._sweep_gen
        ring = self._ring
        hand = self._hand
        ring_len = len(ring)
        rotated = ring[hand:] + ring[:hand]
        processed = 0
        n_picked = 0
        n_fallback = 0
        clean = BlockState.CLEAN
        dirty = BlockState.DIRTY
        pick_append = victims.append
        fallback_append = dirty_fallback.append
        filled = False
        for _revolution in (0, 1):
            useful_in_revolution = 0
            for block in rotated:
                processed += 1
                state = block.state
                if block.pins or (state is not clean and state is not dirty):
                    continue
                if block.refbit:
                    block.refbit = False  # second chance
                    useful_in_revolution += 1
                    continue
                if block.sweep_mark == gen:
                    continue
                block.sweep_mark = gen
                if prefer_clean and state is dirty:
                    useful_in_revolution += 1
                    n_fallback += 1
                    if n_fallback <= n:
                        fallback_append(block)
                    continue
                pick_append(block)
                n_picked += 1
                useful_in_revolution += 1
                if n_picked >= n:
                    filled = True
                    break
            if filled or useful_in_revolution == 0:
                break
        self._hand = (hand + processed) % ring_len
        # Every fallback block was unpinned CLEAN/DIRTY when marked and
        # the sweep is synchronous, so all of them are still evictable.
        for block in dirty_fallback:
            if n_picked >= n:
                break
            victims.append(block)
            n_picked += 1
        return victims

    def __len__(self) -> int:
        return len(self._ring)


class ExactLRUPolicy(ReplacementPolicy):
    """True LRU ordering (ablation baseline).

    ``touch`` is O(1) amortised via dict move-to-end, but the point of
    the ablation is hit-path *cost modelling*, handled by the manager
    charging a higher touch cost when this policy is configured.
    """

    def __init__(self) -> None:
        self._order: dict[CacheBlock, None] = {}

    def touch(self, block: CacheBlock) -> None:
        """Move the block to most-recently-used."""
        self._order.pop(block, None)
        self._order[block] = None

    def admit(self, block: CacheBlock) -> None:
        """Register a newly resident block."""
        self.touch(block)

    def forget(self, block: CacheBlock) -> None:
        """Drop a block from the recency order."""
        self._order.pop(block, None)

    def select_victims(
        self, n: int, prefer_clean: bool = True
    ) -> list[CacheBlock]:
        """Oldest-first victims, clean preferred."""
        victims: list[CacheBlock] = []
        dirty_fallback: list[CacheBlock] = []
        for block in self._order:  # oldest first
            if len(victims) >= n:
                break
            if not block.is_evictable:
                continue
            if prefer_clean and block.state is BlockState.DIRTY:
                dirty_fallback.append(block)
                continue
            victims.append(block)
        for block in dirty_fallback:
            if len(victims) >= n:
                break
            victims.append(block)
        return victims

    def __len__(self) -> int:
        return len(self._order)
