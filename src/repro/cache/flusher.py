"""The flusher kernel thread (client side of write-behind).

The paper: "On a write, cache blocks are not immediately propagated to
the server (the write is performed on the cache and control is
returned back to libpvfs).  The blocks are marked dirty (kept in a
dirty list), and this list is flushed periodically to the iod nodes.
A server version of this flusher thread runs on the iod nodes, which
listens on a separate socket for the flushes."
"""

from __future__ import annotations

import typing as _t

from repro.analysis.sanitize import atomic_section
from repro.analysis.shared import shared_state
from repro.cache.block import BlockState, CacheBlock
from repro.cache.manager import BufferManager
from repro.cluster.node import Node
from repro.metrics import Metrics
from repro.net import Message
from repro.pvfs import protocol
from repro.pvfs.protocol import FlushBatch, FlushEntry
from repro.pvfs.striping import StripeLayout
from repro.svc import Service


@shared_state("_inflight")
class Flusher(Service):
    """Periodically ships dirty blocks to the iods' flush ports.

    Drain semantics (the :class:`~repro.svc.Service` lifecycle): a
    ``drain()`` flushes until the dirty list is empty, so tearing a
    node down afterwards loses nothing; a bare ``stop()`` reports the
    still-dirty block count as dropped work.
    """

    def __init__(
        self,
        node: Node,
        manager: BufferManager,
        layout: StripeLayout,
        iod_nodes: _t.Sequence[str],
        metrics: Metrics,
        period_s: float,
        flush_port: int = 7001,
    ) -> None:
        super().__init__(node.env, f"flusher-{node.name}", node=node)
        self.manager = manager
        self.layout = layout
        self.iod_nodes = tuple(iod_nodes)
        self.metrics = metrics
        self.period_s = period_s
        self.flush_port = flush_port
        self._flush_pool = self.pool(flush_port, label=self.name)
        #: Blocks whose dirty data is on the wire right now; a second
        #: flush request for them is skipped (no duplicate shipping).
        self._inflight: set[CacheBlock] = set()
        #: Hook: called whenever blocks become clean (the harvester
        #: wires its wake() here so evictions pipeline with flushing).
        self.on_clean: _t.Callable[[], None] | None = None

    def _on_start(self) -> None:
        self.spawn(self._loop(), name=self.name)

    def _loop(self) -> _t.Generator:
        while True:
            # Under write pressure (more dirty blocks than the
            # harvester's refill target) flush back-to-back; otherwise
            # wake at the configured period.
            if self.manager.n_dirty <= self.manager.config.high_blocks:
                yield self.env.timeout(self.period_s)
            shipped = yield from self.flush_round()
            if shipped == 0 and self.manager.n_dirty:
                # Everything dirty is already on the wire (e.g. a
                # harvester-initiated flush): give those batches time
                # to ack instead of spinning.
                yield self.env.timeout(self.period_s / 16)

    def flush_round(self) -> _t.Generator:
        """One write-back pass over the current dirty list.  Returns
        how many blocks were actually cleaned."""
        blocks = self.manager.dirtylist.snapshot()
        if not blocks:
            return 0
        cleaned = yield from self.flush_blocks(blocks)
        return cleaned

    def flush_blocks(self, blocks: _t.Sequence[CacheBlock]) -> _t.Generator:
        """Ship the dirty fragments of ``blocks``; mark clean on ack.

        Returns once every batch is acked (blocks become evictable
        earlier, as their own iod acks).
        """
        waiters = yield from self.initiate_flush(blocks)
        if not waiters:
            return 0
        results = yield self.env.all_of(waiters)
        cleaned = sum(results.values())
        self.metrics.inc("flusher.blocks_cleaned", cleaned)
        return cleaned

    def initiate_flush(
        self, blocks: _t.Sequence[CacheBlock]
    ) -> _t.Generator:
        """Ship batches without waiting for acks.

        Blocks are registered in-flight *before* any yield, so a
        caller probing ``_inflight`` right after initiating (the
        harvester's loop) never double-ships.  One batch per iod,
        acknowledged independently: blocks become clean (and
        evictable) as soon as *their* iod acks, so eviction pipelines
        with the rest of the flush instead of waiting for the slowest
        server.  Returns the per-batch waiter processes.
        """
        per_iod_frags: dict[str, list[tuple[int, int, int, bytes | None]]] = {}
        per_iod_caps: dict[str, list[tuple[CacheBlock, int]]] = {}
        # Snapshot-and-register must not be interleaved: a yield in
        # this loop would let a racing write (or the harvester) change
        # the dirty set between the epoch capture and the in-flight
        # registration, double-shipping or losing a block.
        with atomic_section(
            self.manager.dirtylist, label="initiate_flush.register"
        ):
            for block in blocks:
                if (
                    block.state is not BlockState.DIRTY
                    or block.key is None
                    or block in self._inflight
                ):
                    continue
                file_id, block_no = block.key
                base = block_no * block.block_size
                iod_node = self.iod_nodes[self.layout.iod_index(base)]
                frags = per_iod_frags.setdefault(iod_node, [])
                for start, end in block.dirty.intervals:
                    frags.append(
                        (
                            file_id,
                            base + start,
                            end - start,
                            block.read_slice(start, end),
                        )
                    )
                per_iod_caps.setdefault(iod_node, []).append(
                    (block, block.dirty_epoch)
                )
                self._inflight.add(block)
        if not per_iod_frags:
            return []
        waiters = []
        for iod_node in sorted(per_iod_frags):
            entries = self._coalesce(per_iod_frags[iod_node])
            channel = yield from self._flush_pool.channel(iod_node)
            batch = FlushBatch(entries=entries)
            call = channel.call(
                Message(
                    kind=protocol.FLUSH,
                    size_bytes=batch.wire_size(),
                    payload=batch,
                )
            )
            self.metrics.inc("flusher.batches")
            self.metrics.inc("flusher.bytes", batch.total_bytes)
            self._emit(
                "flush_batch",
                iod=iod_node,
                entries=len(entries),
                bytes=batch.total_bytes,
            )
            waiters.append(
                self.env.process(
                    self._await_batch(call, per_iod_caps[iod_node]),
                    name=f"flush-ack-{self.node.name}-{iod_node}",
                )
            )
        return waiters

    def _await_batch(
        self, call, captured: list[tuple[CacheBlock, int]]
    ) -> _t.Generator:
        ack = yield call.response()
        if ack.kind != protocol.FLUSH_ACK:
            raise ValueError(f"expected flush ack, got {ack.kind!r}")
        call.close()
        cleaned = 0
        for block, epoch in captured:
            self._inflight.discard(block)
            if self.manager.note_cleaned(block, epoch):
                cleaned += 1
        if cleaned and self.on_clean is not None:
            self.on_clean()
        return cleaned

    def _coalesce(
        self, fragments: list[tuple[int, int, int, bytes | None]]
    ) -> list[FlushEntry]:
        """Merge adjacent dirty fragments into long ranges (sequential
        writes dirty long runs of blocks; shipping them as single
        ranges keeps both the wire and the iods' writeback efficient).
        """
        fragments = sorted(fragments, key=lambda f: (f[0], f[1]))
        # Payloads accumulate as chunk lists and are joined once per
        # entry: concatenating bytes in place would recopy the merged
        # prefix on every fragment (quadratic in run length).
        merged: list[list] = []  # [file_id, off, n, list[bytes] | None]
        for file_id, off, n, data in fragments:
            if (
                merged
                and merged[-1][0] == file_id
                and merged[-1][1] + merged[-1][2] == off
                and (merged[-1][3] is None) == (data is None)
            ):
                merged[-1][2] += n
                if data is not None:
                    merged[-1][3].append(data)
            else:
                merged.append(
                    [file_id, off, n, None if data is None else [data]]
                )
        return [
            FlushEntry(
                file_id=f,
                offset=o,
                nbytes=n,
                data=None if parts is None else b"".join(parts),
            )
            for f, o, n, parts in merged
        ]

    def _drain(self) -> _t.Generator:
        """Flush until nothing is dirty (tests / orderly shutdown)."""
        while self.manager.n_dirty:
            cleaned = yield from self.flush_round()
            if cleaned == 0:
                # Batches already in flight (or raced writes): let
                # their acks land before probing again.
                yield self.env.timeout(self.period_s / 16)

    def _dropped(self) -> dict[str, int]:
        return {"dirty_blocks": self.manager.n_dirty}
