"""The paper's contribution: the per-node kernel-level shared I/O cache.

The module interposes between libpvfs and the iod sockets — one
instance per node, shared by *every* process on the node, which is what
turns one application's misses into another application's hits
(inter-application data sharing, Section 1).

Components map one-to-one onto the paper's Section 3.2:

* :class:`~repro.cache.manager.BufferManager` — "a full-fledged buffer
  manager of blocks, requiring the implementation of hash tables, free
  list and dirty list";
* :class:`~repro.cache.clock.ClockPolicy` — "an approximate LRU
  replacement algorithm ... preference for replacement is given to
  clean blocks over dirty ones";
* :class:`~repro.cache.flusher.Flusher` — write-behind kernel thread,
  with a server peer on each iod;
* :class:`~repro.cache.harvester.Harvester` — frees blocks ahead of
  demand between a low and a high watermark;
* :class:`~repro.cache.fsm.RequestFSM` — the per-socket finite state
  machine that fakes acknowledgements and splices cached blocks into
  partially-hit requests;
* :class:`~repro.cache.module.CacheModule` — the interception layer
  (read / write / sync_write) plus the invalidation listener.
"""

from repro.cache.block import BlockState, CacheBlock
from repro.cache.global_cache import GlobalCacheClient, GlobalCacheDirectory
from repro.cache.manager import BufferManager
from repro.cache.module import CacheModule
from repro.cache.prefetch import ReadAhead
from repro.cache.ranges import ByteRanges

__all__ = [
    "BlockState",
    "BufferManager",
    "ByteRanges",
    "CacheBlock",
    "CacheModule",
    "GlobalCacheClient",
    "GlobalCacheDirectory",
    "ReadAhead",
]
