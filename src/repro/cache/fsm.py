"""The per-request finite state machine.

The paper: "One can envision our kernel module as maintaining a finite
state machine for each socket; transitioning between states is based
on the socket calls that libpvfs makes on that node and the incoming
messages from the corresponding iods."

The FSM tracks each intercepted request through lookup, request
splitting, the locally *faked acknowledgements* (libpvfs believes the
iods acked immediately), data arrival and the final copy to user
space.  Illegal transitions raise — the tests drive every legal path
and assert the illegal ones fail.
"""

from __future__ import annotations

import enum

from repro.sim import Environment


class FSMState(enum.Enum):
    """States a request walks through inside the module."""

    IDLE = "idle"
    LOOKUP = "lookup"
    REQUESTS_ISSUED = "requests-issued"
    ACK_FAKED = "ack-faked"
    AWAIT_DATA = "await-data"
    COPY = "copy"
    DONE = "done"


#: Legal transitions.  A fully-hit request jumps LOOKUP -> COPY; a
#: request with misses walks the full chain.
TRANSITIONS: dict[FSMState, frozenset[FSMState]] = {
    FSMState.IDLE: frozenset({FSMState.LOOKUP}),
    FSMState.LOOKUP: frozenset(
        {FSMState.REQUESTS_ISSUED, FSMState.COPY, FSMState.DONE}
    ),
    FSMState.REQUESTS_ISSUED: frozenset({FSMState.ACK_FAKED}),
    FSMState.ACK_FAKED: frozenset({FSMState.AWAIT_DATA}),
    FSMState.AWAIT_DATA: frozenset({FSMState.COPY}),
    FSMState.COPY: frozenset({FSMState.DONE}),
    FSMState.DONE: frozenset(),
}


class IllegalTransition(RuntimeError):
    """Raised on a transition the FSM's state graph forbids."""
    pass


class RequestFSM:
    """State tracker for one intercepted read/write request."""

    __slots__ = ("env", "state", "trace", "faked_acks", "split_requests")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.state = FSMState.IDLE
        #: (state, simulated time) history, for tests and debugging.
        self.trace: list[tuple[FSMState, float]] = [(FSMState.IDLE, env.now)]
        #: How many iod acknowledgements were faked locally.
        self.faked_acks = 0
        #: How many extra requests were issued because a cached block
        #: sat in the middle of a contiguous run.
        self.split_requests = 0

    def to(self, state: FSMState) -> None:
        """Transition to ``state`` (raises IllegalTransition)."""
        if state not in TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"illegal transition {self.state.value} -> {state.value}"
            )
        self.state = state
        self.trace.append((state, self.env.now))

    def fake_ack(self, n: int = 1) -> None:
        """Record locally faked iod acknowledgements."""
        if self.state is not FSMState.ACK_FAKED:
            raise IllegalTransition(
                f"cannot fake acks in state {self.state.value}"
            )
        self.faked_acks += n

    @property
    def is_done(self) -> bool:
        """True once the request reached DONE."""
        return self.state is FSMState.DONE

    def states_visited(self) -> list[FSMState]:
        """States in visit order (from the trace)."""
        return [s for s, _ in self.trace]
