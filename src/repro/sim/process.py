"""Generator-driven simulation processes."""

from __future__ import annotations

import typing as _t

from repro.sim.events import Event, Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment


class ProcessKilled(Exception):
    """Injected into a process by :meth:`Process.kill`."""


class Process(Event):
    """A running coroutine in the simulation.

    The wrapped generator yields :class:`Event` objects to suspend; the
    process resumes with the event's value (or the event's exception
    raised at the yield point).  A process is itself an event that
    fires with the generator's return value, so processes can wait on
    each other: ``result = yield env.process(child(env))``.
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(
        self,
        env: "Environment",
        generator: _t.Generator,
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently suspended on.
        self._waiting_on: Event | None = None
        # Kick off on a fresh urgent event so the first body statement
        # runs at the current simulation time, after the caller returns.
        start = Event(env)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        env._seq += 1
        env._due_urgent.append((env._now, 0, env._seq, start))
        d = env._depth + 1
        env._depth = d
        if d > env._depth_hw:
            env._depth_hw = d

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: _t.Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        Interrupting a finished process is an error; interrupting a
        process that is not currently waiting (i.e. scheduled to resume
        at this same instant) is also rejected to keep semantics simple.
        """
        if self.triggered:
            raise RuntimeError(f"{self.name} has already terminated")
        if self._waiting_on is None:
            raise RuntimeError(f"{self.name} is not waiting on any event")
        waited = self._waiting_on
        # Detach from the event we were waiting on: when it fires later
        # we must not resume a second time.
        if waited.callbacks is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        # Deliver the interrupt via an urgent immediate event.
        exc_event = Event(self.env)
        exc_event._ok = False
        exc_event._value = Interrupt(cause)
        self.env.schedule(exc_event, priority=self.env.PRIORITY_URGENT)
        exc_event.add_callback(self._resume)

    def kill(self) -> None:
        """Terminate the process by closing its generator.

        The process event fails with :class:`ProcessKilled` so waiters
        are not left hanging.
        """
        if self.triggered:
            return
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            if self._resume in waited.callbacks:
                waited.callbacks.remove(self._resume)
        self._waiting_on = None
        self._generator.close()
        self.fail(ProcessKilled(f"{self.name} was killed"))

    # -- resume machinery --------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Already finished — e.g. killed between its spawn and the
            # start event firing.  A late resume must not re-enter the
            # closed generator.
            return
        self._waiting_on = None
        env = self.env
        env._active_process = self
        # Hoisted bound methods: _resume runs once per generator
        # round-trip, the hottest path outside the run loop itself.
        generator = self._generator
        send = generator.send
        throw = generator.throw
        try:
            while True:
                try:
                    if event._ok:
                        target = send(event._value)
                    else:
                        exc = _t.cast(BaseException, event._value)
                        target = throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                if not isinstance(target, Event):
                    # Tear down: a process yielded garbage; surface a
                    # clear error both in the process and to waiters.
                    err = TypeError(
                        f"{self.name} yielded {target!r}; processes may "
                        "only yield Event instances"
                    )
                    self._generator.close()
                    self.fail(err)
                    return
                if target.env is not env:
                    err = ValueError(
                        f"{self.name} yielded an event from a different "
                        "environment"
                    )
                    self._generator.close()
                    self.fail(err)
                    return
                if target.processed:
                    # Already fired: loop and feed it straight back in,
                    # no rescheduling needed.
                    event = target
                    continue
                self._waiting_on = target
                target.add_callback(self._resume)
                return
        except BaseException as exc:
            # The generator itself raised (bug in simulated code or a
            # deliberately un-caught Interrupt): fail the process event
            # so waiters see it; re-raise if nobody is waiting would be
            # nice but we cannot know yet, so we always fail loudly via
            # the event. Tests assert on this.
            if not self.triggered:
                self.fail(exc)
            else:  # pragma: no cover - double fault
                raise
        finally:
            env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name} at {id(self):#x}>"
