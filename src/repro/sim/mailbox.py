"""Inter-shard mailbox: the only channel between shard environments.

The conservative parallel engine (DESIGN.md §17) partitions a
cluster's nodes across shard :class:`~repro.sim.engine.Environment`
objects that advance in lookahead quanta.  Everything that crosses a
shard boundary — connection handshakes and the messages that follow —
travels as a serializable :class:`Envelope` through one
:class:`InterShardMailbox` per shard.  Envelopes are injected at
barriers in deterministic ``(deliver_time, src_shard, seq)`` order, so
the merged schedule is identical whether shards run in one process
(inline backend) or one worker process each.

Cross-shard transfers are timed as *unloaded* fabric transfers
(``base latency + serialization time``): a remote delivery never
contends with the destination shard's local traffic.  That is the
model's one approximation relative to a serial run — every delivery is
still at least one full lookahead quantum in the future, which is what
makes the barrier protocol conservative.

Per-direction FIFO is preserved the same way TCP preserves it: each
``(connection, direction)`` keeps a monotone delivery clock, and a
message computed to land earlier than its predecessor is clamped to
the predecessor's delivery time.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.sim.engine import Environment
from repro.sim.events import Event, Timeout
from repro.sim.resources import Store

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.message import Message

#: Endpoint roles, mirrored from :mod:`repro.net.sockets` (not imported
#: to keep this module free of net dependencies).
CLIENT = "client"
SERVER = "server"

#: Wire bytes charged for a connection-open (SYN) control envelope —
#: one protocol header, matching ``Message.HEADER_BYTES``.
SYN_WIRE_BYTES = 64


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Node-to-shard partition of one cluster topology.

    The assignment must cover every node name of the cluster; shard
    ids run ``0..shards-1`` and a shard may own no nodes at all (more
    shards than nodes — it simply has nothing to simulate).
    """

    shards: int
    assignment: dict[str, int]

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        for node, shard in self.assignment.items():
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"node {node!r} assigned to shard {shard} "
                    f"outside 0..{self.shards - 1}"
                )

    def shard_of(self, node: str) -> int:
        """The shard owning ``node``."""
        return self.assignment[node]

    def local_nodes(self, shard_id: int) -> list[str]:
        """Sorted names of the nodes owned by ``shard_id``."""
        return sorted(
            node for node, s in self.assignment.items() if s == shard_id
        )


def plan_shards(
    compute_names: _t.Sequence[str],
    iod_names: _t.Sequence[str],
    shards: int,
) -> ShardPlan:
    """Partition node names round-robin by index.

    Compute node ``i`` and iod node ``i`` land on the same shard
    (``i % shards``), so each iod is co-located with the cache module
    it shares a box with in the paper's testbed — the hot
    cache-to-local-iod paths stay intra-shard.  Round-robin (rather
    than contiguous blocks) spreads the replayer's round-robin process
    placement evenly across shards.
    """
    assignment: dict[str, int] = {}
    for i, name in enumerate(compute_names):
        assignment[name] = i % shards
    for i, name in enumerate(iod_names):
        assignment.setdefault(name, i % shards)
    return ShardPlan(shards=shards, assignment=assignment)


@dataclasses.dataclass(frozen=True)
class Envelope:
    """One serializable cross-shard delivery.

    ``sort_key`` — ``(deliver_time, src_shard, seq)`` — totally orders
    every envelope of a run, which is what makes barrier injection
    deterministic across backends.
    """

    deliver_time: float
    src_shard: int
    dst_shard: int
    seq: int
    #: ``(origin shard, origin-local id)`` of the connection.
    conn_uid: tuple[int, int]
    #: ``"data"`` for an in-connection message, ``"syn"`` for the
    #: connection-open control envelope.
    kind: str = "data"
    #: Receiving endpoint role (data envelopes).
    to_role: str = SERVER
    message: "Message | None" = None
    #: Connection addressing (syn envelopes).
    client_node: str = ""
    server_node: str = ""
    port: int = 0

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """The canonical injection order: (time, shard, seq)."""
        return (self.deliver_time, self.src_shard, self.seq)


class ShardDelivery(Event):
    """The event under which one envelope lands in its shard."""

    __slots__ = ()


class RemoteHalfConnection:
    """One shard's half of a cross-shard socket connection.

    Duck-types :class:`repro.net.sockets.Connection` for the fields an
    :class:`~repro.net.sockets.Endpoint` touches (``client_node`` /
    ``server_node`` / ``env`` / ``_inbox`` / ``_send`` / ``conn_id`` /
    ``closed``), but only the *local* role's inbox exists here — the
    peer half lives in another shard's environment and sends land
    there as envelopes.
    """

    __slots__ = (
        "mailbox",
        "env",
        "conn_uid",
        "conn_id",
        "client_node",
        "server_node",
        "local_role",
        "peer_shard",
        "_inbox",
        "closed",
    )

    def __init__(
        self,
        mailbox: "InterShardMailbox",
        conn_uid: tuple[int, int],
        client_node: str,
        server_node: str,
        local_role: str,
        peer_shard: int,
    ) -> None:
        self.mailbox = mailbox
        self.env: Environment = mailbox.env
        self.conn_uid = conn_uid
        #: Display id; the uid pair keeps it unique across shards.
        self.conn_id = f"x{conn_uid[0]}.{conn_uid[1]}"
        self.client_node = client_node
        self.server_node = server_node
        self.local_role = local_role
        self.peer_shard = peer_shard
        self._inbox: dict[str, Store] = {local_role: Store(self.env)}
        self.closed = False

    def _send(self, from_role: str, message: "Message") -> Event:
        if self.closed:
            raise RuntimeError("send on closed connection")
        if from_role != self.local_role:  # pragma: no cover - defensive
            raise RuntimeError(
                f"role {from_role!r} does not live on this shard's half "
                f"of connection {self.conn_id}"
            )
        message.src = (
            self.client_node if from_role == CLIENT else self.server_node
        )
        message.dst = (
            self.server_node if from_role == CLIENT else self.client_node
        )
        return self.mailbox.post(self, message)

    def close(self) -> None:
        """Mark this half closed (local sends then fail)."""
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"<RemoteHalfConnection #{self.conn_id} {self.local_role}-half "
            f"{self.client_node}<->{self.server_node}>"
        )


class InterShardMailbox:
    """Per-shard router for everything that crosses a shard boundary.

    Attached to the shard's :class:`~repro.net.network.Network` as
    ``shard_router``; :meth:`repro.net.sockets.SocketAPI.connect`
    consults it to open cross-shard connections, and the parallel
    driver calls :meth:`collect` / :meth:`inject` at every barrier.
    """

    def __init__(
        self,
        env: Environment,
        shard_id: int,
        plan: ShardPlan,
        network: _t.Any,
        latency: _t.Callable[[int], float],
    ) -> None:
        self.env = env
        self.shard_id = shard_id
        self.plan = plan
        self.network = network
        #: Unloaded transfer time for ``wire_bytes`` on this shard's
        #: fabric (``Fabric.transfer_time_unloaded``).
        self.latency = latency
        #: Envelopes produced since the last :meth:`collect`.
        self.outbox: list[Envelope] = []
        #: Cross-shard halves living in this shard, by connection uid.
        self._halves: dict[tuple[int, int], RemoteHalfConnection] = {}
        #: Monotone per-``(conn_uid, to_role)`` delivery clock (FIFO).
        self._fifo_clock: dict[tuple[tuple[int, int], str], float] = {}
        #: Deterministic envelope tiebreaker, local to this shard.
        self._seq = 0
        #: Origin-local connection id counter.
        self._next_conn = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.connects_opened = 0

    # -- topology ----------------------------------------------------------
    def is_local(self, node: str) -> bool:
        """Does ``node`` live in this shard's environment?

        Unknown names (nodes built outside the cluster config) are
        treated as local — only planned nodes are ever remote.
        """
        return self.plan.assignment.get(node, self.shard_id) == self.shard_id

    # -- sending -----------------------------------------------------------
    def _enqueue(
        self,
        dst_shard: int,
        direction: tuple[tuple[int, int], str],
        wire_bytes: int,
        **fields: _t.Any,
    ) -> float:
        """Queue one envelope; returns the local latency charged."""
        delay = self.latency(wire_bytes)
        deliver = self.env.now + delay
        floor = self._fifo_clock.get(direction, 0.0)
        if deliver < floor:
            deliver = floor
        self._fifo_clock[direction] = deliver
        self._seq += 1
        self.outbox.append(
            Envelope(
                deliver_time=deliver,
                src_shard=self.shard_id,
                dst_shard=dst_shard,
                seq=self._seq,
                **fields,
            )
        )
        self.env.note_cross_shard_msg()
        return delay

    def post(self, half: RemoteHalfConnection, message: "Message") -> Event:
        """Route ``message`` to the peer half; returns the send event.

        The event fires after the same unloaded transfer time the
        envelope is stamped with, mirroring the serial contract that a
        send completes once the peer has the message queued.
        """
        to_role = SERVER if half.local_role == CLIENT else CLIENT
        delay = self._enqueue(
            half.peer_shard,
            (half.conn_uid, to_role),
            message.wire_bytes,
            conn_uid=half.conn_uid,
            kind="data",
            to_role=to_role,
            message=message,
        )
        self.messages_sent += 1
        done = Event(self.env)
        Timeout(self.env, delay).callbacks.append(
            lambda _ev: done.succeed(message)
        )
        return done

    def open_connection(
        self, client_node: str, server_node: str, port: int
    ) -> _t.Any:
        """Open a cross-shard connection; returns the client Endpoint.

        The local (client) half exists immediately; a SYN envelope
        creates the server half — and pushes its endpoint into the
        listening queue — at the destination shard one latency quantum
        later.  Data sent meanwhile cannot overtake the SYN: both
        directions share the connection's monotone delivery clock.
        """
        from repro.net.sockets import Endpoint

        self._next_conn += 1
        uid = (self.shard_id, self._next_conn)
        half = RemoteHalfConnection(
            self,
            uid,
            client_node,
            server_node,
            CLIENT,
            peer_shard=self.plan.shard_of(server_node),
        )
        self._halves[uid] = half
        self._enqueue(
            half.peer_shard,
            (uid, SERVER),
            SYN_WIRE_BYTES,
            conn_uid=uid,
            kind="syn",
            client_node=client_node,
            server_node=server_node,
            port=port,
        )
        self.connects_opened += 1
        return Endpoint(half, CLIENT)

    # -- barrier exchange --------------------------------------------------
    def collect(self) -> list[Envelope]:
        """Drain and return the envelopes queued since the last barrier."""
        out = self.outbox
        self.outbox = []
        return out

    def inject(self, envelopes: _t.Sequence[Envelope]) -> None:
        """Schedule deliveries for envelopes addressed to this shard.

        Called between quanta.  Envelopes are scheduled in canonical
        ``sort_key`` order; each lands under a :class:`ShardDelivery`
        event at its stamped delivery time, which the conservative
        protocol guarantees is at or after the shard's clock.
        """
        env = self.env
        now = env.now
        for envelope in sorted(envelopes, key=lambda e: e.sort_key):
            delay = envelope.deliver_time - now
            if delay < 0:  # pragma: no cover - protocol invariant
                raise RuntimeError(
                    f"envelope for t={envelope.deliver_time} arrived in "
                    f"shard {self.shard_id}'s past (now={now}); the "
                    "lookahead barrier protocol was violated"
                )
            event = ShardDelivery(env)
            event.callbacks.append(
                lambda _ev, e=envelope: self._deliver(e)
            )
            env.schedule(event, delay=delay)

    def _deliver(self, envelope: Envelope) -> None:
        """Land one envelope (runs at its delivery time)."""
        if envelope.kind == "syn":
            self._accept_syn(envelope)
            return
        half = self._halves[envelope.conn_uid]
        half._inbox[envelope.to_role].put(envelope.message)
        self.messages_received += 1

    def _accept_syn(self, envelope: Envelope) -> None:
        from repro.net.sockets import Endpoint

        half = RemoteHalfConnection(
            self,
            envelope.conn_uid,
            envelope.client_node,
            envelope.server_node,
            SERVER,
            peer_shard=envelope.src_shard,
        )
        self._halves[envelope.conn_uid] = half
        registry = getattr(self.network, "_listeners", {})
        try:
            queue = registry[(envelope.server_node, envelope.port)]
        except KeyError:
            raise ConnectionRefusedError(
                f"nothing listening at {envelope.server_node}:"
                f"{envelope.port} (cross-shard connect from "
                f"{envelope.client_node})"
            ) from None
        queue._push(Endpoint(half, SERVER))

    # -- statistics --------------------------------------------------------
    def stats_snapshot(self) -> dict[str, int]:
        """Mailbox traffic counters."""
        return {
            "cross_shard_sent": self.messages_sent,
            "cross_shard_received": self.messages_received,
            "cross_shard_connects": self.connects_opened,
        }
