"""Conservative parallel DES: shard one replay across workers.

One large topology is still one Python event loop — the bottleneck the
ROADMAP names before the 100–1000-node scale the paper never reached.
This module splits a cluster's nodes into *shards* (DESIGN.md §17),
runs each shard as its own :class:`~repro.sim.engine.Environment` —
one worker process per shard by default, or all in this process with
the ``inline`` backend — and lets shards advance independently inside
*lookahead quanta*: windows no cross-shard message can cross, because
every fabric charges at least its fixed ``base_latency_s`` per
message (:attr:`repro.net.fabric.Fabric.lookahead_s`).

The barrier protocol per quantum (classic Chandy–Misra–Bryant
conservatism, reduced to a synchronous horizon loop):

1. **Exchange** — envelopes produced in the previous quantum are
   routed to their destination shards and injected in canonical
   ``(deliver_time, src_shard, seq)`` order.
2. **Horizon** — with ``T_min`` the global minimum next-event time
   after injection, every shard runs events strictly before
   ``h = T_min + L`` (``L`` = minimum fabric lookahead).  Any event a
   shard processes has ``t >= T_min``, so a message it emits delivers
   at ``t + latency >= T_min + L = h`` — never inside the quantum
   already executed.  That is the whole correctness argument.

Determinism: per-shard schedules are hashed exactly like serial runs
(BLAKE2b over ``(seq, time, identity)``), per-shard module-global id
counters are swapped via :class:`_CounterScope` so names never depend
on backend or interleaving, and the per-shard digests merge into one
canonical hash — bit-identical between the inline and process
backends.  With ``shards == 1`` the run *is* the serial run and the
hash equals :func:`repro.workload.replay.replay_trace_hash`'s.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import math
import multiprocessing
import typing as _t

from repro.sim.engine import Environment
from repro.sim.mailbox import Envelope, ShardPlan, plan_shards

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.config import ClusterConfig
    from repro.workload.trace import Trace

_INF = float("inf")


class _CounterScope:
    """Per-shard instances of the module-global id counters.

    Message ids, connection ids, and RPC channel ids are module-global
    ``itertools.count`` objects whose values reach trace-visible names
    (``xmit-read-17``, ``rpc-dispatch-...``).  Interleaving shards in
    one process — or forking workers from a parent whose counters have
    advanced — would make those names depend on the backend.  Each
    shard therefore owns fresh counters, swapped in around every
    segment of that shard's execution and swapped back out after, so
    every backend sees each shard count from 1 in isolation.
    """

    _TARGETS = (
        ("repro.net.message", "_msg_ids"),
        ("repro.net.sockets", "_conn_ids"),
        ("repro.svc.rpc", "_channel_ids"),
    )

    def __init__(self) -> None:
        import importlib

        self._modules = [
            (importlib.import_module(mod), attr)
            for mod, attr in self._TARGETS
        ]
        self._counters: list[_t.Any] = [
            itertools.count(1) for _ in self._modules
        ]
        self._saved: list[_t.Any] = []

    def __enter__(self) -> "_CounterScope":
        self._saved = [getattr(m, a) for m, a in self._modules]
        for (module, attr), counter in zip(self._modules, self._counters):
            setattr(module, attr, counter)
        return self

    def __exit__(self, *_exc: object) -> None:
        # Capture the advanced counters so the next segment resumes.
        self._counters = [getattr(m, a) for m, a in self._modules]
        for (module, attr), saved in zip(self._modules, self._saved):
            setattr(module, attr, saved)
        self._saved = []


def shard_placement(
    config: "ClusterConfig", trace: "Trace"
) -> dict[str, str]:
    """The replayer's global process-to-node placement, precomputed.

    Must equal what :class:`~repro.workload.replay.TraceReplayer`
    derives for the whole trace on the whole cluster — each shard sees
    only its local slice of the trace, so the global round-robin over
    *all* sorted process names has to be computed here and passed down
    explicitly.
    """
    nodes = config.compute_node_names()
    return {
        process: nodes[i % len(nodes)]
        for i, process in enumerate(trace.processes)
    }


class _ShardRun:
    """One shard's environment, cluster slice, and replay processes."""

    def __init__(
        self,
        config: "ClusterConfig",
        plan: ShardPlan,
        shard_id: int,
        trace: "Trace",
        preserve_timing: bool,
        hash_enabled: bool,
    ) -> None:
        from repro.cluster.cluster import Cluster
        from repro.workload.replay import TraceReplayer
        from repro.workload.trace import Trace as _Trace

        self.shard_id = shard_id
        self.scope = _CounterScope()
        with self.scope:
            self.env = Environment()
            if hash_enabled:
                self.env.enable_trace_hash()
            self.hash_enabled = hash_enabled
            self.cluster = Cluster(
                config, env=self.env, shard_plan=plan, shard_id=shard_id
            )
            placement = shard_placement(config, trace)
            local = [
                p
                for p in trace.processes
                if plan.shard_of(placement[p]) == shard_id
            ]
            events = [e for e in trace.events if e.process in set(local)]
            self.replayer = TraceReplayer(
                self.cluster,
                _Trace(events=events, meta=dict(trace.meta)),
                placement={p: placement[p] for p in local},
                preserve_timing=preserve_timing,
            )
            procs = self.replayer.spawn()
            self._done_event = (
                self.env.all_of(procs) if procs else None
            )
        self.mailbox = self.cluster.mailbox

    @property
    def lookahead_s(self) -> float:
        return self.cluster.network.fabric.lookahead_s

    @property
    def done(self) -> bool:
        """Every local replay process has finished (or none existed)."""
        return self._done_event is None or self._done_event.triggered

    def exchange(self, envelopes: _t.Sequence[Envelope]) -> tuple[float, bool]:
        """Inject inbound envelopes; report (next event time, done)."""
        if envelopes:
            assert self.mailbox is not None
            with self.scope:
                self.mailbox.inject(envelopes)
        return (self.env.peek(), self.done)

    def run(self, horizon: float, skew_s: float) -> list[Envelope]:
        """Run one quantum to ``horizon``; return produced envelopes."""
        with self.scope:
            self.env.note_barrier(skew_s)
            self.env.run_horizon(horizon)
        return self.mailbox.collect() if self.mailbox is not None else []

    def run_serial(self) -> None:
        """Single-shard mode: run to replay completion, exactly like
        the serial replayer (no horizons, no barriers)."""
        if self._done_event is not None:
            with self.scope:
                self.env.run(until=self._done_event)

    def finish(self) -> dict[str, _t.Any]:
        """Terminal per-shard result (everything picklable)."""
        with self.scope:
            self.cluster.record_network_metrics()
            self.cluster.record_scheduler_metrics()
        metrics = self.cluster.metrics
        return {
            "shard": self.shard_id,
            "digest": (
                self.env.trace_hash() if self.hash_enabled else None
            ),
            "sched": self.env.sched_stats(),
            "counters": dict(metrics.counters),
            "series": {k: list(v) for k, v in metrics.series.items()},
            "completion": dict(self.replayer.completion),
            "mailbox": (
                self.mailbox.stats_snapshot()
                if self.mailbox is not None
                else {}
            ),
        }


# -- backends ---------------------------------------------------------------
class _InlineShard:
    """Same-process shard handle (tests, CI, free-threaded builds)."""

    def __init__(self, *args: _t.Any) -> None:
        self._run = _ShardRun(*args)
        self.lookahead_s = self._run.lookahead_s
        self._state: tuple[float, bool] = (0.0, False)
        self._outbox: list[Envelope] = []

    def post_exchange(self, envelopes: list[Envelope]) -> None:
        self._state = self._run.exchange(envelopes)

    def wait_exchange(self) -> tuple[float, bool]:
        return self._state

    def post_run(self, horizon: float, skew_s: float) -> None:
        self._outbox = self._run.run(horizon, skew_s)

    def wait_run(self) -> list[Envelope]:
        return self._outbox

    def finish(self) -> dict[str, _t.Any]:
        return self._run.finish()

    def close(self) -> None:
        pass


def _shard_worker_main(
    conn: _t.Any,
    config: "ClusterConfig",
    plan: ShardPlan,
    shard_id: int,
    trace_text: str,
    preserve_timing: bool,
    hash_enabled: bool,
) -> None:
    """Worker-process entry point: serve one shard over a Pipe.

    The protocol is lock-step with the coordinator's barrier loop:
    ``("exchange", envelopes)`` → ``("state", next_t, done)``;
    ``("run", horizon, skew)`` → ``("out", envelopes)``;
    ``("finish",)`` → ``("result", dict)`` and exit.  Any exception is
    reported as ``("error", traceback_text)``.
    """
    import traceback

    from repro.workload.trace import loads

    try:
        run = _ShardRun(
            config, plan, shard_id, loads(trace_text),
            preserve_timing, hash_enabled,
        )
        conn.send(("ready", run.lookahead_s))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "exchange":
                conn.send(("state", *run.exchange(msg[1])))
            elif op == "run":
                conn.send(("out", run.run(msg[1], msg[2])))
            elif op == "finish":
                conn.send(("result", run.finish()))
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown shard op {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise


class _ProcessShard:
    """Worker-process shard handle (the default backend)."""

    def __init__(
        self,
        config: "ClusterConfig",
        plan: ShardPlan,
        shard_id: int,
        trace: "Trace",
        preserve_timing: bool,
        hash_enabled: bool,
    ) -> None:
        self.shard_id = shard_id
        ctx = multiprocessing.get_context()
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(
                child, config, plan, shard_id, trace.dumps(),
                preserve_timing, hash_enabled,
            ),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._proc.start()
        child.close()
        kind, payload = self._recv()
        assert kind == "ready"
        self.lookahead_s = float(payload)

    def _recv(self) -> tuple[str, _t.Any]:
        try:
            msg = self._conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {self.shard_id} exited unexpectedly "
                f"(exitcode={self._proc.exitcode})"
            ) from None
        if msg[0] == "error":
            raise RuntimeError(
                f"shard worker {self.shard_id} failed:\n{msg[1]}"
            )
        return msg[0], msg[1] if len(msg) == 2 else msg[1:]

    def post_exchange(self, envelopes: list[Envelope]) -> None:
        self._conn.send(("exchange", envelopes))

    def wait_exchange(self) -> tuple[float, bool]:
        kind, payload = self._recv()
        assert kind == "state"
        return (float(payload[0]), bool(payload[1]))

    def post_run(self, horizon: float, skew_s: float) -> None:
        self._conn.send(("run", horizon, skew_s))

    def wait_run(self) -> list[Envelope]:
        kind, payload = self._recv()
        assert kind == "out"
        return payload

    def finish(self) -> dict[str, _t.Any]:
        self._conn.send(("finish",))
        kind, payload = self._recv()
        assert kind == "result"
        return payload

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=10)


# -- results ----------------------------------------------------------------
def merged_trace_hash(shard_hashes: _t.Sequence[str]) -> str:
    """Canonical merge of per-shard schedule digests.

    With one shard this is that shard's digest unchanged — a
    single-shard "parallel" run hashes identically to the serial
    engine.
    """
    if len(shard_hashes) == 1:
        return shard_hashes[0]
    acc = hashlib.blake2b(digest_size=16)
    for i, digest in enumerate(shard_hashes):
        acc.update(f"{i}:{digest}\n".encode())
    return acc.hexdigest()


@dataclasses.dataclass
class ShardedOutcome:
    """Merged result of one sharded (or single-shard) replay."""

    shards: int
    backend: str
    #: Canonical schedule hash (``None`` unless hashing was enabled).
    trace_hash: str | None
    #: Per-shard schedule digests, shard order.
    shard_hashes: list[str] | None
    #: Slowest process's elapsed replay time (the serial makespan).
    total_time: float
    #: Per-process elapsed replay times, merged across shards.
    completion: dict[str, float]
    #: Metric counters summed across shards.
    counters: dict[str, int]
    #: Metric series concatenated in shard order.
    series: dict[str, list[float]]
    #: Per-shard ``sched_stats()`` snapshots, shard order.
    shard_sched: list[dict[str, int]]
    #: Lookahead barriers the coordinator crossed.
    barriers: int

    @property
    def events_processed(self) -> int:
        """Events processed across all shards."""
        return sum(s["events_processed"] for s in self.shard_sched)

    @property
    def max_shard_events(self) -> int:
        """Largest per-shard event count (the parallel critical path)."""
        return max(s["events_processed"] for s in self.shard_sched)

    def mean_series(self, name: str) -> float:
        """Mean of a merged metric series (NaN when empty, matching
        :meth:`repro.metrics.collector.Metrics.mean`)."""
        values = self.series.get(name, [])
        return sum(values) / len(values) if values else math.nan


# -- driver -----------------------------------------------------------------
def run_sharded_replay(
    config: "ClusterConfig",
    trace: "Trace",
    shards: int | None = None,
    backend: str | None = None,
    preserve_timing: bool = False,
    hash_enabled: bool | None = None,
) -> ShardedOutcome:
    """Replay ``trace`` on ``config``'s cluster across shard workers.

    ``shards``/``backend`` default to the config's resolved values;
    ``hash_enabled`` defaults to whether ``REPRO_TRACE_HASH`` is set
    (matching serial :class:`Environment` construction).  The returned
    outcome carries the merged canonical trace hash, per-process
    completions, and summed metrics — everything the serial
    ``run_instances`` path reports, minus the live ``Cluster`` object
    (each shard's cluster dies with its worker).
    """
    import os

    from repro.sim.engine import TRACE_HASH_ENV_VAR

    n = config.resolved_engine_shards if shards is None else shards
    if n < 1:
        raise ValueError(f"need at least one shard, got {n}")
    backend = config.resolved_shard_backend if backend is None else backend
    if hash_enabled is None:
        hash_enabled = os.environ.get(
            TRACE_HASH_ENV_VAR, ""
        ) not in ("", "0")

    # Freeze every env-var-resolved knob into the config the shards
    # see: a worker must never re-resolve (differently), never recurse
    # into sharding, and never re-load the trace source.
    config = dataclasses.replace(
        config,
        net_model=config.resolved_net_model,
        disk_model=config.resolved_disk_model,
        engine_macro=config.resolved_engine_macro,
        trace_source=None,
        engine_shards=1,
        shard_backend=None,
        mgr_shards=config.resolved_mgr_shards,
    )
    plan = plan_shards(
        config.compute_node_names(), config.iod_node_names(), n
    )

    if n == 1:
        # Degenerate case: one shard is the serial engine, run without
        # horizons so the schedule (and hash) is exactly serial.
        run = _ShardRun(config, plan, 0, trace, preserve_timing, hash_enabled)
        run.run_serial()
        return _assemble([run.finish()], n, "inline", barriers=0)

    if backend == "inline":
        handles: list[_t.Any] = [
            _InlineShard(config, plan, i, trace, preserve_timing, hash_enabled)
            for i in range(n)
        ]
    elif backend == "process":
        handles = [
            _ProcessShard(config, plan, i, trace, preserve_timing, hash_enabled)
            for i in range(n)
        ]
    else:
        raise ValueError(f"unknown shard backend {backend!r}")

    try:
        barriers = _drive(handles)
        results = [h.finish() for h in handles]
    finally:
        for h in handles:
            h.close()
    return _assemble(results, n, backend, barriers=barriers)


def _drive(handles: _t.Sequence[_t.Any]) -> int:
    """The coordinator's barrier loop; returns barriers crossed.

    Every decision is a pure function of deterministic shard state
    (next-event times, done flags, outboxes), so the loop executes the
    same quantum sequence on every backend and every run.
    """
    lookahead = min(h.lookahead_s for h in handles)
    if lookahead <= 0:
        raise ValueError(
            "conservative sharding needs a positive fabric lookahead "
            f"(min base latency), got {lookahead}"
        )
    barriers = 0
    pending: list[Envelope] = []
    while True:
        routed: list[list[Envelope]] = [[] for _ in handles]
        for envelope in pending:
            routed[envelope.dst_shard].append(envelope)
        pending = []
        for handle, envelopes in zip(handles, routed):
            handle.post_exchange(envelopes)
        states = [handle.wait_exchange() for handle in handles]
        if all(done for _next, done in states):
            return barriers
        frontiers = [t for t, _done in states if t != _INF]
        if not frontiers:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                "sharded replay deadlocked: unfinished shards but no "
                "scheduled events or in-flight envelopes"
            )
        t_min = min(frontiers)
        horizon = t_min + lookahead
        skew = max(frontiers) - t_min
        for handle in handles:
            handle.post_run(horizon, skew)
        for handle in handles:
            pending.extend(handle.wait_run())
        barriers += 1


def _assemble(
    results: list[dict[str, _t.Any]],
    shards: int,
    backend: str,
    barriers: int,
) -> ShardedOutcome:
    results = sorted(results, key=lambda r: r["shard"])
    digests = [r["digest"] for r in results]
    hashed = all(d is not None for d in digests)
    counters: dict[str, int] = {}
    series: dict[str, list[float]] = {}
    completion: dict[str, float] = {}
    for result in results:
        for key, value in result["counters"].items():
            counters[key] = counters.get(key, 0) + value
        for key, values in result["series"].items():
            series.setdefault(key, []).extend(values)
        completion.update(result["completion"])
    return ShardedOutcome(
        shards=shards,
        backend=backend,
        trace_hash=merged_trace_hash(digests) if hashed else None,
        shard_hashes=list(digests) if hashed else None,
        total_time=max(completion.values(), default=0.0),
        completion=completion,
        counters=counters,
        series=series,
        shard_sched=[r["sched"] for r in results],
        barriers=barriers,
    )
