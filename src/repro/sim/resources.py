"""Shared-resource primitives: counting resources, locks, FIFO stores.

These model contention points in the simulated cluster: a node's CPU is
a :class:`Resource`, the cache module's per-bucket locks are
:class:`Lock` objects, and every daemon's request queue is a
:class:`Store`.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager so the common pattern reads::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw the claim (before or after it was granted)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: object) -> None:
        self.cancel()


class Resource:
    """A counting resource with FIFO granting.

    ``capacity`` concurrent holders are allowed; further requests queue.
    """

    __slots__ = ("env", "capacity", "_holders", "_waiting")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        return Request(self)

    def acquire_now(self) -> Request | None:
        """Claim one unit synchronously, or ``None`` if it would queue.

        The macro-event fast path (DESIGN.md §14) uses this to grab an
        idle CPU without a request/grant event round-trip.  The
        returned request is born granted and processed — nothing is
        scheduled, so the grant leaves no trace-visible events — and
        is released via :meth:`release` (or ``with``) exactly like an
        ordinary request.  Refused whenever anyone is waiting, so FIFO
        fairness against queued requests is preserved.
        """
        if self._waiting or len(self._holders) >= self.capacity:
            return None
        req = Request.__new__(Request)
        req.env = self.env
        req.callbacks = None  # processed from birth: no event fires
        req._value = self
        req._ok = True
        req.resource = self
        self._holders.add(req)
        return req

    def release(self, request: Request) -> None:
        """Return a unit claimed by ``request``.

        Safe to call for a request that was never granted (it is
        removed from the wait queue) and idempotent for an
        already-released one.
        """
        if request in self._holders:
            self._holders.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass  # already released / never queued: idempotent

    # -- internals ---------------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant_next()

    def _grant_next(self) -> None:
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed(self)


class Lock(Resource):
    """A mutex: a :class:`Resource` of capacity one.

    The cache module uses one per hash bucket plus one each for the
    free and dirty lists, mirroring the paper's fine-grained locking.
    """

    __slots__ = ()

    def __init__(self, env: "Environment") -> None:
        super().__init__(env, capacity=1)

    @property
    def locked(self) -> bool:
        """True while someone holds the mutex."""
        return self.count > 0


class StoreGet(Event):
    """Event granted when an item becomes available."""

    __slots__ = ()


class StorePut(Event):
    """Event granted when the queued item is admitted."""

    __slots__ = ()


class Store:
    """An unbounded-or-bounded FIFO queue of Python objects.

    ``put`` fires immediately while below capacity, otherwise when
    space frees up; ``get`` fires when an item is available.  Used as
    the mailbox of every simulated daemon and kernel thread.
    """

    __slots__ = ("env", "capacity", "_items", "_getters", "_putters")

    def __init__(
        self, env: "Environment", capacity: float = float("inf")
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque[_t.Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[tuple[StorePut, _t.Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (for inspection in tests)."""
        return tuple(self._items)

    def put(self, item: _t.Any) -> StorePut:
        """Queue an item; the event fires when admitted."""
        event = StorePut(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request an item; the event fires with it."""
        event = StoreGet(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit queued puts while there is room.
            if self._putters and len(self._items) < self.capacity:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
                progressed = True
            # Satisfy getters from items.
            if self._getters and self._items:
                get_event = self._getters.popleft()
                get_event.succeed(self._items.popleft())
                progressed = True
