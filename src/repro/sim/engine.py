"""The simulation environment: clock, event queue, and run loop.

The pending-event queue is split by *where in time* an entry lands
(DESIGN.md §14).  Zero-delay pushes — event ``succeed``/``fail``,
resource grants, process starts — are by far the most common scheduling
operation and always carry the current timestamp, so they go to plain
FIFO deques (one per priority) that stay sorted for free: timestamps
are non-decreasing push to push and the sequence counter is monotone.
Future entries (timeouts, timer re-arms) go to a 256-bucket calendar
wheel of ~244 µs buckets covering a 62.5 ms horizon — wide enough for
every latency constant in :class:`~repro.cluster.config.CostModel`,
from the 5 µs block lookup to the 30 ms flush period — with a binary
heap fallback for entries beyond the horizon.  A one-entry buffer
always holds the earliest future entry, so the hot pop only compares
three component heads.

Every entry is ``(time, priority, seq, event)`` and pops follow that
exact tuple order, which keeps the BLAKE2b schedule trace hash
bit-identical to the single-heap implementation this replaced.
"""

from __future__ import annotations

import hashlib
import os
import typing as _t
from bisect import insort
from collections import deque
from heapq import heappop, heappush

from repro.sim.events import AllOf, AnyOf, Event, Timeout, Timer
from repro.sim.process import Process

#: Environment variable: when truthy, every new :class:`Environment`
#: starts with trace hashing enabled (see :meth:`Environment.enable_trace_hash`).
TRACE_HASH_ENV_VAR = "REPRO_TRACE_HASH"

#: Calendar wheel geometry.  4096 buckets per second (2**12, so the
#: time-to-bucket mapping is an exact binary scaling) and 256 slots
#: give ~244 µs buckets over a 62.5 ms horizon.
_BUCKETS_PER_S = 4096.0
_WHEEL_SLOTS = 256
_WHEEL_MASK = _WHEEL_SLOTS - 1

#: Compaction trigger: at least this many suspected-stale timer
#: entries, and stale entries at least half of all queued future
#: entries (mirrors the dynamic-array doubling argument: compaction
#: work is amortised O(1) per cancellation).
_COMPACT_MIN_STALE = 64

_QueueEntry = _t.Tuple[float, int, int, Event]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Owner of simulated time and the pending-event queue.

    Typical use::

        env = Environment()
        env.process(some_generator_function(env))
        env.run(until=10.0)

    Queue entries are ``(time, priority, seq, event)``; ``seq`` is a
    monotone tiebreaker so same-time events process in schedule order,
    which keeps runs deterministic.
    """

    #: Priority for events that must process before normal ones at the
    #: same timestamp (used internally for process-resume urgency).
    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    __slots__ = (
        "_now",
        "_seq",
        "_active_process",
        "_step_hooks",
        "_trace",
        "svc_bus",
        # -- queue components ---------------------------------------
        "_due",
        "_due_urgent",
        "_nf",
        "_cur",
        "_cur_pos",
        "_ring",
        "_ring_count",
        "_cursor_abs",
        "_far",
        # -- scheduler statistics (see sched_stats) -----------------
        "_depth",
        "_depth_hw",
        "_events_processed",
        "_timers_cancelled",
        "_stale_timers",
        "_timer_entries_purged",
        "_timer_compactions",
        "_bursts_coalesced",
        "_burst_events_saved",
        "_barriers_crossed",
        "_cross_shard_msgs",
        "_max_shard_skew_us",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Lazily-created per-environment instrumentation bus for the
        #: service runtime (see :func:`repro.svc.events.get_bus`).
        #: Lives on the environment so every service sharing a clock
        #: also shares one bus, without global registries.
        self.svc_bus: _t.Any = None
        #: Monotone tiebreaker, bumped inline on every push (an int
        #: increment is measurably cheaper than itertools.count on the
        #: hot scheduling path).
        self._seq = 0
        # Ready entries: pushed with the *current* timestamp, so each
        # deque is sorted by construction (non-decreasing clock,
        # monotone seq).  Urgent (priority 0) entries sort before
        # normal ones at the same instant.
        self._due: deque[_QueueEntry] = deque()
        self._due_urgent: deque[_QueueEntry] = deque()
        #: The earliest future entry, buffered out of the wheel/heap so
        #: the pop path compares at most three heads.  ``None`` when no
        #: future entries exist.
        self._nf: _QueueEntry | None = None
        #: Sorted entries of the wheel bucket the cursor last drained,
        #: consumed from ``_cur_pos`` (same bounded-garbage index
        #: pattern as the queued disk model's FIFO).
        self._cur: list[_QueueEntry] = []
        self._cur_pos = 0
        self._ring: list[list[_QueueEntry]] = [
            [] for _ in range(_WHEEL_SLOTS)
        ]
        self._ring_count = 0
        #: Absolute bucket number (time * 4096) of the cursor; buckets
        #: at or before it have been drained into ``_cur``.
        self._cursor_abs = int(self._now * _BUCKETS_PER_S)
        #: Entries beyond the wheel horizon, plus conservative
        #: spill-over (a lagging cursor or a bucket collision may park
        #: a near entry here; ordering never depends on which
        #: component holds an entry).
        self._far: list[_QueueEntry] = []
        self._depth = 0
        self._depth_hw = 0
        self._events_processed = 0
        self._timers_cancelled = 0
        self._stale_timers = 0
        self._timer_entries_purged = 0
        self._timer_compactions = 0
        self._bursts_coalesced = 0
        self._burst_events_saved = 0
        self._barriers_crossed = 0
        self._cross_shard_msgs = 0
        self._max_shard_skew_us = 0
        self._active_process: Process | None = None
        #: Callables invoked (with this env) after every processed
        #: event.  Empty in normal runs; the run loop only takes the
        #: instrumented path when a hook or the trace hash is active,
        #: so the fast loops stay branch-free.
        self._step_hooks: list[_t.Callable[["Environment"], None]] = []
        self._trace: "hashlib._Hash | None" = None
        if os.environ.get(TRACE_HASH_ENV_VAR, "") not in ("", "0"):
            self.enable_trace_hash()

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds, by library convention)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timer(self, on_fire: _t.Callable[[Timer], None]) -> Timer:
        """A reschedulable timer calling ``on_fire(timer)`` when it fires.

        Unlike :meth:`timeout`, the returned :class:`Timer` starts
        idle — call :meth:`~repro.sim.events.Timer.arm` — and can be
        cancelled and re-armed indefinitely without allocating a new
        event per deadline change (see its docstring for the lazy
        cancellation contract).
        """
        return Timer(self, on_fire)

    def process(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Spawn ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """An event firing when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """An event firing when any given event has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Queue ``event`` to be processed ``delay`` from now."""
        self._seq += 1
        entry = (self._now + delay, priority, self._seq, event)
        if delay == 0.0:
            if priority == 1:
                self._due.append(entry)
            elif priority == 0:
                self._due_urgent.append(entry)
            else:
                # Nonstandard priority: the deques' sortedness only
                # holds for the two canonical levels.
                self._push_future(entry)
        else:
            self._push_future(entry)
        d = self._depth + 1
        self._depth = d
        if d > self._depth_hw:
            self._depth_hw = d

    def _push_future(self, entry: _QueueEntry) -> None:
        """Insert a future-time entry (``entry[0] >= now``).

        The one-entry ``_nf`` buffer always holds the minimum; a
        smaller arrival displaces the buffered entry back into the
        wheel/heap.  Which component stores an entry is purely a speed
        decision — pops re-compare heads — so a conservative fall-back
        to the far heap is always safe.

        Depth accounting is the *caller's* job (compaction re-inserts
        entries without re-counting them).
        """
        nf = self._nf
        if nf is None:
            self._nf = entry
            return
        if entry < nf:
            self._nf = entry
            entry = nf
        abs_b = int(entry[0] * _BUCKETS_PER_S)
        cursor = self._cursor_abs
        if abs_b <= cursor:
            # Lands in (or before) the already-drained bucket: insert
            # into the sorted remainder of the current bucket.
            insort(self._cur, entry, self._cur_pos)
        elif abs_b - cursor < _WHEEL_SLOTS:
            self._ring[abs_b & _WHEEL_MASK].append(entry)
            self._ring_count += 1
        else:
            heappush(self._far, entry)

    def _refill_nf(self) -> None:
        """Re-fill the future-min buffer after its entry was consumed."""
        cur = self._cur
        pos = self._cur_pos
        n = len(cur)
        while pos >= n and self._ring_count:
            self._advance_ring()
            cur = self._cur
            pos = self._cur_pos
            n = len(cur)
        far = self._far
        if pos < n:
            head = cur[pos]
            if far and far[0] < head:
                self._nf = heappop(far)
                return
            pos += 1
            if pos > 32 and pos * 2 > n:
                del cur[:pos]
                pos = 0
            self._cur_pos = pos
            self._nf = head
            return
        if far:
            self._nf = heappop(far)
            return
        self._nf = None

    def _advance_ring(self) -> None:
        """Move the cursor to the next non-empty wheel bucket and drain
        it into ``_cur`` (sorted).

        Entries from a *later lap* (same slot, absolute bucket ≥ one
        full wheel revolution ahead) spill to the far heap.  The scan
        may start at the current clock's bucket: every queued future
        entry is at or after the last consumed minimum, so earlier
        buckets cannot hold live entries.
        """
        ring = self._ring
        far = self._far
        b = self._cursor_abs + 1
        j = int(self._now * _BUCKETS_PER_S)
        if j > b:
            b = j
        while self._ring_count:
            bucket = ring[b & _WHEEL_MASK]
            if bucket:
                self._ring_count -= len(bucket)
                live: list[_QueueEntry] | None = None
                for entry in bucket:
                    if int(entry[0] * _BUCKETS_PER_S) == b:
                        if live is None:
                            live = []
                        live.append(entry)
                    else:
                        heappush(far, entry)
                del bucket[:]
                if live is not None:
                    live.sort()
                    self._cur = live
                    self._cur_pos = 0
                    self._cursor_abs = b
                    return
            b += 1
        self._cursor_abs = b
        self._cur = []
        self._cur_pos = 0

    def _peek_entry(self) -> _QueueEntry | None:
        """The next entry in (time, priority, seq) order, not removed."""
        best = self._nf
        due = self._due
        if due:
            head = due[0]
            if best is None or head < best:
                best = head
        urgent = self._due_urgent
        if urgent:
            head = urgent[0]
            if best is None or head < best:
                best = head
        return best

    def _pop_entry(self) -> _QueueEntry | None:
        """Remove and return the next entry, or ``None`` when empty."""
        due = self._due
        urgent = self._due_urgent
        nf = self._nf
        if urgent:
            head = urgent[0]
            src = urgent
            if due and due[0] < head:
                head = due[0]
                src = due
            if nf is None or head < nf:
                src.popleft()
                self._depth -= 1
                return head
        elif due:
            head = due[0]
            if nf is None or head < nf:
                due.popleft()
                self._depth -= 1
                return head
        elif nf is None:
            return None
        # Consume the buffered future minimum.  The common case — no
        # other future entries pending — is inlined; _refill_nf scans
        # the wheel otherwise.
        self._depth -= 1
        if (
            not self._ring_count
            and not self._far
            and self._cur_pos >= len(self._cur)
        ):
            self._nf = None
        else:
            self._refill_nf()
        return nf

    # -- timer garbage compaction ----------------------------------------
    def _note_stale_timer(self) -> None:
        """A queued timer entry no longer matches its armed deadline."""
        self._stale_timers += 1
        if self._stale_timers >= _COMPACT_MIN_STALE:
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        depth_future = (
            (1 if self._nf is not None else 0)
            + len(self._cur)
            - self._cur_pos
            + self._ring_count
            + len(self._far)
        )
        if self._stale_timers * 2 >= depth_future:
            self._compact_futures()

    def _compact_futures(self) -> None:
        """Physically drop stale lazily-cancelled timer entries.

        Without this, a timer re-armed to a new deadline on every
        event (the fluid fabric under churn) leaves one garbage entry
        per re-arm in the queue until its old deadline passes —
        unbounded state for an unbounded re-arm rate.  Dropping an
        entry also removes its deadline from the timer's ``_queued``
        list, preserving :meth:`Timer.arm_at`'s invariant of at most
        one entry per distinct queued deadline.
        """
        survivors: list[_QueueEntry] = []
        dropped = 0
        entries: list[_QueueEntry] = []
        if self._nf is not None:
            entries.append(self._nf)
        entries.extend(self._cur[self._cur_pos :])
        for bucket in self._ring:
            entries.extend(bucket)
            del bucket[:]
        entries.extend(self._far)
        for entry in entries:
            event = entry[3]
            if type(event) is Timer and not (
                event._armed and event._deadline == entry[0]
            ):
                event._queued.remove(entry[0])
                dropped += 1
            else:
                survivors.append(entry)
        self._nf = None
        self._cur = []
        self._cur_pos = 0
        self._ring_count = 0
        self._far = []
        self._depth -= dropped
        self._timer_entries_purged += dropped
        self._timer_compactions += 1
        self._stale_timers = 0
        push = self._push_future
        for entry in survivors:
            push(entry)

    # -- statistics -------------------------------------------------------
    def note_coalesced_burst(self, events_saved: int = 0) -> None:
        """Record one macro-event burst (see DESIGN.md §14)."""
        self._bursts_coalesced += 1
        self._burst_events_saved += events_saved

    def note_barrier(self, skew_s: float = 0.0) -> None:
        """Record one parallel-engine lookahead barrier (DESIGN.md §17).

        ``skew_s`` is the spread between the earliest and latest shard
        frontier at the barrier; the high-water mark is kept in integer
        microseconds so it folds into metrics counters.
        """
        self._barriers_crossed += 1
        skew_us = int(skew_s * 1e6)
        if skew_us > self._max_shard_skew_us:
            self._max_shard_skew_us = skew_us

    def note_cross_shard_msg(self, n: int = 1) -> None:
        """Record ``n`` messages routed through the inter-shard mailbox."""
        self._cross_shard_msgs += n

    def sched_stats(self) -> dict[str, int]:
        """Point-in-time scheduler counters (all monotone except depth)."""
        return {
            "events_processed": self._events_processed,
            "queue_depth": self._depth,
            "queue_depth_hw": self._depth_hw,
            "timers_cancelled": self._timers_cancelled,
            "timer_entries_purged": self._timer_entries_purged,
            "timer_compactions": self._timer_compactions,
            "bursts_coalesced": self._bursts_coalesced,
            "burst_events_saved": self._burst_events_saved,
            "barriers_crossed": self._barriers_crossed,
            "cross_shard_msgs": self._cross_shard_msgs,
            "max_shard_skew_us": self._max_shard_skew_us,
        }

    # -- instrumentation -------------------------------------------------
    def add_step_hook(
        self, hook: _t.Callable[["Environment"], None]
    ) -> None:
        """Run ``hook(env)`` after every processed event.

        Installing any hook switches :meth:`run` from the flattened
        fast loops to the instrumented loop, so hooks cost nothing
        until the first one is registered.  Used by the runtime
        sanitizer (:mod:`repro.analysis.sanitize`).
        """
        self._step_hooks.append(hook)

    def remove_step_hook(
        self, hook: _t.Callable[["Environment"], None]
    ) -> None:
        """Unregister a hook added with :meth:`add_step_hook`."""
        self._step_hooks.remove(hook)

    def enable_trace_hash(self) -> None:
        """Start accumulating a deterministic digest of the schedule.

        Every processed event folds ``(seq, time, event identity)``
        into a BLAKE2b accumulator; two runs of the same seeded
        simulation must produce identical digests, whether they run in
        this process or in a parallel sweep worker.  Event identity is
        the process name for :class:`Process` events and the class name
        otherwise — no ``id()``/``hash()`` values, so the digest is
        stable across interpreter instances.
        """
        if self._trace is None:
            self._trace = hashlib.blake2b(digest_size=16)

    def trace_hash(self) -> str:
        """Hex digest of the schedule so far (requires enable_trace_hash)."""
        if self._trace is None:
            raise RuntimeError(
                "trace hashing is not enabled on this environment; call "
                f"enable_trace_hash() or set {TRACE_HASH_ENV_VAR}=1"
            )
        return self._trace.hexdigest()

    def _dispatch(self, when: float, seq: int, event: Event) -> None:
        """Instrumented single-event dispatch (trace + step hooks)."""
        self._now = when
        if self._trace is not None:
            ident = (
                event.name if isinstance(event, Process)
                else type(event).__name__
            )
            self._trace.update(f"{seq}|{when!r}|{ident}\n".encode())
        event._process()
        for hook in self._step_hooks:
            hook(self)

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        entry = self._peek_entry()
        return entry[0] if entry is not None else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        entry = self._pop_entry()
        if entry is None:
            raise EmptySchedule()
        self._events_processed += 1
        when, _prio, seq, event = entry
        if self._step_hooks or self._trace is not None:
            self._dispatch(when, seq, event)
            return
        self._now = when
        event._process()

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event fires; returns its
          value (raising its exception if it failed).
        """
        stop_at: float | None = None
        stop_event: Event | None = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        if self._step_hooks or self._trace is not None:
            return self._run_instrumented(stop_at, stop_event)

        # The loop variants below are the peek()/step() loop with the
        # per-event method and property calls flattened out — this is
        # the simulator's innermost loop, so every attribute load per
        # event counts.
        # The processed-event count is kept in a loop-local int and
        # flushed once on exit: a local increment is several times
        # cheaper than a per-event attribute read-modify-write.  The
        # two hottest variants additionally inline _pop_entry's
        # due-head and buffered-future cases; the urgent deque (process
        # starts/interrupts, comparatively rare) falls back to the
        # method, which re-derives the full three-way minimum.
        pop = self._pop_entry
        due = self._due
        urgent = self._due_urgent
        refill = self._refill_nf
        n = 0
        if stop_event is not None:
            try:
                # ``callbacks is None`` == Event.processed without the
                # property call; re-check before every event.
                while stop_event.callbacks is not None:
                    if urgent:
                        entry = pop()
                        if entry is None:  # pragma: no cover - defensive
                            raise RuntimeError(
                                "simulation ran out of events before the "
                                f"requested stop event fired: {stop_event!r}"
                            )
                    else:
                        entry = self._nf
                        if due:
                            head = due[0]
                            if entry is None or head < entry:
                                due.popleft()
                                entry = head
                            elif (
                                not self._ring_count
                                and not self._far
                                and self._cur_pos >= len(self._cur)
                            ):
                                self._nf = None
                            else:
                                refill()
                        elif entry is not None:
                            if (
                                not self._ring_count
                                and not self._far
                                and self._cur_pos >= len(self._cur)
                            ):
                                self._nf = None
                            else:
                                refill()
                        else:
                            raise RuntimeError(
                                "simulation ran out of events before the "
                                f"requested stop event fired: {stop_event!r}"
                            )
                        self._depth -= 1
                    n += 1
                    self._now = entry[0]
                    entry[3]._process()
            finally:
                self._events_processed += n
            if stop_event._ok:
                return stop_event._value
            raise _t.cast(BaseException, stop_event._value)
        if stop_at is None:
            try:
                while True:
                    if urgent:
                        entry = pop()
                        if entry is None:  # pragma: no cover - defensive
                            return None
                    else:
                        entry = self._nf
                        if due:
                            head = due[0]
                            if entry is None or head < entry:
                                due.popleft()
                                entry = head
                            elif (
                                not self._ring_count
                                and not self._far
                                and self._cur_pos >= len(self._cur)
                            ):
                                self._nf = None
                            else:
                                refill()
                        elif entry is not None:
                            if (
                                not self._ring_count
                                and not self._far
                                and self._cur_pos >= len(self._cur)
                            ):
                                self._nf = None
                            else:
                                refill()
                        else:
                            return None
                        self._depth -= 1
                    n += 1
                    self._now = entry[0]
                    entry[3]._process()
            finally:
                self._events_processed += n
        peek = self._peek_entry
        try:
            while True:
                entry = peek()
                if entry is None:
                    return None
                if entry[0] > stop_at:
                    self._now = stop_at
                    return None
                pop()
                n += 1
                self._now = entry[0]
                entry[3]._process()
        finally:
            self._events_processed += n

    def _run_instrumented(
        self, stop_at: float | None, stop_event: Event | None
    ) -> _t.Any:
        """The run loop with per-event instrumentation enabled.

        Mirrors the fast-loop variants exactly (same stop semantics,
        same event order) but routes every event through
        :meth:`_dispatch` so the trace hash and step hooks see it.
        """
        pop = self._pop_entry
        if stop_event is not None:
            while stop_event.callbacks is not None:
                entry = pop()
                if entry is None:
                    raise RuntimeError(
                        "simulation ran out of events before the "
                        f"requested stop event fired: {stop_event!r}"
                    )
                self._events_processed += 1
                self._dispatch(entry[0], entry[2], entry[3])
            if stop_event._ok:
                return stop_event._value
            raise _t.cast(BaseException, stop_event._value)
        peek = self._peek_entry
        while True:
            entry = peek()
            if entry is None:
                return None
            if stop_at is not None and entry[0] > stop_at:
                self._now = stop_at
                return None
            pop()
            self._events_processed += 1
            self._dispatch(entry[0], entry[2], entry[3])

    def run_horizon(
        self, horizon: float, stop_event: Event | None = None
    ) -> bool:
        """Process every event strictly *before* ``horizon``.

        The conservative parallel engine's quantum step (DESIGN.md
        §17).  Unlike ``run(until=t)`` — which is inclusive at ``t`` —
        this never touches an event at or past the horizon: a
        cross-shard message sent at the quantum's earliest event time
        ``T_min`` with the minimum lookahead latency ``L`` lands
        exactly at the next horizon ``T_min + L``, so the exclusive
        bound is what guarantees injections never arrive in an
        already-executed quantum.

        On a normal quantum end the clock advances to ``horizon``.
        With ``stop_event`` set the loop additionally stops the moment
        that event has processed — returning ``True`` and leaving the
        clock at the stop event's time, exactly like
        ``run(until=event)`` (single-shard runs use this so their
        schedule stays bit-identical to a serial ``run``).  Returns
        whether ``stop_event`` has processed.
        """
        h = float(horizon)
        if h < self._now:
            raise ValueError(f"horizon={h} is in the past (now={self._now})")
        pop = self._pop_entry
        peek = self._peek_entry
        n = 0
        instrumented = bool(self._step_hooks) or self._trace is not None
        try:
            if stop_event is not None:
                while stop_event.callbacks is not None:
                    entry = peek()
                    if entry is None or entry[0] >= h:
                        self._now = h
                        return False
                    pop()
                    n += 1
                    if instrumented:
                        self._dispatch(entry[0], entry[2], entry[3])
                    else:
                        self._now = entry[0]
                        entry[3]._process()
                return True
            while True:
                entry = peek()
                if entry is None or entry[0] >= h:
                    self._now = h
                    return False
                pop()
                n += 1
                if instrumented:
                    self._dispatch(entry[0], entry[2], entry[3])
                else:
                    self._now = entry[0]
                    entry[3]._process()
        finally:
            self._events_processed += n
