"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import hashlib
import heapq
import os
import typing as _t

from repro.sim.events import AllOf, AnyOf, Event, Timeout, Timer
from repro.sim.process import Process

#: Environment variable: when truthy, every new :class:`Environment`
#: starts with trace hashing enabled (see :meth:`Environment.enable_trace_hash`).
TRACE_HASH_ENV_VAR = "REPRO_TRACE_HASH"


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Owner of simulated time and the pending-event heap.

    Typical use::

        env = Environment()
        env.process(some_generator_function(env))
        env.run(until=10.0)

    Heap entries are ``(time, priority, seq, event)``; ``seq`` is a
    monotone tiebreaker so same-time events process in schedule order,
    which keeps runs deterministic.
    """

    #: Priority for events that must process before normal ones at the
    #: same timestamp (used internally for process-resume urgency).
    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_active_process",
        "_step_hooks",
        "_trace",
        "svc_bus",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Lazily-created per-environment instrumentation bus for the
        #: service runtime (see :func:`repro.svc.events.get_bus`).
        #: Lives on the environment so every service sharing a clock
        #: also shares one bus, without global registries.
        self.svc_bus: _t.Any = None
        self._heap: list[tuple[float, int, int, Event]] = []
        #: Monotone tiebreaker, bumped inline on every push (an int
        #: increment is measurably cheaper than itertools.count on the
        #: hot scheduling path).
        self._seq = 0
        self._active_process: Process | None = None
        #: Callables invoked (with this env) after every processed
        #: event.  Empty in normal runs; the run loop only takes the
        #: instrumented path when a hook or the trace hash is active,
        #: so the fast loops stay branch-free.
        self._step_hooks: list[_t.Callable[["Environment"], None]] = []
        self._trace: "hashlib._Hash | None" = None
        if os.environ.get(TRACE_HASH_ENV_VAR, "") not in ("", "0"):
            self.enable_trace_hash()

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds, by library convention)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timer(self, on_fire: _t.Callable[[Timer], None]) -> Timer:
        """A reschedulable timer calling ``on_fire(timer)`` when it fires.

        Unlike :meth:`timeout`, the returned :class:`Timer` starts
        idle — call :meth:`~repro.sim.events.Timer.arm` — and can be
        cancelled and re-armed indefinitely without allocating a new
        event per deadline change (see its docstring for the lazy
        cancellation contract).
        """
        return Timer(self, on_fire)

    def process(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Spawn ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """An event firing when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """An event firing when any given event has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Queue ``event`` to be processed ``delay`` from now."""
        self._seq += 1
        heapq.heappush(
            self._heap, (self._now + delay, priority, self._seq, event)
        )

    # -- instrumentation -------------------------------------------------
    def add_step_hook(
        self, hook: _t.Callable[["Environment"], None]
    ) -> None:
        """Run ``hook(env)`` after every processed event.

        Installing any hook switches :meth:`run` from the flattened
        fast loops to the instrumented loop, so hooks cost nothing
        until the first one is registered.  Used by the runtime
        sanitizer (:mod:`repro.analysis.sanitize`).
        """
        self._step_hooks.append(hook)

    def remove_step_hook(
        self, hook: _t.Callable[["Environment"], None]
    ) -> None:
        """Unregister a hook added with :meth:`add_step_hook`."""
        self._step_hooks.remove(hook)

    def enable_trace_hash(self) -> None:
        """Start accumulating a deterministic digest of the schedule.

        Every processed event folds ``(seq, time, event identity)``
        into a BLAKE2b accumulator; two runs of the same seeded
        simulation must produce identical digests, whether they run in
        this process or in a parallel sweep worker.  Event identity is
        the process name for :class:`Process` events and the class name
        otherwise — no ``id()``/``hash()`` values, so the digest is
        stable across interpreter instances.
        """
        if self._trace is None:
            self._trace = hashlib.blake2b(digest_size=16)

    def trace_hash(self) -> str:
        """Hex digest of the schedule so far (requires enable_trace_hash)."""
        if self._trace is None:
            raise RuntimeError(
                "trace hashing is not enabled on this environment; call "
                f"enable_trace_hash() or set {TRACE_HASH_ENV_VAR}=1"
            )
        return self._trace.hexdigest()

    def _dispatch(self, when: float, seq: int, event: Event) -> None:
        """Instrumented single-event dispatch (trace + step hooks)."""
        self._now = when
        if self._trace is not None:
            ident = (
                event.name if isinstance(event, Process)
                else type(event).__name__
            )
            self._trace.update(f"{seq}|{when!r}|{ident}\n".encode())
        event._process()
        for hook in self._step_hooks:
            hook(self)

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        try:
            when, _prio, seq, event = heapq.heappop(self._heap)
        except IndexError:
            raise EmptySchedule() from None
        if self._step_hooks or self._trace is not None:
            self._dispatch(when, seq, event)
            return
        self._now = when
        event._process()

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event fires; returns its
          value (raising its exception if it failed).
        """
        stop_at: float | None = None
        stop_event: Event | None = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        if self._step_hooks or self._trace is not None:
            return self._run_instrumented(stop_at, stop_event)

        # The three loop variants below are the peek()/step() loop with
        # the per-event method and property calls flattened out — this
        # is the simulator's innermost loop, so every attribute load
        # per event counts.
        heap = self._heap
        pop = heapq.heappop
        if stop_event is not None:
            # ``callbacks is None`` == Event.processed without the
            # property call; re-check before every event.
            while stop_event.callbacks is not None:
                if not heap:
                    raise RuntimeError(
                        "simulation ran out of events before the "
                        f"requested stop event fired: {stop_event!r}"
                    )
                when, _prio, _seq, event = pop(heap)
                self._now = when
                event._process()
            if stop_event._ok:
                return stop_event._value
            raise _t.cast(BaseException, stop_event._value)
        if stop_at is None:
            while heap:
                when, _prio, _seq, event = pop(heap)
                self._now = when
                event._process()
            return None
        while heap:
            if heap[0][0] > stop_at:
                self._now = stop_at
                return None
            when, _prio, _seq, event = pop(heap)
            self._now = when
            event._process()
        return None

    def _run_instrumented(
        self, stop_at: float | None, stop_event: Event | None
    ) -> _t.Any:
        """The run loop with per-event instrumentation enabled.

        Mirrors the three fast-loop variants exactly (same stop
        semantics, same event order) but routes every event through
        :meth:`_dispatch` so the trace hash and step hooks see it.
        """
        heap = self._heap
        pop = heapq.heappop
        if stop_event is not None:
            while stop_event.callbacks is not None:
                if not heap:
                    raise RuntimeError(
                        "simulation ran out of events before the "
                        f"requested stop event fired: {stop_event!r}"
                    )
                when, _prio, seq, event = pop(heap)
                self._dispatch(when, seq, event)
            if stop_event._ok:
                return stop_event._value
            raise _t.cast(BaseException, stop_event._value)
        while heap:
            if stop_at is not None and heap[0][0] > stop_at:
                self._now = stop_at
                return None
            when, _prio, seq, event = pop(heap)
            self._dispatch(when, seq, event)
        return None
