"""Event primitives for the discrete-event engine.

An :class:`Event` is the unit of synchronisation: processes yield
events to suspend, and resuming happens when the event *fires* (is
scheduled and then processed by the environment's run loop).  Events
carry either a value (on success) or an exception (on failure); a
failed event re-raises its exception inside every process waiting on
it, which is how errors propagate through simulated daemons.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment


class _Pending:
    """Sentinel for 'event has no value yet'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* -> *triggered* (value set, queued on the event
    heap) -> *processed* (callbacks ran).  ``succeed``/``fail`` may be
    called exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it is processed.
        #: Set to ``None`` once processed (late adders run immediately).
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._value: _t.Any = PENDING
        self._ok: bool | None = None

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued (or processed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful when triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: _t.Any = None) -> "Event":
        """Fire the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): zero-delay normal-priority pushes
        # are the single most common scheduling operation; they go
        # straight to the sorted-by-construction due deque.
        env = self.env
        env._seq += 1
        env._due.append((env._now, 1, env._seq, self))
        d = env._depth + 1
        env._depth = d
        if d > env._depth_hw:
            env._depth_hw = d
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception.

        Waiting processes will see ``exception`` raised at their yield
        point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        env._due.append((env._now, 1, env._seq, self))
        d = env._depth + 1
        env._depth = d
        if d > env._depth_hw:
            env._depth_hw = d
        return self

    # -- hookup ----------------------------------------------------------
    def add_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event already ran its callbacks, the callback executes
        immediately; this keeps late waiters (a process yielding an
        already-fired event) correct.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run callbacks.  Called exactly once by the environment."""
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(
        self, env: "Environment", delay: float, value: _t.Any = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + env.schedule: a Timeout is born
        # triggered, so skip the PENDING dance entirely.
        self.env = env
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        env._seq += 1
        if delay == 0.0:
            env._due.append((env._now, 1, env._seq, self))
        elif env._nf is None:
            # Fast path: no other future entry pending, so this one is
            # trivially the minimum (common at low multiprogramming).
            env._nf = (env._now + delay, 1, env._seq, self)
        else:
            env._push_future((env._now + delay, 1, env._seq, self))
        d = env._depth + 1
        env._depth = d
        if d > env._depth_hw:
            env._depth_hw = d

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Timer(Event):
    """A reschedulable timeout: one event object, re-armed many times.

    A :class:`Timeout` is single-shot — every deadline change costs a
    fresh allocation and the abandoned event still fires.  A ``Timer``
    instead supports ``cancel()`` + ``arm()`` on the same object, which
    is what analytic (fluid) models need: the set of active flows
    changes, the predicted completion time moves, and the one pending
    timer follows it.

    Cancellation is *lazy*: the heap entry of a cancelled or superseded
    arm stays queued and is discarded as a no-op when it pops (a heap
    cannot cheaply remove an interior entry).  Correctness relies on
    two facts: an entry only fires when the timer is currently armed
    *for exactly the popped timestamp*, and :meth:`arm` never queues a
    second entry for a deadline that already has one pending — so a
    cancel + re-arm to the same instant reuses the queued entry instead
    of racing it.  Every push goes through the environment's monotone
    sequence counter, so tie-breaking against other same-time events is
    deterministic run over run.

    Firing calls ``on_fire(timer)``; the timer does not use the
    ``succeed``/callback protocol of one-shot events and must not be
    ``yield``-ed by a process (arm a fresh :class:`Timeout` instead).
    After firing the timer is disarmed and may be re-armed immediately,
    including from inside ``on_fire``.

    One observable consequence of lazy cancellation: a stale entry
    keeps the event heap non-empty until its old deadline, so a
    ``run()`` to exhaustion may advance the clock past the last *real*
    event.  Runs that stop on an event or at a time are unaffected.
    """

    __slots__ = ("on_fire", "_deadline", "_armed", "_queued")

    def __init__(
        self,
        env: "Environment",
        on_fire: _t.Callable[["Timer"], None],
    ) -> None:
        super().__init__(env)
        self.on_fire = on_fire
        self._deadline = 0.0
        self._armed = False
        #: Timestamps with a heap entry pending for this timer.  At
        #: most one per distinct deadline; usually zero or one entries
        #: total, so a list beats a set.
        self._queued: list[float] = []

    # -- state inspection --------------------------------------------------
    @property
    def armed(self) -> bool:
        """True while a fire is scheduled."""
        return self._armed

    @property
    def deadline(self) -> float:
        """The pending fire time (meaningless unless :attr:`armed`)."""
        return self._deadline

    # -- arming ------------------------------------------------------------
    def arm(self, delay: float) -> None:
        """(Re-)schedule the fire ``delay`` time units from now.

        Re-arming an armed timer supersedes the previous deadline
        without allocating anything; the stale heap entry (if its
        timestamp differs) is discarded when it pops.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.arm_at(self.env._now + delay)

    def arm_at(self, deadline: float) -> None:
        """(Re-)schedule the fire at absolute time ``deadline``."""
        env = self.env
        if deadline < env._now:
            raise ValueError(
                f"deadline {deadline} is in the past (now={env._now})"
            )
        queued = self._queued
        # Stale-entry accounting: a queued entry is *live* iff it is
        # the armed deadline.  Superseding an armed deadline strands
        # its entry; re-arming onto an already-queued (stale) deadline
        # revives one.  The environment compacts when stale entries
        # dominate (see Environment._compact_futures).
        was_live = self._armed and self._deadline == deadline
        if self._armed and self._deadline != deadline and self._deadline in queued:
            env._note_stale_timer()
        self._armed = True
        self._deadline = deadline
        if deadline in queued:
            if not was_live and env._stale_timers > 0:
                env._stale_timers -= 1
        else:
            queued.append(deadline)
            env._seq += 1
            if deadline == env._now:
                env._due.append((deadline, 1, env._seq, self))
            else:
                env._push_future((deadline, 1, env._seq, self))
            d = env._depth + 1
            env._depth = d
            if d > env._depth_hw:
                env._depth_hw = d

    def cancel(self) -> None:
        """Unschedule the pending fire (no-op when not armed)."""
        if self._armed:
            env = self.env
            env._timers_cancelled += 1
            if self._deadline in self._queued:
                env._note_stale_timer()
        self._armed = False

    # -- engine hook ---------------------------------------------------------
    def _process(self) -> None:
        # One queued entry (the one for the current instant) has
        # popped; it fires only if it is still the armed deadline.
        env = self.env
        self._queued.remove(env._now)
        if self._armed and self._deadline == env._now:
            self._armed = False
            self.on_fire(self)
        elif env._stale_timers > 0:
            # A stale entry drained on its own; it no longer counts
            # toward the compaction trigger.  (Clamped: entries that
            # sat in the due deque survive compactions, which only
            # sweep the future structures, so the counter may already
            # have been reset.)
            env._stale_timers -= 1

    def __repr__(self) -> str:
        state = f"armed t={self._deadline}" if self._armed else "idle"
        return f"<Timer {state} at {id(self):#x}>"


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` is whatever the interrupter passed along (e.g. a reason
    string or a wakeup token for the harvester thread).
    """

    @property
    def cause(self) -> _t.Any:
        """Whatever the interrupter passed along."""
        return self.args[0] if self.args else None


class Condition(Event):
    """Composite event over several sub-events.

    Fires when ``evaluate`` says the set of triggered sub-events is
    sufficient.  The value is a dict mapping each *triggered* sub-event
    to its value, in trigger order.  If any sub-event fails, the
    condition fails with the same exception.
    """

    __slots__ = ("events", "_evaluate", "_n_triggered")

    def __init__(
        self,
        env: "Environment",
        evaluate: _t.Callable[[int, int], bool],
        events: _t.Sequence[Event],
    ) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._evaluate = evaluate
        self._n_triggered = 0
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events must share one environment")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect_values(self) -> dict[Event, _t.Any]:
        # Only *processed* events count as having happened: a Timeout
        # carries its value from construction, so `triggered` alone
        # would leak values of timeouts that have not fired yet.
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._n_triggered += 1
        if not event.ok:
            assert isinstance(event.value, BaseException)
            self.fail(event.value)
        elif self._evaluate(len(self.events), self._n_triggered):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when *all* sub-events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Sequence[Event]) -> None:
        super().__init__(env, lambda total, done: done == total, events)


class AnyOf(Condition):
    """Fires as soon as *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Sequence[Event]) -> None:
        super().__init__(env, lambda total, done: done >= 1, events)
