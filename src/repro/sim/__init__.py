"""Discrete-event simulation engine.

A small, dependency-free engine in the style of SimPy: an
:class:`~repro.sim.engine.Environment` owns the simulation clock and the
event heap, and *processes* are Python generators that ``yield`` events
(timeouts, resource requests, store gets, other processes, ...) to
suspend until those events fire.

Every higher layer of this package (network, disks, PVFS daemons, the
cache module's kernel threads, the micro-benchmark applications) is a
process running on one shared :class:`Environment`, which is what makes
whole-cluster runs deterministic and laptop-fast.
"""

from repro.sim.engine import Environment
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
    Timer,
)
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Lock, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Lock",
    "Process",
    "ProcessKilled",
    "Resource",
    "Store",
    "Timeout",
    "Timer",
]
