"""Structured instrumentation bus for the service runtime.

Every :class:`~repro.svc.service.Service` reports what it is doing in
two complementary forms:

* **Always-on stats** — a :class:`ServiceStats` record per daemon with
  plain integer/float counters (messages handled, per-kind dispatch
  counts, mailbox/inbox queue high-water mark, busy time).  These are
  cheap enough to maintain on the simulator's hot paths and are what
  the per-daemon summary tables render.

* **Opt-in event records** — when at least one subscriber is attached
  to the :class:`InstrumentationBus`, each notable action additionally
  emits a typed :class:`ServiceEvent` (``msg_received``, ``dispatch``,
  ``flush_batch``, ``eviction``, ``invalidation``, lifecycle
  transitions, ...).  With no subscribers the record is never built,
  so the bus costs one attribute probe per emission site.

The bus is per-:class:`~repro.sim.Environment` (one simulated cluster
== one bus), obtained with :func:`get_bus` — there is deliberately no
process-global bus, so parallel sweep workers and co-hosted test
clusters can never observe each other's daemons.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

#: Record kinds emitted by the stock services.  Services may emit
#: additional kinds; this tuple documents the core schema.
CORE_EVENT_KINDS = (
    "start",
    "drain",
    "drained",
    "stop",
    "msg_received",
    "dispatch",
    "flush_batch",
    "eviction",
    "invalidation",
    "rpc_timeout",
)


@dataclasses.dataclass(frozen=True)
class ServiceEvent:
    """One structured instrumentation record."""

    time: float
    service: str
    node: str
    kind: str
    #: Free-form structured payload (counts, peer names, ...).
    detail: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return (
            f"[{self.time:.6f}] {self.service} {self.kind}"
            + (f" {extras}" if extras else "")
        )


class ServiceStats:
    """Always-on per-daemon counters maintained by the runtime."""

    __slots__ = (
        "service",
        "node",
        "state",
        "messages_handled",
        "dispatched",
        "events",
        "queue_high_water",
        "busy_s",
        "dropped",
    )

    def __init__(self, service: str, node: str = "") -> None:
        self.service = service
        self.node = node
        #: Mirror of the owning service's lifecycle state ("new",
        #: "running", "draining", "stopped").
        self.state = "new"
        #: Total messages/work items routed through dispatch().
        self.messages_handled = 0
        #: Per-message-kind dispatch counts.
        self.dispatched: dict[str, int] = {}
        #: Per-kind counts of emitted instrumentation events
        #: (flush_batch, eviction, invalidation, ...).
        self.events: dict[str, int] = {}
        #: Deepest the mailbox / connection inbox ever got.
        self.queue_high_water = 0
        #: Simulated seconds spent with a message in service (from
        #: dispatch to handler return, waits included).
        self.busy_s = 0.0
        #: Work items reported lost by a stop() without drain().
        self.dropped: dict[str, int] = {}

    @property
    def total_dropped(self) -> int:
        """Sum of all dropped-work counts."""
        return sum(self.dropped.values())

    def as_dict(self) -> dict[str, _t.Any]:
        """Plain-dict snapshot (for metrics export and tests)."""
        return {
            "service": self.service,
            "node": self.node,
            "state": self.state,
            "messages_handled": self.messages_handled,
            "dispatched": dict(self.dispatched),
            "events": dict(self.events),
            "queue_high_water": self.queue_high_water,
            "busy_s": self.busy_s,
            "dropped": dict(self.dropped),
        }


class InstrumentationBus:
    """Per-environment fan-out point for service instrumentation."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Subscriber callables, invoked with each ServiceEvent.
        self.subscribers: list[_t.Callable[[ServiceEvent], None]] = []
        #: service name -> its always-on stats record.
        self.stats: dict[str, ServiceStats] = {}

    # -- registration ----------------------------------------------------
    def register(self, service: str, node: str = "") -> ServiceStats:
        """Create (or uniquify and create) the stats slot for a daemon.

        Name collisions get a deterministic ``#N`` suffix so two
        anonymous services on one environment stay distinguishable.
        """
        name, n = service, 1
        while name in self.stats:
            n += 1
            name = f"{service}#{n}"
        record = ServiceStats(name, node)
        self.stats[name] = record
        return record

    # -- subscription ----------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one subscriber wants event records."""
        return bool(self.subscribers)

    def subscribe(
        self, fn: _t.Callable[[ServiceEvent], None]
    ) -> _t.Callable[[], None]:
        """Attach ``fn``; returns a detach callable."""
        self.subscribers.append(fn)

        def detach() -> None:
            self.unsubscribe(fn)

        return detach

    def unsubscribe(self, fn: _t.Callable[[ServiceEvent], None]) -> None:
        """Detach ``fn`` (no-op if already detached)."""
        try:
            self.subscribers.remove(fn)
        except ValueError:
            pass

    # -- emission --------------------------------------------------------
    def emit(
        self,
        service: str,
        kind: str,
        node: str = "",
        **detail: _t.Any,
    ) -> None:
        """Deliver one record to every subscriber.

        Callers should guard with :attr:`active` so the record dict is
        never built on hot paths when nobody is listening.
        """
        record = ServiceEvent(
            time=self.env.now,
            service=service,
            node=node,
            kind=kind,
            detail=detail,
        )
        for fn in self.subscribers:
            fn(record)

    # -- summaries -------------------------------------------------------
    def summary(self) -> list[dict[str, _t.Any]]:
        """Per-daemon stats snapshots, in registration order."""
        return [stats.as_dict() for stats in self.stats.values()]


def get_bus(env: "Environment") -> InstrumentationBus:
    """The environment's bus, created on first use."""
    bus = env.svc_bus
    if bus is None:
        bus = InstrumentationBus(env)
        env.svc_bus = bus
    return bus
