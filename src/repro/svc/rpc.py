"""Request/response correlation over shared connection endpoints.

A private libpvfs connection can match responses FIFO, but the cache
module *shares* one connection per iod across every process on the
node, so responses must be correlated by message id.  :class:`RpcChannel`
runs a dispatcher process that routes each inbound message to the
:class:`Call` whose request it answers.  A call may receive several
responses (the PVFS read protocol answers with an ACK message followed
by a DATA message).

This module is the single home of that logic — the mgr/iod/cache/
global-cache daemons all reuse it through :class:`ChannelPool`, which
adds lazy connection establishment and strict teardown: closing a pool
with ``strict=True`` surfaces any request still awaiting a response as
a :class:`PendingCallLeak` instead of letting the simulation hang on
an answer that will never come.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.analysis.reset import register_reset
from repro.net.message import Message
from repro.net.sockets import Endpoint
from repro.sim import Store

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import Node

_channel_ids = itertools.count(1)


def _reset_channel_ids() -> None:
    """Test-reset hook: channel ids restart at 1 (see RPL004)."""
    global _channel_ids
    _channel_ids = itertools.count(1)


register_reset(_reset_channel_ids)


class PendingCallLeak(RuntimeError):
    """A channel was torn down with requests still awaiting replies."""


class Call:
    """One outstanding request on an :class:`RpcChannel`."""

    __slots__ = ("channel", "msg_id", "kind", "responses_seen", "_responses")

    def __init__(self, channel: "RpcChannel", msg_id: int, kind: str) -> None:
        self.channel = channel
        self.msg_id = msg_id
        self.kind = kind
        #: Responses routed to this call so far (a timeout hook only
        #: fires while this is still zero).
        self.responses_seen = 0
        self._responses: Store = Store(channel.endpoint.env)

    def response(self):
        """Event yielding the next response message for this call."""
        return self._responses.get()

    def close(self) -> None:
        """Deregister; further responses for this id count as orphans."""
        self.channel._calls.pop(self.msg_id, None)

    @property
    def pending(self) -> bool:
        """True while the call is still registered on its channel."""
        return self.channel._calls.get(self.msg_id) is self

    def _arm_timeout(
        self,
        timeout_s: float,
        hook: _t.Callable[["Call"], None] | None,
    ) -> None:
        """Fire ``hook`` if no response arrives within ``timeout_s``.

        Implemented as a bare Timeout callback (no extra process), so
        the only cost is one event — and only for calls that ask for a
        deadline; ordinary calls add nothing to the schedule.
        """
        env = self.channel.endpoint.env

        def on_deadline(_event) -> None:
            if self.responses_seen == 0 and self.pending:
                self.channel.timed_out += 1
                if hook is not None:
                    hook(self)

        env.timeout(timeout_s).add_callback(on_deadline)


class RpcChannel:
    """Correlates responses on a shared connection endpoint."""

    def __init__(self, endpoint: Endpoint, label: str | None = None) -> None:
        self.endpoint = endpoint
        self.env = endpoint.env
        self.label = label if label is not None else f"ch{next(_channel_ids)}"
        self._calls: dict[int, Call] = {}
        #: Responses that matched no registered call (protocol bugs
        #: surface here instead of hanging the simulation).
        self.orphans = 0
        #: Calls whose deadline passed with no response seen.
        self.timed_out = 0
        self._dispatcher = self.env.process(
            self._dispatch_loop(), name=f"rpc-dispatch-{self.label}"
        )

    def call(
        self,
        message: Message,
        timeout_s: float | None = None,
        on_timeout: _t.Callable[[Call], None] | None = None,
    ) -> Call:
        """Send ``message`` and register for its responses.

        The send is fire-and-forget (FIFO-ordered by the connection);
        the returned :class:`Call` collects responses.  With
        ``timeout_s`` set, ``on_timeout`` (if any) runs when the
        deadline passes before the first response.
        """
        call = Call(self, message.msg_id, message.kind)
        self._calls[message.msg_id] = call
        self.endpoint.send(message)
        if timeout_s is not None:
            call._arm_timeout(timeout_s, on_timeout)
        return call

    @property
    def outstanding(self) -> int:
        """Calls still awaiting responses."""
        return len(self._calls)

    def close(self, strict: bool = False) -> None:
        """Kill the dispatcher; with ``strict``, leaks raise.

        Always stops the dispatcher first so even a raising close never
        leaves a live receive loop behind.
        """
        if self._dispatcher.is_alive:
            self._dispatcher.kill()
        if strict and self._calls:
            pending = ", ".join(
                f"#{call.msg_id}({call.kind})"
                for call in self._calls.values()
            )
            self._calls.clear()
            raise PendingCallLeak(
                f"channel {self.label}: unanswered call(s): {pending}"
            )
        self._calls.clear()

    def _dispatch_loop(self) -> _t.Generator:
        while True:
            msg: Message = yield self.endpoint.recv()
            call = self._calls.get(msg.reply_to) if msg.reply_to else None
            if call is None:
                self.orphans += 1
                continue
            call.responses_seen += 1
            yield call._responses.put(msg)


class ChannelPool:
    """Lazily-connected :class:`RpcChannel` per peer node.

    Every daemon that talks RPC (cache module -> iods, flusher -> iod
    flush ports, iod -> cache invalidation listeners, global cache ->
    peer caches) keeps one pool per remote port instead of hand-rolling
    the connect-once-and-cache pattern.
    """

    def __init__(self, node: "Node", port: int, label: str) -> None:
        self.node = node
        self.port = port
        self.label = label
        self._channels: dict[str, RpcChannel] = {}

    def channel(self, peer: str) -> _t.Generator:
        """Process body: the channel to ``peer``, connecting on first
        use."""
        chan = self._channels.get(peer)
        if chan is None:
            endpoint = yield self.node.env.process(
                self.node.sockets.connect(peer, self.port)
            )
            chan = RpcChannel(endpoint, label=f"{self.label}-{peer}")
            self._channels[peer] = chan
        return chan

    @property
    def outstanding(self) -> int:
        """Unanswered calls across every channel in the pool."""
        return sum(chan.outstanding for chan in self._channels.values())

    def close(self, strict: bool = False) -> None:
        """Close every channel; aggregates strict-mode leaks."""
        leaks: list[str] = []
        for chan in self._channels.values():
            try:
                chan.close(strict=strict)
            except PendingCallLeak as leak:
                leaks.append(str(leak))
        self._channels.clear()
        if leaks:
            raise PendingCallLeak("; ".join(leaks))
