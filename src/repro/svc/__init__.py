"""The service runtime for the discrete-event cluster.

One substrate for every simulated daemon: lifecycle
(``start/drain/stop``), typed message dispatch, RPC correlation, and
structured instrumentation.  See DESIGN.md §11.
"""

from repro.svc.events import (
    InstrumentationBus,
    ServiceEvent,
    ServiceStats,
    get_bus,
)
from repro.svc.rpc import Call, ChannelPool, PendingCallLeak, RpcChannel
from repro.svc.service import (
    Mailbox,
    Service,
    ServiceState,
    StopReport,
    handles,
)

__all__ = [
    "Call",
    "ChannelPool",
    "InstrumentationBus",
    "Mailbox",
    "PendingCallLeak",
    "RpcChannel",
    "Service",
    "ServiceEvent",
    "ServiceState",
    "ServiceStats",
    "StopReport",
    "get_bus",
    "handles",
]
