"""The service runtime: lifecycle, typed dispatch, and mailboxes.

Every long-running daemon in the simulated cluster — the PVFS mgr, the
iods, the client-side flusher and harvester kernel threads, the cache
module's invalidation listener, the global-cache peer server, and the
per-disk writeback daemon — subclasses :class:`Service`.  The base
owns the shapes they all share:

* **Typed dispatch** — handler methods declare the message kind they
  serve with the :func:`handles` decorator; :meth:`Service.dispatch`
  routes any object carrying a ``.kind`` attribute (a network
  :class:`~repro.net.message.Message` or a plain work item such as a
  :class:`~repro.disk.writeback.WritebackItem`) to the right handler
  and maintains the per-daemon stats while doing so.

* **Socket serving** — :meth:`Service.serve` opens a port and runs the
  accept/per-connection receive loops, so no daemon hand-rolls its own
  ``while True: recv()`` loop.  Handlers stay per-connection-serial
  (TCP FIFO semantics) while separate connections are served
  concurrently, exactly as the pre-runtime daemons behaved.

* **Lifecycle** — ``start() / drain() / stop()``.  ``drain`` is a
  process body that lets daemons holding dirty work (flusher,
  writeback) push it out before teardown; ``stop`` kills the daemon's
  processes, closes its RPC channel pools, and returns a
  :class:`StopReport` counting any work dropped on the floor.

Determinism contract: every process the runtime spawns gets a name
derived from the service name plus a per-service counter — never
``id()`` — because killed processes enter the schedule trace hash.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.sim import Store
from repro.svc.events import InstrumentationBus, ServiceStats, get_bus
from repro.svc.rpc import ChannelPool

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.node import Node
    from repro.net.sockets import Endpoint, ListenQueue
    from repro.sim import Environment, Process


class ServiceState(enum.Enum):
    """Lifecycle states of a :class:`Service`."""

    NEW = "new"
    RUNNING = "running"
    DRAINING = "draining"
    STOPPED = "stopped"


@dataclasses.dataclass
class StopReport:
    """What :meth:`Service.stop` left behind."""

    service: str
    node: str
    #: category -> count of work items lost because stop() ran without
    #: (or before finishing) drain().  Empty == clean shutdown.
    dropped: dict[str, int]
    #: Reports of child services stopped along with this one.
    children: list["StopReport"] = dataclasses.field(default_factory=list)

    @property
    def total_dropped(self) -> int:
        """Dropped-work count including children."""
        return sum(self.dropped.values()) + sum(
            child.total_dropped for child in self.children
        )

    def flat(self) -> _t.Iterator["StopReport"]:
        """This report and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.flat()


def handles(kind: str) -> _t.Callable:
    """Mark a method as the handler for messages of ``kind``.

    The decorated method must be a generator (a process body) taking
    ``(body, endpoint)``; ``endpoint`` is ``None`` for mailbox items.
    """

    def mark(fn: _t.Callable) -> _t.Callable:
        fn.__svc_handles__ = kind  # type: ignore[attr-defined]
        return fn

    return mark


class Mailbox:
    """A Store-backed work queue that records its high-water depth.

    Items must carry a ``.kind`` attribute so :meth:`Service.dispatch`
    can route them; the queue semantics are exactly those of
    :class:`~repro.sim.Store` (same events, same FIFO order).
    """

    __slots__ = ("_store", "_stats")

    def __init__(self, env: "Environment", stats: ServiceStats) -> None:
        self._store = Store(env)
        self._stats = stats

    def put(self, item: _t.Any):
        """Queue an item; returns the admit event (yield to block)."""
        event = self._store.put(item)
        depth = len(self._store)
        if depth > self._stats.queue_high_water:
            self._stats.queue_high_water = depth
        return event

    def get(self):
        """Event yielding the next queued item."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (for inspection in tests)."""
        return self._store.items


class Service:
    """Base class for every simulated daemon."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        node: "Node | None" = None,
        bus: InstrumentationBus | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.node = node
        self.bus = bus if bus is not None else get_bus(env)
        #: Always-on runtime counters (named ``svc_stats`` because
        #: some daemons expose a domain-level ``stats()`` of their own).
        self.svc_stats = self.bus.register(
            name, node.name if node is not None else ""
        )
        self.state = ServiceState.NEW
        self.mailbox = Mailbox(env, self.svc_stats)
        #: CPU seconds charged on the owning node before every
        #: dispatch (the per-request protocol-processing cost; the mgr
        #: and iods set this from their cost model).
        self.request_cpu_s = 0.0
        #: Long-lived processes to kill at stop() (daemon loops,
        #: accept loops, connection loops — not short-lived helpers).
        self._procs: list["Process"] = []
        #: RPC channel pools to close at stop().
        self._pools: list[ChannelPool] = []
        #: Child services started/stopped with this one.
        self._children: list["Service"] = []
        self._conn_seq = 0
        # Collect @handles methods across the MRO (subclass wins).
        self._handlers: dict[str, _t.Callable] = {}
        for klass in type(self).__mro__:
            for attr, fn in vars(klass).items():
                kind = getattr(fn, "__svc_handles__", None)
                if kind is not None and kind not in self._handlers:
                    self._handlers[kind] = getattr(self, attr)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Bring the daemon up (idempotent)."""
        if self.state is not ServiceState.NEW:
            return
        self.state = ServiceState.RUNNING
        self.svc_stats.state = ServiceState.RUNNING.value
        self._emit("start")
        self._on_start()

    def _on_start(self) -> None:
        """Subclass hook: open ports, spawn loops, start children."""

    def drain(self) -> _t.Generator:
        """Process body: finish outstanding dirty work, then return.

        The service keeps running afterwards (state returns to its
        pre-drain value); call :meth:`stop` for actual teardown.
        """
        if self.state is ServiceState.STOPPED:
            return
        prev = self.state
        self.state = ServiceState.DRAINING
        self.svc_stats.state = ServiceState.DRAINING.value
        self._emit("drain")
        yield from self._drain()
        if self.state is ServiceState.DRAINING:
            self.state = prev
            self.svc_stats.state = prev.value
        self._emit("drained")

    def _drain(self) -> _t.Generator:
        """Subclass hook (process body): default has nothing to flush."""
        return
        yield  # pragma: no cover - makes this a generator function

    def stop(self, strict: bool = False) -> StopReport:
        """Tear the daemon down; returns what was dropped.

        Children stop first, then this service's processes are killed
        and its channel pools closed.  With ``strict=True`` an RPC call
        still awaiting its response raises
        :class:`~repro.svc.rpc.PendingCallLeak` instead of being
        silently discarded.
        """
        if self.state is ServiceState.STOPPED:
            return StopReport(self.svc_stats.service, self.svc_stats.node, {})
        child_reports = [child.stop(strict=strict) for child in self._children]
        dropped = {k: v for k, v in self._dropped().items() if v}
        self.state = ServiceState.STOPPED
        self.svc_stats.state = ServiceState.STOPPED.value
        for key, count in dropped.items():
            self.svc_stats.dropped[key] = (
                self.svc_stats.dropped.get(key, 0) + count
            )
        self._on_stop()
        for proc in self._procs:
            if proc.is_alive:
                proc.kill()
        self._procs.clear()
        self._emit("stop", dropped=sum(dropped.values()))
        report = StopReport(
            self.svc_stats.service, self.svc_stats.node, dropped, child_reports
        )
        for pool in self._pools:
            pool.close(strict=strict)
        return report

    def _on_stop(self) -> None:
        """Subclass hook: release domain resources before procs die."""

    def _dropped(self) -> dict[str, int]:
        """Subclass hook: work that a stop() right now would lose."""
        return {}

    # -- plumbing ----------------------------------------------------------
    def adopt(self, child: "Service") -> "Service":
        """Register ``child`` to be stopped when this service stops."""
        self._children.append(child)
        return child

    def spawn(self, generator: _t.Generator, name: str) -> "Process":
        """Run a long-lived loop owned (and killed at stop) by this
        service.  Short-lived helpers should use ``env.process``."""
        proc = self.env.process(generator, name=name)
        self._procs.append(proc)
        return proc

    def pool(self, port: int, label: str) -> ChannelPool:
        """A lazily-connecting RPC channel pool closed at stop()."""
        if self.node is None:
            raise ValueError(f"{self.name} has no node to connect from")
        channel_pool = ChannelPool(self.node, port, label)
        self._pools.append(channel_pool)
        return channel_pool

    def serve(self, port: int, label: str | None = None) -> None:
        """Listen on ``port`` and dispatch every inbound message."""
        if self.node is None:
            raise ValueError(f"{self.name} has no node to listen on")
        listener = self.node.sockets.listen(port)
        tag = label if label is not None else str(port)
        self.spawn(
            self._accept_loop(listener), name=f"{self.name}-accept-{tag}"
        )

    def _accept_loop(self, listener: "ListenQueue") -> _t.Generator:
        while True:
            endpoint = yield listener.accept()
            self._conn_seq += 1
            self.spawn(
                self._connection_loop(endpoint),
                name=f"{self.name}-conn{self._conn_seq}",
            )

    def _connection_loop(self, endpoint: "Endpoint") -> _t.Generator:
        stats = self.svc_stats
        bus = self.bus
        while True:
            msg = yield endpoint.recv()
            # The one being handled plus those already queued behind it.
            depth = endpoint.pending() + 1
            if depth > stats.queue_high_water:
                stats.queue_high_water = depth
            if bus.subscribers:
                bus.emit(
                    stats.service,
                    "msg_received",
                    node=stats.node,
                    msg=msg.kind,
                )
            yield from self.dispatch(msg, endpoint)

    def dispatch(
        self, body: _t.Any, endpoint: "Endpoint | None" = None
    ) -> _t.Generator:
        """Process body: route ``body`` to its kind's handler."""
        kind = body.kind
        handler = self._handlers.get(kind)
        if handler is None:
            raise ValueError(
                f"{self.name} got unexpected message {kind!r}"
            )
        stats = self.svc_stats
        stats.messages_handled += 1
        stats.dispatched[kind] = stats.dispatched.get(kind, 0) + 1
        if self.bus.subscribers:
            self.bus.emit(
                stats.service, "dispatch", node=stats.node, msg=kind
            )
        if self.request_cpu_s and self.node is not None:
            yield from self.node.compute(self.request_cpu_s)
        started_at = self.env.now
        yield from handler(body, endpoint)
        stats.busy_s += self.env.now - started_at

    def _emit(self, kind: str, **detail: _t.Any) -> None:
        """Record a notable event (always counted, emitted if heard)."""
        stats = self.svc_stats
        stats.events[kind] = stats.events.get(kind, 0) + 1
        if self.bus.subscribers:
            self.bus.emit(stats.service, kind, node=stats.node, **detail)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.state.value}>"
