"""Monitoring of simulated resources and daemons.

Two complementary tools live here:

* :class:`ResourceMonitor` samples arbitrary probes at a fixed
  simulated-time interval (time-series questions: *when* was the wire
  saturated, how full was the cache over time?).

* :class:`DaemonMonitor` subscribes to the service runtime's
  instrumentation bus (:mod:`repro.svc.events`) — no polling — and
  aggregates the typed event records each daemon emits.  The
  per-daemon summary table (messages handled, queue-depth high-water
  mark, busy time) comes from :func:`daemon_table`.

Example::

    monitor = ResourceMonitor(cluster.env, interval_s=0.01)
    module = cluster.cache_modules["node0"]
    monitor.track("dirty_blocks", lambda: module.manager.n_dirty)
    monitor.track("free_blocks", lambda: module.manager.n_free)
    monitor.start()
    ... run the workload ...
    print(monitor.table())

    from repro.svc import get_bus
    print(daemon_table(get_bus(cluster.env)))
"""

from __future__ import annotations

import typing as _t

from repro.sim import Environment, Process

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.svc.events import InstrumentationBus, ServiceEvent


class ResourceMonitor:
    """Samples named probes every ``interval_s`` of simulated time."""

    def __init__(self, env: Environment, interval_s: float = 0.01) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.env = env
        self.interval_s = interval_s
        self._probes: dict[str, _t.Callable[[], float]] = {}
        self.times: list[float] = []
        self.samples: dict[str, list[float]] = {}
        self._proc: Process | None = None
        self._stopped = False

    def track(self, name: str, probe: _t.Callable[[], float]) -> None:
        """Register a probe (may be added before or after start)."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = probe
        # Back-fill so every series has one value per sample tick.
        self.samples[name] = [float("nan")] * len(self.times)

    def start(self) -> None:
        """Spawn the sampling process."""
        if self._proc is not None:
            raise RuntimeError("monitor already started")
        self._proc = self.env.process(self._loop(), name="resource-monitor")

    def stop(self) -> None:
        """Stop sampling (the monitor process exits at its next tick)."""
        self._stopped = True

    def _loop(self) -> _t.Generator:
        while not self._stopped:
            self.times.append(self.env.now)
            for name, probe in self._probes.items():
                self.samples[name].append(float(probe()))
            yield self.env.timeout(self.interval_s)

    # -- analysis -------------------------------------------------------------
    def series(self, name: str) -> list[float]:
        """The sampled values of one probe."""
        return self.samples[name]

    def peak(self, name: str) -> float:
        """Maximum sampled value (NaN-safe)."""
        data = [v for v in self.samples[name] if v == v]  # drop NaN
        return max(data) if data else float("nan")

    def mean(self, name: str) -> float:
        """Mean sampled value (NaN-safe)."""
        data = [v for v in self.samples[name] if v == v]
        return sum(data) / len(data) if data else float("nan")

    def time_above(self, name: str, threshold: float) -> float:
        """Simulated seconds the probe spent above ``threshold``."""
        return self.interval_s * sum(
            1 for v in self.samples[name] if v == v and v > threshold
        )

    def table(self, max_rows: int = 20) -> str:
        """Aligned text table of the sampled series (subsampled)."""
        if not self.times:
            return "(no samples)"
        names = list(self._probes)
        step = max(1, len(self.times) // max_rows)
        header = ["t(s)"] + names
        rows = []
        for i in range(0, len(self.times), step):
            rows.append(
                [f"{self.times[i]:.4f}"]
                + [f"{self.samples[n][i]:g}" for n in names]
            )
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def sparkline(self, name: str) -> str:
        """One-line trend of a series (via the experiments plotter)."""
        from repro.experiments.plots import sparkline

        return sparkline([v for v in self.samples[name] if v == v])


class DaemonMonitor:
    """Event-driven view of the cluster's daemons.

    Subscribes to the instrumentation bus (push, not poll): every
    record a service emits lands here the moment it happens, so the
    monitor sees short-lived spikes that interval sampling would miss.
    """

    def __init__(self, bus: "InstrumentationBus", keep_records: int = 0) -> None:
        self.bus = bus
        #: (service, kind) -> count of observed event records.
        self.event_counts: dict[tuple[str, str], int] = {}
        #: mgr shard -> count of ``metadata_op`` records it served.
        self.metadata_ops: dict[int, int] = {}
        #: mgr shard -> invalidation notices the iods fanned out for
        #: files that shard owns (its slice of coherence traffic).
        self.invalidation_fanout: dict[int, int] = {}
        #: Ring of the most recent records (0 == counting only).
        self.keep_records = keep_records
        self.records: list["ServiceEvent"] = []
        self._detach = bus.subscribe(self._on_event)

    def _on_event(self, record: "ServiceEvent") -> None:
        key = (record.service, record.kind)
        self.event_counts[key] = self.event_counts.get(key, 0) + 1
        # Per-mgr-shard aggregation: the shard number rides in the
        # record detail because always-on ServiceStats only count by
        # kind (mgr.py tags metadata_op, iod.py tags invalidation).
        if record.kind == "metadata_op":
            shard = int(record.detail.get("shard", 0))
            self.metadata_ops[shard] = self.metadata_ops.get(shard, 0) + 1
        elif record.kind == "invalidation" and "mgr_shard" in record.detail:
            # Only the iod's fan-out records carry the owning shard;
            # the cache module's receive-side records do not and must
            # not be double-counted here.
            shard = int(record.detail["mgr_shard"])
            self.invalidation_fanout[shard] = (
                self.invalidation_fanout.get(shard, 0) + 1
            )
        if self.keep_records:
            self.records.append(record)
            if len(self.records) > self.keep_records:
                del self.records[: -self.keep_records]

    def close(self) -> None:
        """Unsubscribe from the bus."""
        self._detach()

    def count(self, service: str, kind: str) -> int:
        """Observed records of ``kind`` from ``service``."""
        return self.event_counts.get((service, kind), 0)

    def table(self) -> str:
        """The per-daemon summary table (see :func:`daemon_table`)."""
        return daemon_table(self.bus)

    def mgr_shard_table(self, duration_s: float | None = None) -> str:
        """Per-metadata-shard summary (one row per mgr shard).

        Columns: shard, node, metadata ops served, ops/sec of
        simulated time (when ``duration_s`` is given), queue-depth
        high-water mark, and the invalidation fan-out charged to the
        files that shard owns.  Shard 0 of a single-shard cluster is
        the plain ``mgr`` daemon.
        """
        shards: dict[int, _t.Any] = {}
        for stats in self.bus.stats.values():
            name = stats.service
            if name == "mgr":
                shards[0] = stats
            elif name.startswith("mgr") and name[3:].isdigit():
                shards[int(name[3:])] = stats
        if not shards:
            return "(no mgr shards registered)"
        header = ["shard", "node", "meta-ops", "ops/s", "q-high", "inval-out"]
        rows = []
        for shard in sorted(shards):
            stats = shards[shard]
            ops = self.metadata_ops.get(shard, 0)
            rate = (
                f"{ops / duration_s:.1f}"
                if duration_s and duration_s > 0
                else "-"
            )
            rows.append(
                [
                    str(shard),
                    stats.node or "-",
                    str(ops),
                    rate,
                    str(stats.queue_high_water),
                    str(self.invalidation_fanout.get(shard, 0)),
                ]
            )
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def daemon_table(bus: "InstrumentationBus") -> str:
    """Render every registered daemon's always-on stats as a table.

    Columns: daemon, node, lifecycle state, messages handled, queue
    depth high-water mark, simulated busy time, and dropped work.
    """
    header = ["daemon", "node", "state", "handled", "q-high", "busy(s)", "dropped"]
    rows = []
    for stats in bus.stats.values():
        rows.append(
            [
                stats.service,
                stats.node or "-",
                stats.state,
                str(stats.messages_handled),
                str(stats.queue_high_water),
                f"{stats.busy_s:.4f}",
                str(stats.total_dropped),
            ]
        )
    if not rows:
        return "(no services registered)"
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows))
        for c in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
