"""Time-series monitoring of simulated resources.

Experiments sometimes need more than end-of-run counters: *when* was
the wire saturated, how full was the cache over time, how long was the
disk queue during the write burst?  A :class:`ResourceMonitor` samples
callables at a fixed simulated-time interval and exposes the series
for analysis or terminal plotting.

Example::

    monitor = ResourceMonitor(cluster.env, interval_s=0.01)
    module = cluster.cache_modules["node0"]
    monitor.track("dirty_blocks", lambda: module.manager.n_dirty)
    monitor.track("free_blocks", lambda: module.manager.n_free)
    monitor.start()
    ... run the workload ...
    print(monitor.table())
"""

from __future__ import annotations

import typing as _t

from repro.sim import Environment, Process


class ResourceMonitor:
    """Samples named probes every ``interval_s`` of simulated time."""

    def __init__(self, env: Environment, interval_s: float = 0.01) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.env = env
        self.interval_s = interval_s
        self._probes: dict[str, _t.Callable[[], float]] = {}
        self.times: list[float] = []
        self.samples: dict[str, list[float]] = {}
        self._proc: Process | None = None
        self._stopped = False

    def track(self, name: str, probe: _t.Callable[[], float]) -> None:
        """Register a probe (may be added before or after start)."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = probe
        # Back-fill so every series has one value per sample tick.
        self.samples[name] = [float("nan")] * len(self.times)

    def start(self) -> None:
        """Spawn the sampling process."""
        if self._proc is not None:
            raise RuntimeError("monitor already started")
        self._proc = self.env.process(self._loop(), name="resource-monitor")

    def stop(self) -> None:
        """Stop sampling (the monitor process exits at its next tick)."""
        self._stopped = True

    def _loop(self) -> _t.Generator:
        while not self._stopped:
            self.times.append(self.env.now)
            for name, probe in self._probes.items():
                self.samples[name].append(float(probe()))
            yield self.env.timeout(self.interval_s)

    # -- analysis -------------------------------------------------------------
    def series(self, name: str) -> list[float]:
        """The sampled values of one probe."""
        return self.samples[name]

    def peak(self, name: str) -> float:
        """Maximum sampled value (NaN-safe)."""
        data = [v for v in self.samples[name] if v == v]  # drop NaN
        return max(data) if data else float("nan")

    def mean(self, name: str) -> float:
        """Mean sampled value (NaN-safe)."""
        data = [v for v in self.samples[name] if v == v]
        return sum(data) / len(data) if data else float("nan")

    def time_above(self, name: str, threshold: float) -> float:
        """Simulated seconds the probe spent above ``threshold``."""
        return self.interval_s * sum(
            1 for v in self.samples[name] if v == v and v > threshold
        )

    def table(self, max_rows: int = 20) -> str:
        """Aligned text table of the sampled series (subsampled)."""
        if not self.times:
            return "(no samples)"
        names = list(self._probes)
        step = max(1, len(self.times) // max_rows)
        header = ["t(s)"] + names
        rows = []
        for i in range(0, len(self.times), step):
            rows.append(
                [f"{self.times[i]:.4f}"]
                + [f"{self.samples[n][i]:g}" for n in names]
            )
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def sparkline(self, name: str) -> str:
        """One-line trend of a series (via the experiments plotter)."""
        from repro.experiments.plots import sparkline

        return sparkline([v for v in self.samples[name] if v == v])
