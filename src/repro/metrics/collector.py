"""A lightweight counters + latency-series collector.

One :class:`Metrics` instance is shared by every component of a
cluster; experiment harnesses read it after ``env.run()`` to build the
rows of each reproduced figure.
"""

from __future__ import annotations

import math
import typing as _t
from collections import defaultdict


class Metrics:
    """Named counters and named series of float samples."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.series: dict[str, list[float]] = defaultdict(list)

    # -- counters ----------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a counter."""
        self.counters[name] += n

    def count(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self.counters.get(name, 0)

    # -- samples -----------------------------------------------------------
    def record(self, name: str, value: float) -> None:
        """Append one sample to a named series."""
        self.series[name].append(float(value))

    def samples(self, name: str) -> list[float]:
        """The raw samples of a series ([] if absent)."""
        return self.series.get(name, [])

    def mean(self, name: str) -> float:
        """Mean of a series (NaN when empty)."""
        data = self.series.get(name)
        if not data:
            return math.nan
        return sum(data) / len(data)

    def total(self, name: str) -> float:
        """Sum of a series (0 when empty)."""
        return sum(self.series.get(name, ()))

    def percentile(self, name: str, q: float) -> float:
        """Nearest-rank percentile, q in [0, 100]."""
        data = sorted(self.series.get(name, ()))
        if not data:
            return math.nan
        if not (0 <= q <= 100):
            raise ValueError(f"percentile out of range: {q}")
        rank = max(1, math.ceil(q / 100.0 * len(data)))
        return data[rank - 1]

    def summary(self, name: str) -> dict[str, float]:
        """n/mean/p50/p95/min/max of a series."""
        data = self.series.get(name, [])
        if not data:
            return {"n": 0, "mean": math.nan, "p50": math.nan,
                    "p95": math.nan, "min": math.nan, "max": math.nan}
        return {
            "n": len(data),
            "mean": self.mean(name),
            "p50": self.percentile(name, 50),
            "p95": self.percentile(name, 95),
            "min": min(data),
            "max": max(data),
        }

    def ratio(self, hit_counter: str, miss_counter: str) -> float:
        """hits / (hits + misses), 0.0 when no events."""
        hits = self.count(hit_counter)
        total = hits + self.count(miss_counter)
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, _t.Any]:
        """Plain-dict dump (counters + per-series summaries)."""
        return {
            "counters": dict(self.counters),
            "series": {k: self.summary(k) for k in self.series},
        }

    # -- service instrumentation -------------------------------------------
    def attach_bus(self, bus: _t.Any) -> _t.Callable[[], None]:
        """Mirror a service-runtime instrumentation bus into counters.

        Every :class:`~repro.svc.events.ServiceEvent` becomes a bump of
        ``svc.<service>.<kind>``.  Returns the detach callable; leave
        detached (the default) for counter-free hot paths.
        """

        def on_event(record: _t.Any) -> None:
            self.inc(f"svc.{record.service}.{record.kind}")

        return bus.subscribe(on_event)
