"""Statistics collection for simulated runs."""

from repro.metrics.collector import Metrics
from repro.metrics.monitor import ResourceMonitor

__all__ = ["Metrics", "ResourceMonitor"]
