"""Statistics collection for simulated runs."""

from repro.metrics.collector import Metrics
from repro.metrics.monitor import DaemonMonitor, ResourceMonitor, daemon_table

__all__ = ["DaemonMonitor", "Metrics", "ResourceMonitor", "daemon_table"]
