"""Cluster assembly: build a whole simulated PVFS cluster in one call.

This is the main entry point of the library::

    from repro.cluster import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(compute_nodes=4, iod_nodes=4))
    client = cluster.client("node0")

    def app(env):
        handle = yield from client.open("/data/file")
        yield from client.write(handle, 0, 4096, b"x" * 4096)
        data = yield from client.read(handle, 0, 4096, want_data=True)

    cluster.env.process(app(cluster.env))
    cluster.env.run()
"""

from __future__ import annotations

import typing as _t

from repro.cache.module import CacheModule
from repro.cluster.config import ClusterConfig
from repro.cluster.node import Node
from repro.metrics import Metrics
from repro.net import FluidFabric, Network, SharedHubFabric, SwitchedFabric
from repro.pvfs.client import PVFSClient
from repro.pvfs.iod import Iod
from repro.pvfs.mgr import MetadataServer
from repro.pvfs.striping import StripeLayout
from repro.sim import Environment
from repro.svc import Service, StopReport


class Cluster:
    """A fully wired cluster: network, nodes, mgr, iods, cache modules."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        env: Environment | None = None,
        shard_plan: "_t.Any | None" = None,
        shard_id: int = 0,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.env = env if env is not None else Environment()
        self.metrics = Metrics()
        #: Parallel-engine partition this cluster is one shard of
        #: (:class:`repro.sim.mailbox.ShardPlan`), or ``None`` for the
        #: ordinary whole-cluster serial build (DESIGN.md §17).
        self.shard_plan = shard_plan
        self.shard_id = shard_id
        sharded = shard_plan is not None and shard_plan.shards > 1
        costs = self.config.costs

        # ``costs.fabric`` picks the topology (hub vs switch);
        # ``net_model`` picks how contention on it is simulated
        # (frame-by-frame vs analytic fluid sharing, DESIGN.md §12).
        self.net_model = self.config.resolved_net_model
        # Resolved once here (not per node) so a mid-run env-var change
        # cannot split a cluster across disk models.
        self.disk_model = self.config.resolved_disk_model
        if self.net_model == "fluid":
            fabric = FluidFabric(
                self.env,
                mode=costs.fabric,
                bandwidth_bps=costs.bandwidth_bps,
                frame_bytes=costs.frame_bytes,
                base_latency_s=costs.net_latency_s,
            )
        else:
            fabric_cls = (
                SharedHubFabric if costs.fabric == "hub" else SwitchedFabric
            )
            fabric = fabric_cls(
                self.env,
                bandwidth_bps=costs.bandwidth_bps,
                frame_bytes=costs.frame_bytes,
                base_latency_s=costs.net_latency_s,
            )
        self.network = Network(self.env, fabric=fabric)

        compute_names = self.config.compute_node_names()
        iod_names = self.config.iod_node_names()
        #: How many hash-partitioned metadata shards run (DESIGN.md
        #: §18).  Resolved once, like the net/disk models.
        self.mgr_shards = self.config.resolved_mgr_shards
        #: Where each mgr shard lives: shard ``k`` on iod node
        #: ``k % n_iods`` (round-robin over the same order
        #: ``plan_shards`` partitions nodes, so a shard's mgr stays
        #: co-located with its parallel-DES partition), on port
        #: ``MGR_PORT + k // n_iods`` so shards beyond the node count
        #: stack onto fresh ports instead of colliding.
        self.mgr_placements: list[tuple[str, int]] = [
            (
                iod_names[k % len(iod_names)],
                self.config.MGR_PORT + k // len(iod_names),
            )
            for k in range(self.mgr_shards)
        ]
        #: Shard 0's node name, derivable without the Node object —
        #: in a sharded build the mgr may live in another shard.
        self.mgr_node_name = iod_names[0]
        self.mailbox = None
        if sharded:
            if self.config.caching and self.config.cache.global_cache:
                raise ValueError(
                    "global_cache needs a shared directory object and "
                    "cannot run under engine shards > 1"
                )
            from repro.sim.mailbox import InterShardMailbox

            self.mailbox = InterShardMailbox(
                self.env,
                shard_id,
                shard_plan,
                self.network,
                latency=fabric.transfer_time_unloaded,
            )
            self.network.shard_router = self.mailbox

        def _local(name: str) -> bool:
            return not sharded or shard_plan.shard_of(name) == shard_id

        self.nodes: dict[str, Node] = {}
        for name in dict.fromkeys([*compute_names, *iod_names]):
            if not _local(name):
                continue
            self.nodes[name] = Node(
                self.env,
                name,
                self.network,
                costs,
                config=self.config,
                with_disk=name in iod_names,
            )

        self.layout = StripeLayout(
            n_iods=len(iod_names), stripe_size=self.config.stripe_size
        )

        #: The metadata shards, indexed by shard number (``None`` for
        #: shards owned by another engine shard).  The default single
        #: shard lives on the first iod node (the usual PVFS
        #: deployment).
        self.mgr_servers: list[MetadataServer | None] = []
        for k, (mgr_node, mgr_port) in enumerate(self.mgr_placements):
            if not _local(mgr_node):
                self.mgr_servers.append(None)
                continue
            server = MetadataServer(
                self.nodes[mgr_node],
                iod_nodes=iod_names,
                stripe_size=self.config.stripe_size,
                metrics=self.metrics,
                port=mgr_port,
                shard_index=k,
                n_shards=self.mgr_shards,
            )
            server.start()
            self.mgr_servers.append(server)
        #: Shard 0, the whole service when ``mgr_shards == 1``.
        self.mgr: MetadataServer | None = self.mgr_servers[0]

        self.iods: list[Iod] = []
        for idx, name in enumerate(iod_names):
            if not _local(name):
                continue
            iod = Iod(
                self.nodes[name],
                layout=self.layout,
                iod_index=idx,
                metrics=self.metrics,
                port=self.config.IOD_PORT,
                flush_port=self.config.FLUSH_PORT,
                invalidate_port=self.INVALIDATE_PORT,
                mgr_shards=self.mgr_shards,
            )
            iod.start()
            self.iods.append(iod)

        self.cache_modules: dict[str, CacheModule] = {}
        # Resolved once, like the net/disk models: the macro-event fast
        # path is a per-cluster decision (DESIGN.md §14).
        self.engine_macro = self.config.resolved_engine_macro
        if self.config.caching:
            gcache_directory = None
            if self.config.cache.global_cache:
                from repro.cache.global_cache import GlobalCacheDirectory

                gcache_directory = GlobalCacheDirectory(compute_names)
            for name in compute_names:
                if not _local(name):
                    continue
                module = CacheModule(
                    self.nodes[name],
                    layout=self.layout,
                    iod_nodes=iod_names,
                    metrics=self.metrics,
                    config=self.config.cache,
                    iod_port=self.config.IOD_PORT,
                    flush_port=self.config.FLUSH_PORT,
                    invalidate_port=self.INVALIDATE_PORT,
                    engine_macro=self.engine_macro,
                )
                if gcache_directory is not None:
                    from repro.cache.global_cache import GlobalCacheClient

                    module.gcache = GlobalCacheClient(module, gcache_directory)
                module.start()
                self.nodes[name].cache_module = module
                self.cache_modules[name] = module

        #: Every top-level service in start order (children — flusher,
        #: harvester, gcache — are reached through their parents).
        self.services: list[Service] = [
            *(s for s in self.mgr_servers if s is not None),
            *self.iods,
            *(
                node.writeback
                for node in (
                    self.nodes[n] for n in iod_names if n in self.nodes
                )
                if node.writeback is not None
            ),
            *self.cache_modules.values(),
        ]

    INVALIDATE_PORT = 7002

    @property
    def compute_nodes(self) -> list[str]:
        """Names of the compute nodes."""
        return self.config.compute_node_names()

    @property
    def iod_nodes(self) -> list[str]:
        """Names of the storage (iod) nodes."""
        return self.config.iod_node_names()

    def node(self, name: str) -> Node:
        """The Node object called ``name``."""
        return self.nodes[name]

    def client(self, node_name: str, use_cache: bool = True) -> PVFSClient:
        """A fresh libpvfs instance (one per application process)."""
        return PVFSClient(
            self.nodes[node_name],
            mgr_node=self.mgr_node_name,
            metrics=self.metrics,
            mgr_port=self.config.MGR_PORT,
            iod_port=self.config.IOD_PORT,
            use_cache=use_cache,
            mgr_placements=self.mgr_placements,
        )

    def run(self, until: _t.Any = None) -> _t.Any:
        """Convenience passthrough to ``env.run``."""
        return self.env.run(until=until)

    def record_network_metrics(self) -> dict[str, _t.Any]:
        """Fold the fabric's contention snapshot into :class:`Metrics`.

        Integer counters become ``net.*`` counters and the wire-busy
        time a ``net.wire_busy_s`` sample, so experiment harnesses (and
        ``RunOutcome.counters``) can report network saturation next to
        cache statistics.  Returns the raw snapshot.
        """
        snap = self.network.stats_snapshot()
        for key, value in snap.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, int):
                self.metrics.inc(f"net.{key}", value)
            else:
                self.metrics.record(f"net.{key}", value)
        return snap

    def record_scheduler_metrics(self) -> dict[str, _t.Any]:
        """Fold the engine's scheduler counters into :class:`Metrics`.

        Mirrors :meth:`record_network_metrics`: every counter from
        ``Environment.sched_stats`` lands as a ``sim.*`` metric so
        experiment harnesses can report event-loop behaviour (events
        processed, timer garbage collected, bursts coalesced, queue
        depth high-water) next to cache statistics.  Returns the raw
        snapshot.
        """
        snap = self.env.sched_stats()
        for key, value in snap.items():
            self.metrics.inc(f"sim.{key}", value)
        return snap

    def drain_caches(self) -> _t.Generator:
        """Process body: flush every node's dirty blocks (tests)."""
        for module in self.cache_modules.values():
            yield from module.flusher.drain()

    def node_services(self, name: str) -> list[Service]:
        """Top-level services hosted on node ``name``."""
        return [
            service
            for service in self.services
            if service.node is not None and service.node.name == name
        ]

    def drain_node(self, name: str) -> _t.Generator:
        """Process body: let node ``name``'s daemons finish dirty work
        (cache flusher + disk writeback) ahead of a teardown.

        Runs in reverse start order so dirty work settles downstream:
        the cache flusher's batches land in the co-hosted iod's
        writeback queue *before* that writeback daemon drains.
        """
        for service in reversed(self.node_services(name)):
            yield from service.drain()

    def stop_node(self, name: str, strict: bool = False) -> list[StopReport]:
        """Tear down node ``name``'s daemons; reports dropped work."""
        return [
            service.stop(strict=strict)
            for service in reversed(self.node_services(name))
        ]

    def stop_services(self, strict: bool = False) -> list[StopReport]:
        """Stop every service in reverse start order."""
        return [
            service.stop(strict=strict) for service in reversed(self.services)
        ]
