"""Configuration and calibration constants.

Everything here is calibrated to the paper's testbed (Section 4.1): a
6-node Linux cluster of 800 MHz Pentium-III boxes with 128 MB RAM,
20 GB Maxtor IDE disks, and 100 Mbps Ethernet, with a 1.2 MB cache of
4 KB blocks at each node.

The constants are grouped into one :class:`CostModel` so that every
timing assumption is visible, overridable, and sweepable in ablation
benchmarks.
"""

from __future__ import annotations

import dataclasses
import os

#: Environment variable selecting the default network model for
#: clusters whose config leaves ``net_model`` unset (``frames`` or
#: ``fluid``).  Lets ``python -m repro.experiments --net-model fluid``
#: reach every cluster built inside parallel sweep workers.
NET_MODEL_ENV_VAR = "REPRO_NET_MODEL"

#: Recognised network models: ``frames`` simulates every frame on the
#: wire (the validated default), ``fluid`` shares bandwidth
#: analytically and only generates events on flow churn.
NET_MODELS = ("frames", "fluid")

#: Environment variable selecting the default disk model for clusters
#: whose config leaves ``disk_model`` unset (``mech`` or ``queued``).
#: Like ``REPRO_NET_MODEL``, this is how ``--disk-model`` reaches
#: clusters built inside parallel sweep workers.
DISK_MODEL_ENV_VAR = "REPRO_DISK_MODEL"

#: Recognised disk models: ``mech`` simulates each request against a
#: capacity-1 spindle Resource (the validated default), ``queued``
#: computes batch service times against an analytic FIFO queue
#: (DESIGN.md §13).
DISK_MODELS = ("mech", "queued")

#: Environment variable enabling the cache module's macro-event fast
#: path for clusters whose config leaves ``engine_macro`` unset
#: (DESIGN.md §14): fully-resident read bursts are serviced under one
#: scheduled event instead of one generator round-trip per block.
#: Any value other than ``""``/``"0"`` enables it; like
#: ``REPRO_NET_MODEL`` this is how ``--engine-macro`` reaches clusters
#: built inside parallel sweep workers.
ENGINE_MACRO_ENV_VAR = "REPRO_ENGINE_MACRO"

#: Environment variable naming a workload trace file (JSONL or CSV
#: dialect) to replay *instead of* the synthetic micro-benchmark, for
#: configs whose ``trace_source`` is unset.  Like ``REPRO_NET_MODEL``,
#: this is how ``--trace`` reaches every ``run_instances`` call,
#: including inside parallel sweep workers — so the fig4-8 drivers can
#: all be pointed at one recorded workload.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable selecting how many shards the conservative
#: parallel engine (DESIGN.md §17) splits a replay across, for configs
#: whose ``engine_shards`` is unset.  ``1`` (or unset) runs the
#: ordinary serial engine; like ``REPRO_NET_MODEL``, this is how
#: ``--engine-shards`` reaches clusters built inside parallel sweep
#: workers.
ENGINE_SHARDS_ENV_VAR = "REPRO_ENGINE_SHARDS"

#: Environment variable selecting the shard execution backend for
#: configs whose ``shard_backend`` is unset: ``process`` (one worker
#: process per shard, the default) or ``inline`` (every shard
#: environment in this process — for tests, CI runners, and
#: free-threaded builds).
SHARD_BACKEND_ENV_VAR = "REPRO_ENGINE_SHARD_BACKEND"

#: Recognised shard execution backends.
SHARD_BACKENDS = ("process", "inline")

#: Environment variable selecting how many hash-partitioned metadata
#: server shards a cluster runs, for configs whose ``mgr_shards`` is
#: unset.  ``1`` (or unset) keeps the paper's single mgr — and the
#: schedule bit-identical to it; like ``REPRO_NET_MODEL``, this is
#: how ``--mgr-shards`` reaches clusters built inside parallel sweep
#: workers.
MGR_SHARDS_ENV_VAR = "REPRO_MGR_SHARDS"


@dataclasses.dataclass
class CostModel:
    """All timing constants of the simulation, in seconds/bytes."""

    # -- network -----------------------------------------------------------
    #: Link (or hub) bandwidth, bits per second.
    bandwidth_bps: float = 100e6
    #: Fragmentation quantum for fair sharing of a channel.
    frame_bytes: int = 65536
    #: Fixed per-message cost: interrupt + protocol stack + propagation.
    net_latency_s: float = 100e-6
    #: "hub" for one shared collision domain, "switch" for per-port links.
    fabric: str = "switch"

    # -- disk ----------------------------------------------------------------
    avg_seek_s: float = 8.5e-3
    half_rotation_s: float = 5.6e-3
    disk_bytes_per_s: float = 20e6

    # -- CPU costs (800 MHz P-III era) --------------------------------------
    #: Entering/leaving the kernel for a socket call.
    syscall_s: float = 10e-6
    #: iod per-request processing (parse, index stripe file, setup).
    iod_request_cpu_s: float = 60e-6
    #: mgr per-request processing (metadata lookup).
    mgr_request_cpu_s: float = 150e-6
    #: Cache-module hash lookup per block (a failed probe on the miss
    #: path costs only this; the paper's < 400 us bound is dominated
    #: by the copy below).
    cache_lookup_s: float = 5e-6
    #: Copying one 4 KB cache block between kernel and user space
    #: (with bookkeeping; calibrated so the full hit path lands at
    #: ~100 us/block, the value implied by the paper's Figure 5a).
    cache_copy_block_s: float = 85e-6
    #: Extra bookkeeping when the module splits / marks pending requests.
    cache_fsm_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.fabric not in ("hub", "switch"):
            raise ValueError(f"unknown fabric {self.fabric!r}")
        if self.bandwidth_bps <= 0 or self.disk_bytes_per_s <= 0:
            raise ValueError("rates must be positive")

    @property
    def cache_block_service_s(self) -> float:
        """Cost of serving one 4 KB block from the cache (lookup+copy).

        The paper reports this envelope as "< 400 microseconds for a
        block of 4K bytes" including module entry; our default is
        ~105 us which respects that bound.
        """
        return self.cache_lookup_s + self.cache_copy_block_s + self.cache_fsm_s


@dataclasses.dataclass
class CacheConfig:
    """Configuration of the per-node kernel cache module (Section 3.2)."""

    #: Total cache size per node; the paper uses 1.2 MB everywhere.
    size_bytes: int = 1_200 * 1024
    #: Cache block size; 4 KB "to make it equal to page size".
    block_size: int = 4096
    #: Flusher wakeup period (dirty blocks older than one period reach
    #: the iods within the next wakeup).
    flush_period_s: float = 30e-3
    #: Harvester trigger: refill when free blocks drop below this
    #: fraction of the cache ...
    low_watermark: float = 0.10
    #: ... and stop once this fraction is free.
    high_watermark: float = 0.25
    #: Replacement policy: "clock" (paper's approximate LRU) or
    #: "exact-lru" (ablation).
    replacement: str = "clock"
    #: Whether a cached block in the middle of a contiguous run splits
    #: the miss request (paper's behaviour).  Ablation: off treats the
    #: whole run as a miss.
    split_on_cached_block: bool = True
    #: Prefer evicting clean blocks over dirty ones (paper's policy).
    prefer_clean_eviction: bool = True
    #: Blocks pinned at once per request; large requests are processed
    #: in segments of this many blocks so concurrent requests cannot
    #: pin the whole cache (None = n_blocks // 8, min 8).
    segment_blocks: int | None = None
    #: Cooperative cluster-wide cache (the paper's "ongoing work"
    #: extension): on a local miss, ask the block's home cache node
    #: before going to the iod.
    global_cache: bool = False
    #: Sequential readahead (the paper's "prefetching" future-work
    #: item): detect per-file sequential runs and prefetch ahead into
    #: the shared cache.
    readahead: bool = False

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block size must be positive")
        if self.size_bytes < self.block_size:
            raise ValueError("cache smaller than one block")
        if not (0 <= self.low_watermark <= self.high_watermark <= 1):
            raise ValueError(
                "need 0 <= low_watermark <= high_watermark <= 1, got "
                f"{self.low_watermark}/{self.high_watermark}"
            )
        if self.replacement not in ("clock", "exact-lru"):
            raise ValueError(f"unknown replacement {self.replacement!r}")

    @property
    def n_blocks(self) -> int:
        """Cache frames per node (size // block size)."""
        return self.size_bytes // self.block_size

    @property
    def low_blocks(self) -> int:
        """Low watermark in blocks."""
        return max(1, int(self.n_blocks * self.low_watermark))

    @property
    def high_blocks(self) -> int:
        """High watermark in blocks."""
        return max(2, int(self.n_blocks * self.high_watermark))

    @property
    def effective_segment_blocks(self) -> int:
        """Blocks pinned at once per request segment."""
        if self.segment_blocks is not None:
            if self.segment_blocks < 1:
                raise ValueError("segment_blocks must be >= 1")
            return self.segment_blocks
        return max(8, self.n_blocks // 8)


@dataclasses.dataclass
class ClusterConfig:
    """Topology + component sizing for one simulated cluster."""

    #: Compute nodes (run application processes + the cache module).
    compute_nodes: int = 4
    #: Nodes whose disk stores stripe data (iod daemons).  In the
    #: paper's 6-node testbed the same boxes serve both roles; set
    #: ``separate_iod_nodes=True`` for a disjoint server pool.
    iod_nodes: int = 4
    separate_iod_nodes: bool = False
    #: PVFS stripe unit (PVFS 1.x default is 64 KB).
    stripe_size: int = 65536
    #: iod OS page cache, in blocks of ``CacheConfig.block_size``
    #: (16384 x 4 KB = 64 MB, about half of a 128 MB node's RAM).
    pagecache_blocks: int = 16384
    #: Whether compute nodes run the kernel cache module.
    caching: bool = True
    #: Network model: ``"frames"`` (frame-by-frame, the validated
    #: default), ``"fluid"`` (analytic max-min bandwidth sharing, see
    #: DESIGN.md §12), or ``None`` to defer to ``REPRO_NET_MODEL``
    #: falling back to frames.  Orthogonal to ``CostModel.fabric``:
    #: that picks the topology (hub/switch), this picks how contention
    #: on it is simulated.
    net_model: str | None = None
    #: Disk model: ``"mech"`` (per-request spindle simulation, the
    #: validated default), ``"queued"`` (analytic FIFO batch service,
    #: see DESIGN.md §13), or ``None`` to defer to
    #: ``REPRO_DISK_MODEL`` falling back to mech.
    disk_model: str | None = None
    #: Macro-event fast path (DESIGN.md §14): ``True``/``False`` to
    #: force, or ``None`` to defer to ``REPRO_ENGINE_MACRO`` falling
    #: back to off.  Off is bit-identical to the validated event-level
    #: schedule; on trades exact event interleaving inside fully-hit
    #: read bursts for speed.
    engine_macro: bool | None = None
    #: Path of a workload trace (JSONL or CSV dialect) to replay
    #: instead of the synthetic benchmark the driver would generate,
    #: or ``None`` to defer to ``REPRO_TRACE`` falling back to the
    #: synthetic workload.  See ``repro.workload.runner``.
    trace_source: str | None = None
    #: Conservative parallel engine shards (DESIGN.md §17): how many
    #: worker environments a trace replay is partitioned across, or
    #: ``None`` to defer to ``REPRO_ENGINE_SHARDS`` falling back to 1
    #: (serial).  Only trace replays honor shards > 1.
    engine_shards: int | None = None
    #: Shard execution backend: ``"process"`` (default), ``"inline"``
    #: (same-process multi-environment mode), or ``None`` to defer to
    #: ``REPRO_ENGINE_SHARD_BACKEND``.
    shard_backend: str | None = None
    #: Hash-partitioned metadata server shards (DESIGN.md §18): how
    #: many mgr daemons the file namespace is split across, or
    #: ``None`` to defer to ``REPRO_MGR_SHARDS`` falling back to 1
    #: (the paper's single mgr, bit-identical schedules).
    mgr_shards: int | None = None
    cache: CacheConfig = dataclasses.field(default_factory=CacheConfig)
    costs: CostModel = dataclasses.field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.compute_nodes < 1 or self.iod_nodes < 1:
            raise ValueError("need at least one compute and one iod node")
        if self.net_model is not None and self.net_model not in NET_MODELS:
            raise ValueError(
                f"unknown net_model {self.net_model!r}; have {NET_MODELS}"
            )
        if self.disk_model is not None and self.disk_model not in DISK_MODELS:
            raise ValueError(
                f"unknown disk_model {self.disk_model!r}; have {DISK_MODELS}"
            )
        if self.engine_shards is not None and self.engine_shards < 1:
            raise ValueError(
                f"engine_shards must be >= 1, got {self.engine_shards}"
            )
        if (
            self.shard_backend is not None
            and self.shard_backend not in SHARD_BACKENDS
        ):
            raise ValueError(
                f"unknown shard_backend {self.shard_backend!r}; "
                f"have {SHARD_BACKENDS}"
            )
        if self.mgr_shards is not None and self.mgr_shards < 1:
            raise ValueError(
                f"mgr_shards must be >= 1, got {self.mgr_shards}"
            )
        if self.stripe_size <= 0:
            raise ValueError("stripe size must be positive")
        if self.stripe_size % self.cache.block_size != 0:
            raise ValueError(
                "stripe size must be a multiple of the cache block size "
                f"({self.stripe_size} % {self.cache.block_size} != 0)"
            )

    @property
    def resolved_net_model(self) -> str:
        """The effective network model for this cluster.

        An explicit ``net_model`` wins; otherwise ``REPRO_NET_MODEL``
        chooses, and with neither set the validated frame model runs.
        """
        model = self.net_model or os.environ.get(NET_MODEL_ENV_VAR) or "frames"
        if model not in NET_MODELS:
            raise ValueError(
                f"{NET_MODEL_ENV_VAR}={model!r} is not one of {NET_MODELS}"
            )
        return model

    @property
    def resolved_disk_model(self) -> str:
        """The effective disk model for this cluster.

        An explicit ``disk_model`` wins; otherwise ``REPRO_DISK_MODEL``
        chooses, and with neither set the validated mechanical model
        runs.
        """
        model = self.disk_model or os.environ.get(DISK_MODEL_ENV_VAR) or "mech"
        if model not in DISK_MODELS:
            raise ValueError(
                f"{DISK_MODEL_ENV_VAR}={model!r} is not one of {DISK_MODELS}"
            )
        return model

    @property
    def resolved_engine_macro(self) -> bool:
        """Whether the macro-event fast path is on for this cluster.

        An explicit ``engine_macro`` wins; otherwise a non-empty,
        non-``"0"`` ``REPRO_ENGINE_MACRO`` enables it, and with
        neither set the validated event-level path runs.
        """
        if self.engine_macro is not None:
            return self.engine_macro
        return os.environ.get(ENGINE_MACRO_ENV_VAR, "") not in ("", "0")

    @property
    def resolved_trace_source(self) -> str | None:
        """The trace file to replay, or ``None`` for synthetic runs.

        An explicit ``trace_source`` wins; otherwise a non-empty
        ``REPRO_TRACE`` chooses, and with neither set drivers generate
        their synthetic workloads as usual.
        """
        return self.trace_source or os.environ.get(TRACE_ENV_VAR) or None

    @property
    def resolved_engine_shards(self) -> int:
        """How many parallel-engine shards this config asks for.

        An explicit ``engine_shards`` wins; otherwise a non-empty
        ``REPRO_ENGINE_SHARDS`` chooses, and with neither set the
        serial engine (one shard) runs.
        """
        if self.engine_shards is not None:
            return self.engine_shards
        raw = os.environ.get(ENGINE_SHARDS_ENV_VAR, "")
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENGINE_SHARDS_ENV_VAR}={raw!r} is not an integer"
            ) from None
        if shards < 1:
            raise ValueError(
                f"{ENGINE_SHARDS_ENV_VAR}={raw!r} must be >= 1"
            )
        return shards

    @property
    def resolved_shard_backend(self) -> str:
        """The effective shard execution backend.

        An explicit ``shard_backend`` wins; otherwise
        ``REPRO_ENGINE_SHARD_BACKEND`` chooses, and with neither set
        each shard runs in its own worker process.
        """
        backend = (
            self.shard_backend
            or os.environ.get(SHARD_BACKEND_ENV_VAR)
            or "process"
        )
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"{SHARD_BACKEND_ENV_VAR}={backend!r} is not one of "
                f"{SHARD_BACKENDS}"
            )
        return backend

    @property
    def resolved_mgr_shards(self) -> int:
        """How many metadata server shards this config asks for.

        An explicit ``mgr_shards`` wins; otherwise a non-empty
        ``REPRO_MGR_SHARDS`` chooses, and with neither set the
        paper's single mgr runs.
        """
        if self.mgr_shards is not None:
            return self.mgr_shards
        raw = os.environ.get(MGR_SHARDS_ENV_VAR, "")
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{MGR_SHARDS_ENV_VAR}={raw!r} is not an integer"
            ) from None
        if shards < 1:
            raise ValueError(f"{MGR_SHARDS_ENV_VAR}={raw!r} must be >= 1")
        return shards

    def compute_node_names(self) -> list[str]:
        """Names of the compute nodes."""
        return [f"node{i}" for i in range(self.compute_nodes)]

    def iod_node_names(self) -> list[str]:
        """Names of the iod nodes (co-located or separate)."""
        if self.separate_iod_nodes:
            base = self.compute_nodes
            return [f"node{base + i}" for i in range(self.iod_nodes)]
        # Co-located (paper's testbed): iods run on node0, node1, ...,
        # overlapping the compute nodes where the ranges intersect.
        return [f"node{i}" for i in range(self.iod_nodes)]

    #: Well-known ports.
    MGR_PORT = 3000
    IOD_PORT = 7000
    FLUSH_PORT = 7001
