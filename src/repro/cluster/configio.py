"""Load/save cluster configurations as JSON.

Experiment setups become shareable artifacts::

    {
      "compute_nodes": 4,
      "iod_nodes": 4,
      "caching": true,
      "cache": {"size_bytes": 1228800, "replacement": "clock"},
      "costs": {"fabric": "switch", "bandwidth_bps": 100e6}
    }

Unknown keys are rejected (catching typos like ``chache``), and values
pass through the dataclasses' own validation.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.cluster.config import CacheConfig, ClusterConfig, CostModel


def _build(cls: type, data: dict, context: str) -> _t.Any:
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(
            f"unknown {context} keys: {sorted(unknown)}; "
            f"valid keys: {sorted(field_names)}"
        )
    return cls(**data)


def config_from_dict(data: dict) -> ClusterConfig:
    """Build a validated :class:`ClusterConfig` from plain data."""
    if not isinstance(data, dict):
        raise ValueError(f"config must be an object, got {type(data).__name__}")
    payload = dict(data)
    cache_data = payload.pop("cache", None)
    costs_data = payload.pop("costs", None)
    kwargs: dict[str, _t.Any] = dict(payload)
    if cache_data is not None:
        kwargs["cache"] = _build(CacheConfig, cache_data, "cache")
    if costs_data is not None:
        kwargs["costs"] = _build(CostModel, costs_data, "costs")
    return _build(ClusterConfig, kwargs, "cluster")


def config_to_dict(config: ClusterConfig) -> dict:
    """Serialise a :class:`ClusterConfig` to plain JSON-able data."""
    return dataclasses.asdict(config)


def load_config(fp: _t.TextIO) -> ClusterConfig:
    """Parse a JSON config file."""
    return config_from_dict(json.load(fp))


def loads_config(text: str) -> ClusterConfig:
    """Parse a JSON config string."""
    return config_from_dict(json.loads(text))


def dump_config(config: ClusterConfig, fp: _t.TextIO) -> None:
    """Write a config as pretty-printed JSON."""
    json.dump(config_to_dict(config), fp, indent=2, sort_keys=True)
    fp.write("\n")


def dumps_config(config: ClusterConfig) -> str:
    """The config as a pretty-printed JSON string."""
    import io

    buf = io.StringIO()
    dump_config(config, buf)
    return buf.getvalue()
