"""A cluster node: CPU, NIC/socket API, and optional storage stack."""

from __future__ import annotations

import typing as _t

from repro.cluster.config import ClusterConfig, CostModel
from repro.disk import DiskModel, LocalFileStore, PageCache, QueuedDiskModel
from repro.disk.writeback import WritebackDaemon
from repro.net import Network, SocketAPI
from repro.sim import Environment, Resource

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cache.module import CacheModule


class Node:
    """One box of the cluster.

    Every node has a CPU (a unit resource — processes time-share it
    FIFO, which is how the multiprogramming cost of Section 4.2.4
    arises) and a socket API.  Nodes hosting an iod additionally carry
    the disk stack; compute nodes may carry the kernel cache module.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        network: Network,
        costs: CostModel,
        config: ClusterConfig | None = None,
        with_disk: bool = False,
    ) -> None:
        self.env = env
        self.name = name
        self.costs = costs
        self.config = config
        self.cpu = Resource(env, capacity=1)
        self.sockets = SocketAPI(network, name)
        self.disk: DiskModel | None = None
        self.filestore: LocalFileStore | None = None
        self.pagecache: PageCache | None = None
        self.writeback: WritebackDaemon | None = None
        #: Installed by the cluster builder when caching is enabled.
        self.cache_module: "CacheModule | None" = None
        if with_disk:
            self.attach_disk()

    def attach_disk(self) -> None:
        """Add the iod storage stack (idempotent)."""
        if self.disk is not None:
            return
        cfg = self.config
        block_size = cfg.cache.block_size if cfg else 4096
        pagecache_blocks = cfg.pagecache_blocks if cfg else 16384
        disk_model = cfg.resolved_disk_model if cfg else "mech"
        disk_cls = QueuedDiskModel if disk_model == "queued" else DiskModel
        self.disk = disk_cls(
            self.env,
            avg_seek_s=self.costs.avg_seek_s,
            half_rotation_s=self.costs.half_rotation_s,
            transfer_bytes_per_s=self.costs.disk_bytes_per_s,
        )
        self.filestore = LocalFileStore(block_size=block_size)
        self.pagecache = PageCache(capacity_blocks=pagecache_blocks)
        self.writeback = WritebackDaemon(self.env, self.disk, node=self)
        self.writeback.start()

    def compute(self, seconds: float) -> _t.Generator:
        """Process body: occupy this node's CPU for ``seconds``.

        Queueing behind other runnable work on the node is how CPU
        time-sharing costs appear.
        """
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds}")
        if seconds == 0:
            return
        with self.cpu.request() as req:
            yield req
            yield self.env.timeout(seconds)

    def __repr__(self) -> str:
        roles = []
        if self.disk is not None:
            roles.append("iod-capable")
        if self.cache_module is not None:
            roles.append("cached")
        return f"<Node {self.name} {' '.join(roles) or 'compute'}>"
