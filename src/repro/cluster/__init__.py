"""Cluster composition: configuration, nodes, and the cluster builder."""

from repro.cluster.config import CacheConfig, ClusterConfig, CostModel
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster

__all__ = ["CacheConfig", "Cluster", "ClusterConfig", "CostModel", "Node"]
