"""Per-figure experiment harnesses (paper Section 4).

Each ``fig*.py`` module regenerates one figure of the paper's
evaluation as structured series data; :mod:`repro.experiments.report`
renders them as text tables.  Run everything with::

    python -m repro.experiments           # full sweeps
    python -m repro.experiments --quick   # reduced sweeps (~1 min)
"""

from repro.experiments.common import ExperimentResult, Series, SeriesPoint
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig67 import run_fig6, run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.overhead import run_overhead

__all__ = [
    "ExperimentResult",
    "Series",
    "SeriesPoint",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_overhead",
]
