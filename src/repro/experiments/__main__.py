from repro.experiments.report import main

raise SystemExit(main())
