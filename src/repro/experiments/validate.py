"""One-shot reproduction validator.

Runs reduced versions of every figure and checks the paper's
qualitative claims programmatically, printing a PASS/FAIL checklist.
This is the library-level counterpart of the benchmark assertions —
usable from scripts and CI without pytest::

    python -c "from repro.experiments.validate import main; main()"
"""

from __future__ import annotations

import dataclasses
import sys
import typing as _t

from repro.cluster.config import ClusterConfig
from repro.experiments.overhead import PAPER_BOUND_S, measure_hit_cost
from repro.workload import MicroBenchParams, run_instances


@dataclasses.dataclass
class Check:
    claim: str
    passed: bool
    detail: str


def _single(d, mode, caching, locality, p=4, iterations=16):
    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=caching)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode=mode,
        locality=locality,
        partition_bytes=4 * 2**20,
        warmup=(mode == "read"),
    )
    out = run_instances(config, [params])
    return (
        out.mean_read_latency if mode == "read" else out.mean_write_latency
    )


def _pair(d, locality, sharing, caching, p=4, compute_nodes=None,
          node_sets=None, total_bytes=2 * 2**20):
    n = compute_nodes if compute_nodes else p
    config = ClusterConfig(compute_nodes=n, iod_nodes=n, caching=caching)
    if node_sets is None:
        node_sets = [config.compute_node_names()[:p]] * 2
    instances = [
        MicroBenchParams(
            nodes=node_sets[i],
            request_size=d,
            iterations=max(1, total_bytes // d),
            mode="read",
            locality=locality,
            sharing=sharing,
            instance=i,
            partition_bytes=4 * 2**20,
            warmup=True,
            seed=42,
        )
        for i in range(2)
    ]
    return run_instances(config, instances).makespan


def run_checks(d: int = 65536) -> list[Check]:
    """Execute the full claim checklist at one request size."""
    checks: list[Check] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(Check(claim=claim, passed=passed, detail=detail))

    # inline overhead claim
    per_block = measure_hit_cost(16).per_block_s
    check(
        "hit service < 400 us per 4 KB block (Sec. 4.2)",
        per_block < PAPER_BOUND_S,
        f"{per_block * 1e6:.0f} us/block",
    )

    # fig 4: l=0
    read_c = _single(d, "read", True, 0.0)
    read_n = _single(d, "read", False, 0.0)
    check(
        "fig4a: l=0 read overhead not significant",
        read_c < read_n * 1.5,
        f"{read_c * 1e3:.2f} vs {read_n * 1e3:.2f} ms",
    )
    write_c = _single(d, "write", True, 0.0)
    write_n = _single(d, "write", False, 0.0)
    check(
        "fig4b: l=0 write-behind wins",
        write_c < write_n,
        f"{write_c * 1e3:.2f} vs {write_n * 1e3:.2f} ms",
    )

    # fig 5: l=1
    hot_read_c = _single(d, "read", True, 1.0)
    check(
        "fig5a: l=1 reads win substantially",
        hot_read_c * 2 < read_n,
        f"{read_n / hot_read_c:.1f}x speedup",
    )
    hot_write_c = _single(d, "write", True, 1.0)
    check(
        "fig5b: l=1 writes win",
        hot_write_c < write_n,
        f"{write_n / hot_write_c:.1f}x speedup",
    )

    # fig 6: two instances, sharing
    base = _pair(d, 0.0, 0.5, False)
    low_s = _pair(d, 0.0, 0.25, True)
    high_s = _pair(d, 0.0, 1.0, True)
    check(
        "fig6a: caching beats PVFS at l=0 with sharing",
        high_s < base,
        f"s=100%: {high_s:.3f}s vs {base:.3f}s",
    )
    check(
        "fig6a: benefit grows with sharing degree",
        high_s < low_s,
        f"s=25%: {low_s:.3f}s -> s=100%: {high_s:.3f}s",
    )
    hot_pair = _pair(d, 1.0, 0.5, True)
    base_hot = _pair(d, 1.0, 0.5, False)
    check(
        "fig6c: locality amplifies the two-instance win",
        hot_pair * 2 < base_hot,
        f"{base_hot / hot_pair:.1f}x at l=1",
    )

    # fig 7 vs 6: scalability with p
    p2_c = _pair(d, 1.0, 0.5, True, p=2)
    p2_n = _pair(d, 1.0, 0.5, False, p=2)
    check(
        "fig7: p=4 benefits exceed p=2",
        (base_hot / hot_pair) > (p2_n / p2_c),
        f"p=4: {base_hot / hot_pair:.1f}x vs p=2: {p2_n / p2_c:.1f}x",
    )

    # fig 8: scheduling crossover
    coloc = [["node0", "node1", "node2"]] * 2
    spread = [["node0", "node1", "node2"], ["node3", "node4", "node5"]]
    cc_l0 = _pair(d, 0.0, 0.25, True, compute_nodes=6, node_sets=coloc)
    sp_l0 = _pair(d, 0.0, 0.25, False, compute_nodes=6, node_sets=spread)
    check(
        "fig8a: parallelism wins at l=0, low sharing",
        sp_l0 < cc_l0,
        f"spread {sp_l0:.3f}s vs coloc {cc_l0:.3f}s",
    )
    cc_l1 = _pair(d, 1.0, 0.5, True, compute_nodes=6, node_sets=coloc)
    sp_l1 = _pair(d, 1.0, 0.5, False, compute_nodes=6, node_sets=spread)
    check(
        "fig8c: caching offsets parallelism loss at l=1",
        cc_l1 < sp_l1,
        f"coloc {cc_l1:.3f}s vs spread {sp_l1:.3f}s",
    )
    nc_coloc = _pair(d, 0.5, 0.5, False, compute_nodes=6, node_sets=coloc)
    nc_spread = _pair(d, 0.5, 0.5, False, compute_nodes=6, node_sets=spread)
    cc_mid = _pair(d, 0.5, 0.5, True, compute_nodes=6, node_sets=coloc)
    check(
        "fig8: un-cached co-location is worst",
        nc_coloc >= max(cc_mid, nc_spread) * 0.98,
        f"nocache-coloc {nc_coloc:.3f}s",
    )
    return checks


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point."""
    checks = run_checks()
    width = max(len(c.claim) for c in checks)
    failures = 0
    for c in checks:
        status = "PASS" if c.passed else "FAIL"
        if not c.passed:
            failures += 1
        print(f"  [{status}] {c.claim.ljust(width)}  ({c.detail})")
    print(
        f"\n{len(checks) - failures}/{len(checks)} claims reproduced"
        + ("" if failures == 0 else f" — {failures} FAILED")
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
