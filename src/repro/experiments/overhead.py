"""The "< 400 microseconds per 4 KB block" micro-measurement.

Paper, Section 4.2: "the cost of the extra actions (cache lookup and
then copying the required block to user space) on a socket call
introduced by our cache implementation over the original PVFS socket
code is less than 400 microseconds for a block of 4K bytes."

We measure exactly that: the service time of a read that is fully
satisfied by the cache, per 4 KB block, after subtracting nothing —
the whole hit path (syscall, lookup, FSM, copy) must fit the bound.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.experiments.common import ExperimentResult


@dataclasses.dataclass
class OverheadMeasurement:
    blocks: int
    hit_time_s: float

    @property
    def per_block_s(self) -> float:
        """Hit service time per block."""
        return self.hit_time_s / self.blocks


PAPER_BOUND_S = 400e-6


def run_overhead(
    block_counts: _t.Sequence[int] = (1, 4, 16, 64),
) -> ExperimentResult:
    """Measure cache hit service time per 4 KB block."""
    result = ExperimentResult(
        experiment_id="overhead",
        title="Cache-hit service cost per 4 KB block",
        x_label="blocks per request",
        y_label="seconds per block",
        notes=f"paper's bound: < {PAPER_BOUND_S * 1e6:.0f} us per 4 KB block",
    )
    series = result.new_series("hit service time / block")
    for n_blocks in block_counts:
        measurement = measure_hit_cost(n_blocks)
        series.add(
            n_blocks,
            measurement.per_block_s,
            total=measurement.hit_time_s,
        )
    return result


def measure_hit_cost(n_blocks: int) -> OverheadMeasurement:
    """Read a range twice; time the second (fully-hit) read."""
    config = ClusterConfig(compute_nodes=1, iod_nodes=1, caching=True)
    cluster = Cluster(config)
    nbytes = n_blocks * config.cache.block_size
    timings: dict[str, float] = {}

    def app(env):
        client = cluster.client("node0")
        handle = yield from client.open("/overhead/probe")
        yield from client.write(handle, 0, nbytes, None)
        yield from client.read(handle, 0, nbytes)  # ensure resident
        start = env.now
        yield from client.read(handle, 0, nbytes)  # the measured hit
        timings["hit"] = env.now - start

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
    return OverheadMeasurement(blocks=n_blocks, hit_time_s=timings["hit"])
