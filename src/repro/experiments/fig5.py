"""Figure 5: caching benefit with perfect locality (best case).

Identical setup to Figure 4 but l = 1.0: after the first touch every
request re-reads cached data.  The paper finds "substantial benefits
from caching ... for both reads and writes ... increas[ing] with
larger request sizes", with the caching overhead only visible at very
small request sizes (8 KB or less).
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.experiments.common import ExperimentResult, sweep_sizes
from repro.experiments.parallel import sweep
from repro.workload import MicroBenchParams, run_instances


def _one_point(
    d: int, mode: str, caching: bool, p: int, iterations: int
) -> float:
    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=caching)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode=mode,
        locality=1.0,
        partition_bytes=4 * 2**20,
        warmup=(mode == "read"),
    )
    out = run_instances(config, [params])
    return (
        out.mean_read_latency if mode == "read" else out.mean_write_latency
    )


def run_fig5(
    quick: bool = False, p: int = 4
) -> tuple[ExperimentResult, ExperimentResult]:
    """Returns (fig5a_reads, fig5b_writes)."""
    sizes = sweep_sizes(quick)
    points = []
    for mode in ("read", "write"):
        for d in sizes:
            iterations = 32 if d <= 262144 else 16
            for caching in (True, False):
                points.append((d, mode, caching, p, iterations))
    values = iter(sweep(points, _one_point))
    results = []
    for panel, mode in (("fig5a", "read"), ("fig5b", "write")):
        result = ExperimentResult(
            experiment_id=panel,
            title=(
                f"Caching benefit, single instance, p={p}, l=1 ({mode}s)"
            ),
            x_label=f"{mode} size (bytes)",
            y_label="time per request (seconds)",
        )
        with_cache = result.new_series("Caching")
        without = result.new_series("No Caching")
        for d in sizes:
            with_cache.add(d, next(values))
            without.add(d, next(values))
        results.append(result)
    results[0].notes = "l=1: requests hit the cache; wins grow with d."
    results[1].notes = "l=1 writes: re-dirtying cached blocks is pure memcpy."
    return results[0], results[1]
