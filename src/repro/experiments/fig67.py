"""Figures 6 and 7: caching benefits across applications.

Two micro-benchmark instances run on the *same* p processors (each
node multiprogrammed with two processes), sharing s% of their data
through a common file.  Total data read per process is held constant,
so the x axis (request size d) trades request count against request
size and all curves trend downward.  Figure 6 uses p = 4, Figure 7
p = 2; panels (a)/(b)/(c) are l = 0 / 0.5 / 1.0.

Paper's findings to reproduce:
* even at l = 0, the caching version beats original PVFS for nearly
  all non-zero sharing percentages (one instance's misses service the
  other's requests);
* benefits grow with the degree of sharing, and with l;
* p = 4 benefits exceed p = 2 (caching scales with parallelism).
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.experiments.common import ExperimentResult, sweep_sizes
from repro.experiments.parallel import sweep
from repro.workload import MicroBenchParams, run_instances

SHARING_LEVELS = (0.25, 0.50, 0.75, 1.00)
LOCALITY_PANELS = ((0.0, "a"), (0.5, "b"), (1.0, "c"))


def _run_pair(
    p: int,
    d: int,
    locality: float,
    sharing: float,
    caching: bool,
    total_bytes: int,
) -> float:
    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=caching)
    nodes = config.compute_node_names()
    iterations = max(1, total_bytes // d)
    instances = [
        MicroBenchParams(
            nodes=nodes,
            request_size=d,
            iterations=iterations,
            mode="read",
            locality=locality,
            sharing=sharing,
            instance=i,
            partition_bytes=4 * 2**20,
            warmup=True,
            seed=42,
        )
        for i in range(2)
    ]
    out = run_instances(config, instances)
    return out.makespan


def _run_figure(
    fig_id: str, p: int, quick: bool, total_bytes: int
) -> list[ExperimentResult]:
    sizes = sweep_sizes(quick)
    points = []
    for locality, _panel in LOCALITY_PANELS:
        for d in sizes:
            for s in SHARING_LEVELS:
                points.append((p, d, locality, s, True, total_bytes))
            # The no-caching version is insensitive to s ("the original
            # version will always issue network requests"): one line.
            points.append((p, d, locality, 0.5, False, total_bytes))
    values = iter(sweep(points, _run_pair))
    results = []
    for locality, panel in LOCALITY_PANELS:
        result = ExperimentResult(
            experiment_id=f"{fig_id}{panel}",
            title=(
                f"Two instances reading, p={p}, l={locality} "
                "(total data per process constant)"
            ),
            x_label="block size (bytes)",
            y_label="total time (seconds)",
        )
        cache_series = {
            s: result.new_series(f"Caching({int(s * 100)}% sharing)")
            for s in SHARING_LEVELS
        }
        no_cache = result.new_series("No Caching")
        for d in sizes:
            for s in SHARING_LEVELS:
                cache_series[s].add(d, next(values))
            no_cache.add(d, next(values))
        results.append(result)
    return results


def run_fig6(
    quick: bool = False, total_bytes: int = 2 * 2**20
) -> list[ExperimentResult]:
    """Figure 6: p = 4.  Returns [fig6a, fig6b, fig6c]."""
    return _run_figure("fig6", 4, quick, total_bytes)


def run_fig7(
    quick: bool = False, total_bytes: int = 2 * 2**20
) -> list[ExperimentResult]:
    """Figure 7: p = 2.  Returns [fig7a, fig7b, fig7c]."""
    return _run_figure("fig7", 2, quick, total_bytes)
