"""Parallel execution of independent experiment sweep points.

Every figure reproduction simulates a whole cluster per data point and
the points are mutually independent, so the sweep is embarrassingly
parallel: :func:`sweep` fans the points out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (one isolated
simulation per worker process — no shared state, so parallel results
are bit-identical to serial ones) and returns results in point order.

Worker count resolution, first match wins:

1. the ``max_workers`` argument, when not ``None``;
2. the ``REPRO_SWEEP_WORKERS`` environment variable;
3. ``os.cpu_count()``.

The count is clamped to the number of points, and a count of one runs
serially in-process — no executor, no forking — which is both the
explicit opt-out (``REPRO_SWEEP_WORKERS=1``) and the automatic
degradation on single-core hosts.
"""

from __future__ import annotations

import concurrent.futures
import os
import typing as _t

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: A sweep point: the positional arguments of one point function call.
Point = tuple


class SweepPointError(RuntimeError):
    """One sweep point failed.

    Carries which point (``index`` into the sweep, plus the ``point``
    arguments themselves) so a long sweep's failure is attributable;
    the worker's original exception is chained as ``__cause__``.
    """

    def __init__(self, index: int, point: Point) -> None:
        super().__init__(
            f"sweep point #{index} {point!r} raised; see __cause__"
        )
        self.index = index
        self.point = point


def resolve_workers(
    max_workers: int | None = None, n_points: int | None = None
) -> int:
    """The effective worker count for a sweep (always >= 1)."""
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR}={env!r} is not an integer"
                ) from None
        else:
            max_workers = os.cpu_count() or 1
    workers = max(1, int(max_workers))
    if n_points is not None:
        workers = min(workers, max(1, n_points))
    return workers


def sweep(
    points: _t.Sequence[Point],
    fn: _t.Callable[..., _t.Any],
    max_workers: int | None = None,
) -> list[_t.Any]:
    """Run ``fn(*point)`` for every point; results in point order.

    ``fn`` must be a module-level callable and every point must be
    picklable (ProcessPoolExecutor requirements).  Results are ordered
    by point index regardless of completion order, so parallel and
    serial sweeps are interchangeable.  If a point raises, the sweep
    stops, outstanding points are cancelled, and a
    :class:`SweepPointError` identifying the failing point is raised
    from the worker's exception.
    """
    pts = [tuple(p) for p in points]
    if not pts:
        return []
    workers = resolve_workers(max_workers, len(pts))
    if workers == 1:
        results = []
        for index, point in enumerate(pts):
            try:
                results.append(fn(*point))
            except Exception as exc:
                raise SweepPointError(index, point) from exc
        return results
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers
    ) as pool:
        futures = [pool.submit(fn, *point) for point in pts]
        results = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except concurrent.futures.CancelledError:  # pragma: no cover
                raise
            except Exception as exc:
                for pending in futures:
                    pending.cancel()
                raise SweepPointError(index, pts[index]) from exc
    return results
