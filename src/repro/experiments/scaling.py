"""Metadata scaling: find the open-loop knee and move it with shards.

The ROADMAP's scale question, measured: an open-loop, churn-heavy
workload (every request opens a fresh file — the pure metadata-stress
case) is offered at a rate well past the single mgr's capacity, on
clusters of p ∈ {64, 128, 256} nodes.  The single mgr saturates at
~1/``mgr_request_cpu_s`` ≈ 6.6k opens/s regardless of p — the 2002
testbed's serialization point — and hash-partitioning the namespace
across ``mgr_shards`` moves the knee right roughly linearly until the
offered rate is met.

Two measurements:

* :func:`run_scaling` — the p × mgr_shards grid at one deeply
  saturating offered rate; completed ops/s *is* the knee position
  (offered load is open loop, so completed throughput pins at
  capacity instead of degrading gracefully).
* :func:`run_knee_curve` — a rate sweep at fixed p for 1 vs. 4
  shards: completed tracks offered until the knee, then goes flat.
  This is the curve ``examples/openloop_scaling.py`` renders.

Every point is an independent simulation, so both drivers fan out
over :func:`repro.experiments.parallel.sweep`.
"""

from __future__ import annotations

import typing as _t

from repro.experiments import parallel
from repro.experiments.common import ExperimentResult

#: Node counts of the grid (quick keeps the cheapest).
FULL_NODES = (64, 128, 256)
QUICK_NODES = (64,)

#: Metadata shard counts of the grid.
FULL_SHARDS = (1, 2, 4, 8)
QUICK_SHARDS = (1, 4)

#: Offered rate for the saturation grid: ~2.4x the single mgr's
#: ~6.6k opens/s capacity, so one shard is deep in saturation while
#: four shards can still meet the schedule.
SATURATING_RATE = 16000.0

#: Arrival-schedule length.  Short on purpose: an open-loop run's
#: cost scales with offered ops, and saturation shows within a few
#: hundred arrivals per shard.
DURATION_S = 0.15

DEFAULT_SEED = 11


def knee_params(
    p: int,
    rate_ops_s: float = SATURATING_RATE,
    duration_s: float = DURATION_S,
    seed: int = DEFAULT_SEED,
) -> "_t.Any":
    """The metadata-stress open-loop workload for a p-node cluster.

    ``churn=1`` makes every request open a fresh file (the mgr is on
    every op's critical path); buffered 4 KB writes at uniformly
    distributed offsets keep the data plane cheap and spread flush
    traffic over all p iods, so the mgr is the only shared stage.
    """
    from repro.workload.openloop import OpenLoopParams

    return OpenLoopParams(
        processes=p,
        duration_s=duration_s,
        rate_ops_s=rate_ops_s,
        churn=1.0,
        read_fraction=0.0,
        write_fraction=1.0,
        access="uniform",
        file_bytes=16 << 20,
        seed=seed,
    )


def scaling_point(
    p: int,
    mgr_shards: int,
    rate_ops_s: float = SATURATING_RATE,
    duration_s: float = DURATION_S,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """Measure one (p, mgr_shards, rate) point; picklable for sweeps."""
    from repro.cluster.config import ClusterConfig
    from repro.workload.openloop import run_open_loop

    config = ClusterConfig(
        compute_nodes=p, iod_nodes=p, mgr_shards=mgr_shards
    )
    report = run_open_loop(
        config, knee_params(p, rate_ops_s, duration_s, seed)
    )
    return {
        "offered_ops_per_s": report.offered_ops_per_s,
        "completed_ops_per_s": report.completed_ops_per_s,
        "makespan_s": report.makespan_s,
        "p50_ms": report.p50_s * 1e3,
        "p95_ms": report.p95_s * 1e3,
        "p99_ms": report.p99_s * 1e3,
    }


def run_scaling(
    quick: bool = False,
    nodes: _t.Sequence[int] | None = None,
    shards: _t.Sequence[int] | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """The saturation grid: completed ops/s per (p, mgr_shards)."""
    ps = tuple(nodes) if nodes else (QUICK_NODES if quick else FULL_NODES)
    ss = tuple(shards) if shards else (QUICK_SHARDS if quick else FULL_SHARDS)
    points = [(p, s) for p in ps for s in ss]
    measured = parallel.sweep(points, scaling_point, max_workers=max_workers)
    result = ExperimentResult(
        experiment_id="scaling",
        title="Open-loop metadata saturation vs. mgr shards",
        x_label="mgr shards",
        y_label="completed ops/s (offered %.0f)" % SATURATING_RATE,
        notes=(
            "churn-heavy open-loop workload; the single mgr pins "
            "completed throughput at its ~6.6k opens/s capacity, "
            "sharding moves the knee right"
        ),
    )
    by_p: dict[int, _t.Any] = {p: result.new_series(f"p={p}") for p in ps}
    for (p, s), stats in zip(points, measured):
        by_p[p].add(
            float(s),
            stats["completed_ops_per_s"],
            offered=stats["offered_ops_per_s"],
            makespan_s=stats["makespan_s"],
            p99_ms=stats["p99_ms"],
        )
    return result


def run_knee_curve(
    p: int = 256,
    shards: _t.Sequence[int] = (1, 4),
    rates: _t.Sequence[float] = (2000, 4000, 8000, 16000),
    max_workers: int | None = None,
) -> ExperimentResult:
    """Completed vs. offered load: the knee, for 1 vs. N mgr shards."""
    points = [
        (p, s, float(rate)) for s in shards for rate in rates
    ]
    measured = parallel.sweep(points, scaling_point, max_workers=max_workers)
    result = ExperimentResult(
        experiment_id="knee",
        title=f"Open-loop knee at p={p}: offered vs. completed",
        x_label="offered ops/s",
        y_label="completed ops/s",
        notes=(
            "completed tracks offered until the mgr saturates, then "
            "flattens; more shards push the knee right"
        ),
    )
    series = {s: result.new_series(f"mgr_shards={s}") for s in shards}
    for (_p, s, rate), stats in zip(points, measured):
        series[s].add(
            stats["offered_ops_per_s"],
            stats["completed_ops_per_s"],
            p99_ms=stats["p99_ms"],
        )
    return result


def locate_knee(result: ExperimentResult, label: str) -> float:
    """The knee of one ``run_knee_curve`` series: the highest offered
    rate the system still met (completed within 5% of offered), or
    0.0 when even the lowest point saturated."""
    knee = 0.0
    for point in result.get(label).points:
        if point.y >= 0.95 * point.x:
            knee = max(knee, point.x)
    return knee
