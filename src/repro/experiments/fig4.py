"""Figure 4: caching overhead with no locality (worst case).

One micro-benchmark instance, p = 4, l = 0 (every request misses the
client cache), request size swept 1 KB .. 1 MB.  Plots the mean time
per read (a) / write (b) request for the caching and no-caching PVFS
versions.

Paper's findings to reproduce:
* reads: "the differences between the two are not very significant" —
  the caching module's overhead is small even when it never hits;
* writes: "the caching version performs better than the original
  version (with the differences being much more prominent for smaller
  d values)" — write-behind absorbs the writes; "when d becomes large,
  the writes may need to block for availability of cache space,
  lessening the differences".
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.experiments.common import ExperimentResult, sweep_sizes
from repro.experiments.parallel import sweep
from repro.workload import MicroBenchParams, run_instances


def _one_point(
    d: int, mode: str, caching: bool, p: int, iterations: int
) -> float:
    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=caching)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode=mode,
        locality=0.0,
        partition_bytes=4 * 2**20,
        warmup=(mode == "read"),
    )
    out = run_instances(config, [params])
    return (
        out.mean_read_latency if mode == "read" else out.mean_write_latency
    )


def run_fig4(
    quick: bool = False, p: int = 4
) -> tuple[ExperimentResult, ExperimentResult]:
    """Returns (fig4a_reads, fig4b_writes)."""
    sizes = sweep_sizes(quick)
    points = []
    for _panel, mode in (("fig4a", "read"), ("fig4b", "write")):
        for d in sizes:
            # Keep per-point simulated work bounded: fewer loop
            # iterations at the largest request sizes (the paper holds
            # the loop count user-configurable).
            iterations = 32 if d <= 262144 else (8 if quick else 16)
            for caching in (True, False):
                points.append((d, mode, caching, p, iterations))
    values = iter(sweep(points, _one_point))
    results = []
    for panel, mode in (("fig4a", "read"), ("fig4b", "write")):
        result = ExperimentResult(
            experiment_id=panel,
            title=(
                f"Caching overhead, single instance, p={p}, l=0 "
                f"({mode}s)"
            ),
            x_label=f"{mode} size (bytes)",
            y_label="time per request (seconds)",
        )
        with_cache = result.new_series("Caching")
        without = result.new_series("No Caching")
        for d in sizes:
            with_cache.add(d, next(values))
            without.add(d, next(values))
        results.append(result)
    results[0].notes = (
        "l=0: every request misses; caching should track no-caching "
        "closely (pure overhead)."
    )
    results[1].notes = (
        "write-behind wins at small d; differences shrink as d "
        "approaches the cache size."
    )
    return results[0], results[1]
