"""Sensitivity analysis: how the caching benefit scales with the knobs
the paper fixes.

The paper pins the cache at 1.2 MB "to better evaluate the continuing
trend of large increases in dataset sizes" — i.e. the cache is tiny
relative to the working set on purpose.  These sweeps answer the
follow-up questions a reader naturally asks:

* ``run_cache_size_sweep`` — benefit vs per-node cache size (l=0.5
  two-instance workload): diminishing returns once the shared working
  set fits.
* ``run_multiprogramming_sweep`` — benefit vs degree of
  multiprogramming (instances per node), extending Section 4.2.3's
  two-instance setup.
* ``run_block_size_sweep`` — 4 KB block size (page-size match) vs
  alternatives.
"""

from __future__ import annotations

from repro.cluster.config import CacheConfig, ClusterConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.workload import MicroBenchParams, run_instances


def _two_instance_makespan(
    cache: CacheConfig | None,
    caching: bool,
    p: int = 2,
    d: int = 65536,
    total_bytes: int = 2 * 2**20,
    locality: float = 0.5,
    sharing: float = 0.5,
    n_instances: int = 2,
) -> float:
    kwargs = {"cache": cache} if cache is not None else {}
    config = ClusterConfig(
        compute_nodes=p, iod_nodes=p, caching=caching, **kwargs
    )
    instances = [
        MicroBenchParams(
            nodes=config.compute_node_names(),
            request_size=d,
            iterations=max(1, total_bytes // d),
            mode="read",
            locality=locality,
            sharing=sharing,
            instance=i,
            partition_bytes=4 * 2**20,
            warmup=True,
            seed=42,
        )
        for i in range(n_instances)
    ]
    return run_instances(config, instances).makespan


def run_cache_size_sweep(
    sizes_kb: tuple[int, ...] = (300, 600, 1200, 2400, 4800),
) -> ExperimentResult:
    """Two-instance speedup over no-caching vs per-node cache size."""
    result = ExperimentResult(
        experiment_id="sens-cache-size",
        title="Speedup over no-caching vs per-node cache size "
        "(p=2, l=0.5, s=0.5)",
        x_label="cache size (KB)",
        y_label="speedup (x)",
    )
    series = result.new_series("speedup")
    points = [(None, False)] + [
        (CacheConfig(size_bytes=size_kb * 1024), True) for size_kb in sizes_kb
    ]
    values = sweep(points, _two_instance_makespan)
    baseline = values[0]
    for size_kb, t in zip(sizes_kb, values[1:]):
        series.add(size_kb, baseline / t, seconds=t)
    result.notes = f"no-caching baseline: {baseline:.4f}s"
    return result


def run_multiprogramming_sweep(
    degrees: tuple[int, ...] = (1, 2, 3),
) -> ExperimentResult:
    """Speedup vs number of co-scheduled instances per node set."""
    result = ExperimentResult(
        experiment_id="sens-multiprogramming",
        title="Speedup over no-caching vs degree of multiprogramming "
        "(p=2, l=0.5, s=0.5)",
        x_label="instances per node",
        y_label="speedup (x)",
    )
    series = result.new_series("speedup")
    points = []
    for degree in degrees:
        common = (2, 65536, 2 * 2**20, 0.5, 0.5, degree)
        points.append((CacheConfig(), True) + common)
        points.append((None, False) + common)
    values = iter(sweep(points, _two_instance_makespan))
    for degree in degrees:
        cached = next(values)
        plain = next(values)
        series.add(degree, plain / cached, cached_s=cached, plain_s=plain)
    return result


def run_block_size_sweep(
    block_sizes: tuple[int, ...] = (1024, 4096, 16384),
) -> ExperimentResult:
    """Benefit vs cache block size (the paper picks the 4 KB page)."""
    result = ExperimentResult(
        experiment_id="sens-block-size",
        title="Two-instance makespan vs cache block size "
        "(p=2, l=0.5, s=0.5, cache 1.2 MB)",
        x_label="block size (bytes)",
        y_label="total time (seconds)",
    )
    series = result.new_series("caching")
    # stripe must stay a multiple of the block size; 64 KB is.
    points = [(CacheConfig(block_size=bs), True) for bs in block_sizes]
    for bs, t in zip(block_sizes, sweep(points, _two_instance_makespan)):
        series.add(bs, t)
    return result
