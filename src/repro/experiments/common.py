"""Shared result containers and sweep helpers for the experiments."""

from __future__ import annotations

import dataclasses
import math
import typing as _t


@dataclasses.dataclass
class SeriesPoint:
    """One (x, y) measurement with optional auxiliary values."""

    x: float
    y: float
    extra: dict[str, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Series:
    """One labelled curve of a figure."""

    label: str
    points: list[SeriesPoint] = dataclasses.field(default_factory=list)

    def add(self, x: float, y: float, **extra: float) -> None:
        """Append an (x, y) point with optional extras."""
        self.points.append(SeriesPoint(x=x, y=y, extra=dict(extra)))

    def y_at(self, x: float) -> float:
        """The y value at ``x`` (KeyError if absent).

        Matches with ``math.isclose`` rather than exact equality so
        x-values recomputed in sweep worker processes (or read back
        from serialized results) round-trip safely.
        """
        for point in self.points:
            if math.isclose(point.x, x, rel_tol=1e-9, abs_tol=1e-12):
                return point.y
        raise KeyError(f"no point at x={x} in series {self.label!r}")

    @property
    def xs(self) -> list[float]:
        """All x values in insertion order."""
        return [p.x for p in self.points]

    @property
    def ys(self) -> list[float]:
        """All y values in insertion order."""
        return [p.y for p in self.points]


@dataclasses.dataclass
class ExperimentResult:
    """A reproduced figure: several series over a common x-axis."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = dataclasses.field(default_factory=list)
    notes: str = ""

    def get(self, label: str) -> Series:
        """The series labelled ``label`` (KeyError if absent)."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r}; have {[s.label for s in self.series]}"
        )

    def new_series(self, label: str) -> Series:
        """Create, register and return a series."""
        s = Series(label=label)
        self.series.append(s)
        return s

    def to_table(self) -> str:
        """Render as an aligned text table, one row per x value."""
        xs: list[float] = []
        for s in self.series:
            for x in s.xs:
                if x not in xs:
                    xs.append(x)
        xs.sort()
        headers = [self.x_label] + [s.label for s in self.series]
        rows: list[list[str]] = []
        for x in xs:
            row = [_fmt_x(x)]
            for s in self.series:
                try:
                    row.append(f"{s.y_at(x):.6f}")
                except KeyError:
                    row.append("-")
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"   (y = {self.y_label})",
            "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        ]
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)


def _fmt_x(x: float) -> str:
    if x == int(x):
        return str(int(x))
    return f"{x:g}"


#: The paper sweeps request sizes 1 KB .. 1 MB (x axes of Figs 4-8).
FULL_SIZES = [1024, 4096, 16384, 65536, 262144, 1048576]
QUICK_SIZES = [4096, 65536, 262144]


def sweep_sizes(quick: bool) -> list[int]:
    """The request-size sweep (quick or full)."""
    return QUICK_SIZES if quick else FULL_SIZES
