"""Figure 8: can caching compensate for any loss in parallelism?

Two applications that share data must be scheduled on a 6-node
cluster.  Three options:

* **Caching, co-located** — both instances time-share nodes 0-2 with
  the cache module loaded (3 nodes used in all);
* **No caching, different nodes** — instance 0 on nodes 0-2, instance
  1 on nodes 3-5 (6 nodes used: maximum parallelism);
* **No caching, same nodes** — both instances on nodes 0-2 (expected
  worst case).

Paper's findings to reproduce:
* at l = 0 the parallelism benefit of spreading out beats
  inter-application caching;
* with higher l the caching effects offset the parallelism loss, and
  at l = 1 "caching benefits offset any loss of parallelism" — the
  scheduling-relevant crossover;
* co-locating *without* caching is always worst;
* higher sharing favours the caching option further.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.experiments.common import ExperimentResult, sweep_sizes
from repro.experiments.parallel import sweep
from repro.workload import MicroBenchParams, run_instances

SHARING_LEVELS = (0.25, 0.50, 0.75, 1.00)
LOCALITY_PANELS = ((0.0, "a"), (0.5, "b"), (1.0, "c"))


def _run_variant(
    variant: str,
    d: int,
    locality: float,
    sharing: float,
    total_bytes: int,
) -> float:
    config = ClusterConfig(
        compute_nodes=6,
        iod_nodes=6,
        caching=(variant == "cache-colocated"),
    )
    iterations = max(1, total_bytes // d)
    if variant == "nocache-spread":
        node_sets = [["node0", "node1", "node2"], ["node3", "node4", "node5"]]
    else:
        node_sets = [["node0", "node1", "node2"]] * 2
    instances = [
        MicroBenchParams(
            nodes=node_sets[i],
            request_size=d,
            iterations=iterations,
            mode="read",
            locality=locality,
            sharing=sharing,
            instance=i,
            partition_bytes=4 * 2**20,
            warmup=True,
            seed=42,
        )
        for i in range(2)
    ]
    out = run_instances(config, instances)
    return out.makespan


def run_fig8(
    quick: bool = False, total_bytes: int = 2 * 2**20
) -> list[ExperimentResult]:
    """Returns [fig8a, fig8b, fig8c] for l = 0 / 0.5 / 1.0."""
    sizes = sweep_sizes(quick)
    sharings = (0.25, 1.00) if quick else SHARING_LEVELS
    points = []
    for locality, _panel in LOCALITY_PANELS:
        for d in sizes:
            for s in sharings:
                points.append(("cache-colocated", d, locality, s, total_bytes))
            points.append(("nocache-spread", d, locality, 0.5, total_bytes))
            points.append(("nocache-colocated", d, locality, 0.5, total_bytes))
    values = iter(sweep(points, _run_variant))
    results = []
    for locality, panel in LOCALITY_PANELS:
        result = ExperimentResult(
            experiment_id=f"fig8{panel}",
            title=(
                f"Caching vs parallelism, two instances, l={locality} "
                "(3 shared nodes vs 6 disjoint nodes)"
            ),
            x_label="block size (bytes)",
            y_label="total time (seconds)",
        )
        cache_series = {
            s: result.new_series(f"Caching({int(s * 100)}% sharing)")
            for s in sharings
        }
        spread = result.new_series("No Caching (2 apps on diff. nodes)")
        coloc = result.new_series("No Caching (2 apps on same nodes)")
        for d in sizes:
            for s in sharings:
                cache_series[s].add(d, next(values))
            spread.add(d, next(values))
            coloc.add(d, next(values))
        results.append(result)
    return results
