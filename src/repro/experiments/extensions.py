"""Experiments for the extension features (beyond the paper's figures).

* :func:`run_coherence_sweep` — mean write latency as the fraction of
  coherent (``sync_write``) writes grows from 0 to 1, quantifying the
  paper's implicit trade-off between the non-coherent default and the
  consistency-preserving path.
* :func:`run_global_cache_experiment` — local-only vs cooperative
  global cache across iod page-cache sizes: peer hits pay off exactly
  when the servers would have gone to disk.
* :func:`run_readahead_experiment` — sequential-scan time vs per-chunk
  compute (think time): prefetching converts compute time into overlap.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.config import CacheConfig, ClusterConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.workload import MicroBenchParams, run_instances


def _coherence_point(
    fraction: float, d: int, p: int, iterations: int
) -> tuple[float, float]:
    """One coherence-sweep point: (blended write latency, invalidations)."""
    config = ClusterConfig(compute_nodes=p, iod_nodes=p, caching=True)
    writer = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode="write",
        sync_fraction=fraction,
        sharing=1.0,
        instance=0,
        partition_bytes=2 * 2**20,
    )
    # The reader's ranks run on the REVERSED node order, so rank k
    # reads partition k from a different node than the writer's
    # rank k writes it — the cross-node copies that sync_write
    # must invalidate.
    reader = MicroBenchParams(
        nodes=list(reversed(config.compute_node_names())),
        request_size=d,
        iterations=iterations,
        mode="read",
        sharing=1.0,
        instance=1,
        partition_bytes=2 * 2**20,
    )
    out = run_instances(config, [writer, reader])
    latency = out.cluster.metrics.mean("client.write_latency")
    sync_latency = out.cluster.metrics.mean("client.sync_write_latency")
    # blend: the writer's overall per-request cost
    n_sync = out.counter("client.sync_writes")
    n_plain = out.counter("client.writes")
    total = n_sync + n_plain
    blended = 0.0
    if total:
        blended = (
            (latency if latency == latency else 0.0) * n_plain
            + (sync_latency if sync_latency == sync_latency else 0.0)
            * n_sync
        ) / total
    return blended, float(out.counter("cache.invalidations_received"))


def run_coherence_sweep(
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    d: int = 16384,
    p: int = 2,
    iterations: int = 32,
) -> ExperimentResult:
    """Write latency vs fraction of coherent writes, with a second
    instance caching the written file (so invalidations actually fire)."""
    result = ExperimentResult(
        experiment_id="ext-coherence",
        title=f"Write latency vs sync_write fraction (d={d}, p={p}, "
        "reader instance caching the shared file)",
        x_label="sync_write fraction",
        y_label="mean write latency (seconds)",
    )
    series = result.new_series("write latency")
    inval_series = result.new_series("invalidations (count)")
    points = [(fraction, d, p, iterations) for fraction in fractions]
    for fraction, (blended, invalidations) in zip(
        fractions, sweep(points, _coherence_point)
    ):
        series.add(fraction, blended)
        inval_series.add(fraction, invalidations)
    result.notes = "coherence costs a round trip per covered write"
    return result


def _global_cache_point(
    global_cache: bool, pagecache: int, blocks: tuple[int, ...]
) -> float:
    """Second-node re-read time for one (global_cache, pagecache) point."""
    config = ClusterConfig(
        compute_nodes=2,
        iod_nodes=2,
        caching=True,
        cache=CacheConfig(global_cache=global_cache),
        pagecache_blocks=pagecache,
    )
    cluster = Cluster(config)
    a = cluster.client("node0")
    b = cluster.client("node1")

    def app(env):
        f = yield from a.open("/g")
        for blk in blocks:
            yield from a.read(f, blk * 4096, 4096)
        t0 = env.now
        for blk in blocks:
            yield from b.read(f, blk * 4096, 4096)
        return env.now - t0

    proc = cluster.env.process(app(cluster.env))
    return cluster.env.run(until=proc)


def run_global_cache_experiment(
    pagecache_blocks: tuple[int, ...] = (0, 64, 16384),
    n_blocks_touched: int = 24,
) -> ExperimentResult:
    """Random 4 KB re-reads from a second node: peer cache vs iod,
    across iod page-cache sizes (0 = always disk)."""
    result = ExperimentResult(
        experiment_id="ext-global-cache",
        title="Second-node random 4 KB reads: local-only vs global cache",
        x_label="iod page-cache blocks",
        y_label="total read time (seconds)",
    )
    local_series = result.new_series("local cache only")
    global_series = result.new_series("with global cache")
    blocks = tuple(
        [7, 91, 23, 55, 3, 78, 41, 66, 12, 99, 30, 84][:n_blocks_touched]
    )

    points = []
    for pagecache in pagecache_blocks:
        points.append((False, pagecache, blocks))
        points.append((True, pagecache, blocks))
    values = iter(sweep(points, _global_cache_point))
    for pagecache in pagecache_blocks:
        local_series.add(pagecache, next(values))
        global_series.add(pagecache, next(values))
    result.notes = (
        "peer hits replace disk seeks; with warm iod memory the two "
        "paths cost about the same"
    )
    return result


def _straggler_point(caching: bool, slowdown: float) -> float:
    """Steady-state re-scan time with one degraded iod disk."""
    working_set = 768 * 1024
    chunk = 64 * 1024
    config = ClusterConfig(
        compute_nodes=1,
        iod_nodes=2,
        caching=caching,
        pagecache_blocks=64,  # 256 KB of server memory per iod
    )
    cluster = Cluster(config)
    disk = cluster.iods[0].node.disk
    assert disk is not None
    disk.transfer_bytes_per_s /= slowdown
    disk.avg_seek_s *= slowdown
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/straggler/ws")
        # pass 1: populate (unmeasured)
        for pos in range(0, working_set, chunk):
            yield from client.read(f, pos, chunk)
        t0 = env.now
        for _pass in range(3):  # passes 2-4: the steady state
            for pos in range(0, working_set, chunk):
                yield from client.read(f, pos, chunk)
        return env.now - t0

    proc = cluster.env.process(app(cluster.env))
    return cluster.env.run(until=proc)


def run_straggler_experiment(
    slowdowns: tuple[float, ...] = (1.0, 4.0, 16.0),
    d: int = 65536,
    iterations: int = 24,
) -> ExperimentResult:
    """A degraded iod disk (straggler): how much does the client cache
    mask it?

    One iod's disk runs ``slowdown``x slower than the others.  Without
    caching every cold read striped onto it stalls; with caching (and
    locality) most requests never reach it.
    """
    del d, iterations  # workload shaped by the working set instead
    result = ExperimentResult(
        experiment_id="ext-straggler",
        title="Repeated scans of a 768 KB working set with one "
        "degraded iod disk (fits the 1.2 MB client cache, exceeds "
        "the 256 KB iod page cache)",
        x_label="straggler disk slowdown (x)",
        y_label="time for scan passes 2-4 (seconds)",
    )
    plain_series = result.new_series("no caching")
    cached_series = result.new_series("caching")

    points = []
    for slowdown in slowdowns:
        points.append((False, slowdown))
        points.append((True, slowdown))
    values = iter(sweep(points, _straggler_point))
    for slowdown in slowdowns:
        plain_series.add(slowdown, next(values))
        cached_series.add(slowdown, next(values))
    result.notes = (
        "re-scans hit the slow disk without the client cache; with it "
        "they never leave the node"
    )
    return result


def _readahead_point(
    readahead: bool, think_s: float, chunks: int, chunk_bytes: int
) -> float:
    """Sequential-scan time for one (readahead, think time) point."""
    config = ClusterConfig(
        compute_nodes=1,
        iod_nodes=1,
        caching=True,
        cache=CacheConfig(readahead=readahead),
    )
    cluster = Cluster(config)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/scan")
        t0 = env.now
        for i in range(chunks):
            yield from client.read(f, i * chunk_bytes, chunk_bytes)
            if think_s:
                yield from cluster.node("node0").compute(think_s)
        return env.now - t0

    proc = cluster.env.process(app(cluster.env))
    return cluster.env.run(until=proc)


def run_readahead_experiment(
    think_times_s: tuple[float, ...] = (0.0, 1e-3, 2e-3, 4e-3),
    chunks: int = 32,
    chunk_bytes: int = 16384,
) -> ExperimentResult:
    """Sequential scan with per-chunk compute, readahead on/off."""
    result = ExperimentResult(
        experiment_id="ext-readahead",
        title=f"Sequential scan of {chunks} x {chunk_bytes // 1024} KB "
        "with per-chunk compute",
        x_label="compute per chunk (seconds)",
        y_label="scan time (seconds)",
    )
    plain_series = result.new_series("no readahead")
    ra_series = result.new_series("readahead")

    points = []
    for think_s in think_times_s:
        points.append((False, think_s, chunks, chunk_bytes))
        points.append((True, think_s, chunks, chunk_bytes))
    values = iter(sweep(points, _readahead_point))
    for think_s in think_times_s:
        plain_series.add(think_s, next(values))
        ra_series.add(think_s, next(values))
    result.notes = "prefetch overlaps the next chunk's fetch with compute"
    return result
