"""Render every reproduced figure as a text table.

Usage::

    python -m repro.experiments [--quick] [--only fig4,fig8]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import typing as _t

from repro.cluster.config import (
    DISK_MODEL_ENV_VAR,
    DISK_MODELS,
    ENGINE_MACRO_ENV_VAR,
    ENGINE_SHARDS_ENV_VAR,
    MGR_SHARDS_ENV_VAR,
    NET_MODEL_ENV_VAR,
    NET_MODELS,
    TRACE_ENV_VAR,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig67 import run_fig6, run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.overhead import run_overhead
from repro.experiments.sensitivity import (
    run_block_size_sweep,
    run_cache_size_sweep,
    run_multiprogramming_sweep,
)

RUNNERS: dict[str, _t.Callable[[bool], list[ExperimentResult]]] = {
    "overhead": lambda quick: [run_overhead()],
    "fig4": lambda quick: list(run_fig4(quick)),
    "fig5": lambda quick: list(run_fig5(quick)),
    "fig6": lambda quick: run_fig6(quick),
    "fig7": lambda quick: run_fig7(quick),
    "fig8": lambda quick: run_fig8(quick),
    "sensitivity": lambda quick: [
        run_cache_size_sweep(
            (600, 1200, 2400) if quick else (300, 600, 1200, 2400, 4800)
        ),
        run_multiprogramming_sweep((1, 2) if quick else (1, 2, 3)),
        run_block_size_sweep(),
    ],
    "extensions": lambda quick: _run_extensions(quick),
    "scaling": lambda quick: _run_scaling(quick),
}


def _run_scaling(quick: bool) -> "list[ExperimentResult]":
    from repro.experiments.scaling import run_scaling

    return [run_scaling(quick)]


def _run_extensions(quick: bool) -> "list[ExperimentResult]":
    from repro.experiments.extensions import (
        run_coherence_sweep,
        run_global_cache_experiment,
        run_readahead_experiment,
        run_straggler_experiment,
    )

    return [
        run_coherence_sweep((0.0, 0.5, 1.0) if quick else (0.0, 0.25, 0.5, 0.75, 1.0)),
        run_global_cache_experiment((0, 16384) if quick else (0, 64, 16384)),
        run_readahead_experiment((0.0, 2e-3) if quick else (0.0, 1e-3, 2e-3, 4e-3)),
        run_straggler_experiment((1.0, 8.0) if quick else (1.0, 4.0, 16.0)),
    ]

#: The paper's own figures (sensitivity sweeps are our extension and
#: are only run when asked for explicitly).
DEFAULT_SET = ["overhead", "fig4", "fig5", "fig6", "fig7", "fig8"]


def daemon_summary(stream: _t.TextIO = sys.stdout) -> str:
    """Run a small shared-read workload and print what each daemon did.

    Exercises every service in the runtime — mgr opens, iod reads and
    writes, flusher batches, invalidations (via a sync_write), and the
    writeback daemons — then renders the per-daemon stats table fed by
    the instrumentation bus.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig
    from repro.metrics import DaemonMonitor, daemon_table
    from repro.svc import get_bus

    cluster = Cluster(ClusterConfig(compute_nodes=2, iod_nodes=2))
    bus = get_bus(cluster.env)
    monitor = DaemonMonitor(bus)
    cluster.metrics.attach_bus(bus)
    cluster.network.attach_bus(bus)

    def app(node: str, path: str) -> _t.Generator:
        client = cluster.client(node)
        handle = yield from client.open(path)
        yield from client.write(handle, 0, 256 * 1024)
        yield from client.read(handle, 0, 256 * 1024)
        yield from client.sync_write(handle, 0, 64 * 1024)

    procs = [
        cluster.env.process(app(node, "/data/shared"))
        for node in cluster.compute_nodes
    ]
    cluster.env.run(until=cluster.env.all_of(procs))
    cluster.env.run(until=cluster.env.process(cluster.drain_caches()))

    table = daemon_table(bus)
    dispatches = sum(
        count
        for (_svc, kind), count in monitor.event_counts.items()
        if kind == "dispatch"
    )
    net = cluster.record_network_metrics()
    sched = cluster.record_scheduler_metrics()
    print(table, file=stream)
    print("\nmetadata shards:", file=stream)
    print(monitor.mgr_shard_table(duration_s=cluster.env.now), file=stream)
    print(f"\n[{dispatches} dispatches observed on the bus]", file=stream)
    print(
        "[network: {model}, {messages_delivered} messages, "
        "{bytes_transferred} bytes, wire busy {wire_busy_s:.4f}s]".format(
            **net
        ),
        file=stream,
    )
    print(
        "[scheduler: {events_processed} events, depth hw "
        "{queue_depth_hw}, {timers_cancelled} timers cancelled, "
        "{timer_entries_purged} entries purged, {bursts_coalesced} "
        "bursts coalesced, {barriers_crossed} barriers, "
        "{cross_shard_msgs} cross-shard msgs, shard skew "
        "{max_shard_skew_us}us]".format(**sched),
        file=stream,
    )
    monitor.close()
    return table


def run_all(
    quick: bool = False,
    only: _t.Sequence[str] | None = None,
    stream: _t.TextIO = sys.stdout,
    charts: bool = False,
) -> list[ExperimentResult]:
    """Run the chosen experiments, printing each table."""
    chosen = list(only) if only else list(DEFAULT_SET)
    unknown = [name for name in chosen if name not in RUNNERS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; have {list(RUNNERS)}")
    all_results: list[ExperimentResult] = []
    for name in chosen:
        t0 = time.time()
        results = RUNNERS[name](quick)
        elapsed = time.time() - t0
        for result in results:
            print(result.to_table(), file=stream)
            print("", file=stream)
            if charts:
                from repro.experiments.plots import render_chart

                print(render_chart(result), file=stream)
                print("", file=stream)
        print(f"[{name}: {elapsed:.1f}s]", file=stream)
        print("", file=stream)
        all_results.extend(results)
    return all_results


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (~1-2 min)"
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        help=f"comma-separated subset of {list(RUNNERS)}",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render each figure as a terminal chart",
    )
    parser.add_argument(
        "--daemons",
        action="store_true",
        help="run a small workload and print the per-daemon summary",
    )
    parser.add_argument(
        "--net-model",
        choices=NET_MODELS,
        default=None,
        help=(
            "network contention model: 'frames' (validated default) or "
            "'fluid' (analytic bandwidth sharing, much faster sweeps)"
        ),
    )
    parser.add_argument(
        "--disk-model",
        choices=DISK_MODELS,
        default=None,
        help=(
            "disk service model: 'mech' (per-request spindle "
            "simulation, validated default) or 'queued' (analytic FIFO "
            "batch service, much faster disk-bound sweeps)"
        ),
    )
    parser.add_argument(
        "--engine-macro",
        action="store_true",
        help=(
            "coalesce fully-resident cache-hit read bursts into one "
            "scheduled event each (DESIGN.md §14); off preserves the "
            "validated event-level schedule bit-for-bit"
        ),
    )
    parser.add_argument(
        "--engine-shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "split each trace replay across N conservative parallel "
            "engine shards (DESIGN.md §17); only replayed runs "
            "(--trace / REPRO_TRACE) honor shards > 1"
        ),
    )
    parser.add_argument(
        "--mgr-shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "hash-partition the PVFS metadata namespace across N mgr "
            "shards (DESIGN.md §18); 1 (the default) is the paper's "
            "single mgr, bit-identical to before"
        ),
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "replay this workload trace (JSONL/CSV, see "
            "'python -m repro.workload record') instead of each "
            "experiment's synthetic benchmark — every run_instances "
            "call, including in sweep workers, replays it closed-loop "
            "on that point's cluster configuration"
        ),
    )
    parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help=(
            "run under cProfile and print the top N functions by "
            "cumulative time (default 25)"
        ),
    )
    args = parser.parse_args(argv)
    if args.net_model:
        # Via the environment so parallel sweep workers inherit it —
        # every ClusterConfig built anywhere in this run resolves it.
        os.environ[NET_MODEL_ENV_VAR] = args.net_model
    if args.disk_model:
        os.environ[DISK_MODEL_ENV_VAR] = args.disk_model
    if args.engine_macro:
        os.environ[ENGINE_MACRO_ENV_VAR] = "1"
    if args.engine_shards:
        os.environ[ENGINE_SHARDS_ENV_VAR] = str(args.engine_shards)
    if args.mgr_shards:
        os.environ[MGR_SHARDS_ENV_VAR] = str(args.mgr_shards)
    if args.trace:
        os.environ[TRACE_ENV_VAR] = args.trace
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            if args.daemons:
                daemon_summary()
            else:
                only = args.only.split(",") if args.only else None
                run_all(quick=args.quick, only=only, charts=args.charts)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative")
            print(f"\n=== cProfile: top {args.profile} by cumulative time ===")
            stats.print_stats(args.profile)
        return 0
    if args.daemons:
        daemon_summary()
        return 0
    only = args.only.split(",") if args.only else None
    run_all(quick=args.quick, only=only, charts=args.charts)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
