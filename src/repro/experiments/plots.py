"""Terminal (ASCII) charts for experiment results.

The repository runs in offline environments without matplotlib, so
figures are rendered as Unicode scatter/line charts directly in the
terminal — enough to eyeball the shapes the paper's figures show
(who wins, where curves cross).

Usage::

    from repro.experiments import run_fig5
    from repro.experiments.plots import render_chart

    fig5a, _ = run_fig5(quick=True)
    print(render_chart(fig5a, log_x=True))
"""

from __future__ import annotations

import math
import typing as _t

from repro.experiments.common import ExperimentResult

#: Distinct glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log scale needs positive values, got {value}")
        return math.log10(value)
    return value


def render_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = False,
) -> str:
    """Render every series of ``result`` into one character grid."""
    series = [s for s in result.series if s.points]
    if not series:
        return f"== {result.experiment_id}: {result.title} ==\n(no data)"
    xs = [_transform(p.x, log_x) for s in series for p in s.points]
    ys = [_transform(p.y, log_y) for s in series for p in s.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for p in s.points:
            cx = int((_transform(p.x, log_x) - x_lo) / x_span * (width - 1))
            cy = int((_transform(p.y, log_y) - y_lo) / y_span * (height - 1))
            row = height - 1 - cy
            cell = grid[row][cx]
            # Collisions render as '?' so overlaps are visible.
            grid[row][cx] = glyph if cell in (" ", glyph) else "?"

    y_hi_real = max(p.y for s in series for p in s.points)
    y_lo_real = min(p.y for s in series for p in s.points)
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append(f"{y_hi_real:11.4g} ┐")
    for row in grid:
        lines.append(" " * 11 + " │" + "".join(row))
    lines.append(f"{y_lo_real:11.4g} ┘" + "─" * width)
    x_lo_real = min(p.x for s in series for p in s.points)
    x_hi_real = max(p.x for s in series for p in s.points)
    axis = f"{x_lo_real:g}"
    pad = max(1, width - len(axis) - len(f"{x_hi_real:g}"))
    lines.append(
        " " * 13 + axis + " " * pad + f"{x_hi_real:g}"
        + ("   (log x)" if log_x else "")
    )
    lines.append("   legend: " + "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={s.label}" for i, s in enumerate(series)
    ))
    return "\n".join(lines)


def render_bar_chart(
    labels_values: _t.Sequence[tuple[str, float]],
    title: str = "",
    width: int = 48,
    unit: str = "s",
) -> str:
    """Horizontal bar chart for categorical comparisons (e.g. the
    Figure 8 placement variants at one x)."""
    if not labels_values:
        return f"== {title} ==\n(no data)"
    peak = max(v for _, v in labels_values) or 1.0
    label_width = max(len(label) for label, _ in labels_values)
    lines = [f"== {title} =="] if title else []
    for label, value in labels_values:
        bar = "█" * max(1, int(value / peak * width))
        lines.append(
            f"  {label.rjust(label_width)} {bar} {value:.4g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: _t.Sequence[float]) -> str:
    """One-line trend of a series (e.g. latency over the sweep)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values
    )
