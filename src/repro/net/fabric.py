"""Network fabrics: how frames contend on the wire.

Two models are provided:

* :class:`SharedHubFabric` — one collision domain, all transfers
  serialise through a single 100 Mbps medium.  This is the paper's
  literal hardware description ("Linksys Etherfast 10/100Mbps 16 port
  hub").
* :class:`SwitchedFabric` — full-duplex 100 Mbps per port; a transfer
  occupies the sender's TX channel and the receiver's RX channel.
  Concurrent flows between disjoint node pairs do not contend.  This is
  the default because the measured PVFS throughputs in the paper (and
  in the PVFS paper it builds on) exceed what a single shared medium
  can carry, so the deployed device almost certainly switched.

Both fragment messages into frames so concurrent flows interleave
fairly rather than one message monopolising a channel.
"""

from __future__ import annotations

import math
import typing as _t

from repro.net.hub import Hub
from repro.sim import Environment, Resource, Timeout


class Fabric:
    """Interface: something that carries bytes between nodes."""

    env: Environment
    bytes_transferred: int

    @property
    def lookahead_s(self) -> float:
        """Conservative lookahead window of this fabric (DESIGN.md §17).

        No message handed to the fabric can take effect at its
        destination sooner than this — the fixed per-message latency —
        so shard environments may safely advance this far past the
        global frontier between barriers.
        """
        return float(getattr(self, "base_latency_s", 0.0))

    def stats_snapshot(self) -> dict[str, _t.Any]:
        """Contention counters for metrics export.

        Concrete fabrics override with their model's notion of queue
        depth and wire-busy time; this default keeps third-party
        fabrics working with the network's instrumentation hooks.
        """
        return {
            "model": type(self).__name__,
            "bytes_transferred": self.bytes_transferred,
            "utilization_queue": getattr(self, "utilization_queue", 0),
            "wire_busy_s": getattr(self, "wire_busy_s", 0.0),
        }

    def transmit(
        self, src: str, dst: str, size_bytes: int
    ) -> _t.Generator:  # pragma: no cover - interface
        """Process body: carry ``size_bytes`` from ``src`` to ``dst``."""
        raise NotImplementedError


class SharedHubFabric(Fabric):
    """All nodes share one medium (the paper's stated hub)."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = 100e6,
        frame_bytes: int = 65536,
        base_latency_s: float = 100e-6,
    ) -> None:
        self.env = env
        self.hub = Hub(
            env,
            bandwidth_bps=bandwidth_bps,
            frame_bytes=frame_bytes,
            base_latency_s=base_latency_s,
        )

    @property
    def bytes_transferred(self) -> int:
        """Bytes that crossed the medium."""
        return self.hub.bytes_transferred

    @property
    def lookahead_s(self) -> float:
        """Conservative lookahead window (the hub's fixed latency)."""
        return float(self.hub.base_latency_s)

    @property
    def utilization_queue(self) -> int:
        """Frames currently waiting for the medium."""
        return self.hub.utilization_queue

    @property
    def wire_busy_s(self) -> float:
        """Seconds the shared medium spent carrying frames."""
        return self.hub.wire_busy_s

    def transfer_time_unloaded(self, size_bytes: int) -> float:
        """Transfer time on an idle hub (per-frame framing included)."""
        return self.hub.transfer_time_unloaded(size_bytes)

    def stats_snapshot(self) -> dict[str, _t.Any]:
        """Contention counters for metrics export."""
        return self.hub.stats_snapshot()

    def transmit(self, src: str, dst: str, size_bytes: int) -> _t.Generator:
        """Occupy the single shared medium."""
        yield from self.hub.transmit(size_bytes)


class SwitchedFabric(Fabric):
    """Full-duplex per-port links through a non-blocking switch.

    A frame from ``src`` to ``dst`` holds ``src``'s TX channel and
    ``dst``'s RX channel for its wire time.  Holding TX while waiting
    for RX models head-of-line blocking at the sender's port (a
    property real output-queued NICs have).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = 100e6,
        frame_bytes: int = 65536,
        base_latency_s: float = 100e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if frame_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {frame_bytes}")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.frame_bytes = int(frame_bytes)
        self.base_latency_s = float(base_latency_s)
        self._tx: dict[str, Resource] = {}
        self._rx: dict[str, Resource] = {}
        self.bytes_transferred = 0
        self.frames_transferred = 0
        #: Simulated seconds of frame wire time across all ports.
        self.wire_busy_s = 0.0

    def _channel(self, table: dict[str, Resource], node: str) -> Resource:
        if node not in table:
            table[node] = Resource(self.env, capacity=1)
        return table[node]

    def frame_time(self, nbytes: int) -> float:
        """Wire time for one frame of ``nbytes``."""
        return nbytes * 8.0 / self.bandwidth_bps

    def transfer_time_unloaded(self, size_bytes: int) -> float:
        """Transfer time on idle links.

        Includes the per-frame framing :meth:`transmit` charges: every
        frame carries at least one byte, so a zero-byte message still
        pays one minimum-size frame on the wire.
        """
        return self.base_latency_s + self.frame_time(max(size_bytes, 1))

    @property
    def utilization_queue(self) -> int:
        """Frames waiting across all TX/RX ports (contention probe)."""
        return sum(
            ch.queue_length
            for table in (self._tx, self._rx)
            for ch in table.values()
        )

    def stats_snapshot(self) -> dict[str, _t.Any]:
        """Contention counters for metrics export (see DESIGN.md §12)."""
        return {
            "model": "frames-switch",
            "bytes_transferred": self.bytes_transferred,
            "frames_transferred": self.frames_transferred,
            "utilization_queue": self.utilization_queue,
            "wire_busy_s": self.wire_busy_s,
        }

    def fast_transmit(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        deliver: _t.Callable[[], None],
    ) -> bool:
        """Callback-driven single-frame transfer on idle ports.

        When the message fits one frame and neither the sender's TX nor
        the receiver's RX channel has holders or waiters, the transfer
        outcome is fully determined up front: hold both channels for
        the frame's wire time, then pay the base latency and call
        ``deliver``.  Returns False (caller must use :meth:`transmit`)
        whenever contention or fragmentation makes the generator path
        necessary.  Timing is identical to :meth:`transmit` for the
        covered case — this only removes per-message Process overhead.
        """
        if not (0 <= size_bytes <= self.frame_bytes):
            return False
        tx = self._channel(self._tx, src)
        rx = self._channel(self._rx, dst)
        if tx._holders or tx._waiting or rx._holders or rx._waiting:
            return False
        tx_req = tx.request()  # grants synchronously: channel is idle
        rx_req = rx.request()
        env = self.env

        wire_s = self.frame_time(max(size_bytes, 1))

        def _frame_done(_ev: object) -> None:
            tx.release(tx_req)
            rx.release(rx_req)
            self.bytes_transferred += size_bytes
            self.frames_transferred += 1
            self.wire_busy_s += wire_s
            Timeout(env, self.base_latency_s).callbacks.append(
                lambda _e: deliver()
            )

        Timeout(env, wire_s).callbacks.append(_frame_done)
        return True

    def transmit(self, src: str, dst: str, size_bytes: int) -> _t.Generator:
        """Occupy the sender's TX and receiver's RX ports."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        tx = self._channel(self._tx, src)
        rx = self._channel(self._rx, dst)
        remaining = size_bytes
        nframes = max(1, math.ceil(size_bytes / self.frame_bytes))
        for _ in range(nframes):
            chunk = min(self.frame_bytes, remaining) if remaining else 0
            remaining -= chunk
            wire_s = self.frame_time(max(chunk, 1))
            with tx.request() as tx_req:
                yield tx_req
                with rx.request() as rx_req:
                    yield rx_req
                    yield self.env.timeout(wire_s)
            self.bytes_transferred += chunk
            self.frames_transferred += 1
            self.wire_busy_s += wire_s
        yield self.env.timeout(self.base_latency_s)
