"""Compatibility shim: the RPC layer moved to :mod:`repro.svc.rpc`.

Request/response correlation is part of the service runtime now (it is
what ``Service``-based daemons use to talk to each other); this module
re-exports the public names so existing imports keep working.
"""

from repro.svc.rpc import Call, ChannelPool, PendingCallLeak, RpcChannel

__all__ = ["Call", "ChannelPool", "PendingCallLeak", "RpcChannel"]
