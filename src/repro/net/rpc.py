"""Request/response multiplexing over a shared socket endpoint.

A private libpvfs connection can match responses FIFO, but the cache
module *shares* one connection per iod across every process on the
node, so responses must be correlated by message id.  :class:`RpcChannel`
runs a dispatcher process that routes each inbound message to the
:class:`Call` whose request it answers.  A call may receive several
responses (the PVFS read protocol answers with an ACK message followed
by a DATA message).
"""

from __future__ import annotations

import typing as _t

from repro.net.message import Message
from repro.net.sockets import Endpoint
from repro.sim import Store


class Call:
    """One outstanding request on an :class:`RpcChannel`."""

    __slots__ = ("channel", "msg_id", "_responses")

    def __init__(self, channel: "RpcChannel", msg_id: int) -> None:
        self.channel = channel
        self.msg_id = msg_id
        self._responses: Store = Store(channel.endpoint.env)

    def response(self):
        """Event yielding the next response message for this call."""
        return self._responses.get()

    def close(self) -> None:
        """Deregister; further responses for this id count as orphans."""
        self.channel._calls.pop(self.msg_id, None)


class RpcChannel:
    """Correlates responses on a shared connection endpoint."""

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint
        self.env = endpoint.env
        self._calls: dict[int, Call] = {}
        #: Responses that matched no registered call (protocol bugs
        #: surface here instead of hanging the simulation).
        self.orphans = 0
        self._dispatcher = self.env.process(
            self._dispatch_loop(), name=f"rpc-dispatch-{id(endpoint):x}"
        )

    def call(self, message: Message) -> Call:
        """Send ``message`` and register for its responses.

        The send is fire-and-forget (FIFO-ordered by the connection);
        the returned :class:`Call` collects responses.
        """
        call = Call(self, message.msg_id)
        self._calls[message.msg_id] = call
        self.endpoint.send(message)
        return call

    @property
    def outstanding(self) -> int:
        """Calls still awaiting responses."""
        return len(self._calls)

    def _dispatch_loop(self) -> _t.Generator:
        while True:
            msg: Message = yield self.endpoint.recv()
            call = self._calls.get(msg.reply_to) if msg.reply_to else None
            if call is None:
                self.orphans += 1
                continue
            yield call._responses.put(msg)
