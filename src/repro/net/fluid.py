"""Fluid (analytic) bandwidth-sharing network model.

The frame-based fabrics in :mod:`repro.net.hub` and
:mod:`repro.net.fabric` simulate every transfer frame by frame: a 1 MB
message through the shared hub costs ~16 resource-acquire / timeout /
release event triples, so the *network* — not the cache — dominates
event counts in the fig4–fig8 sweeps.  Mature simulators (SimGrid,
WRENCH) instead use a *fluid* model: treat each in-flight transfer as
a flow with an analytic rate, and recompute rates only when the set of
active flows changes.  That is O(flow churn) events instead of
O(total bytes / frame size).

:class:`FluidFabric` implements max-min fair sharing over the same two
topologies the frame models cover:

* ``mode="hub"`` — one shared link; max-min degenerates to an equal
  split, ``C / n`` per flow, exactly the steady state the hub's FIFO
  frame interleaving approximates.
* ``mode="switch"`` — full-duplex per-port links; a flow crosses the
  sender's TX link and the receiver's RX link, and rates come from
  progressive filling (water-filling): repeatedly find the bottleneck
  link, freeze its flows at the fair share, subtract, repeat.

Event shape per message: one rate recompute at arrival (pure Python,
no events), one :class:`~repro.sim.events.Timer` fire at the earliest
completion (shared by all flows, re-armed on churn), and one base
latency :class:`~repro.sim.events.Timeout` per delivery.

Known divergence from the frame models, documented in DESIGN.md §12:
the switch frame model holds the sender's TX port while waiting for
the receiver's RX port (head-of-line blocking); max-min has no such
coupling, so heavily fan-in-contended switch scenarios can complete in
a different order.  Completion *times* still agree within a few
percent in the scenarios `tests/test_net_fluid.py` sweeps, because
per-flow throughput is bandwidth-limited either way.
"""

from __future__ import annotations

import typing as _t

from repro.net.fabric import Fabric
from repro.sim import Environment, Event, Timeout, Timer

#: A flow whose remaining volume falls below this many bytes at a
#: timer fire is complete.  Float drift in ``remaining -= rate * dt``
#: is bounded by ~1e-10 bytes for megabyte flows; a real sub-byte
#: remainder this small is < 1e-13 s of wire time away from done.
_EPS_BYTES = 1e-6

MODES = ("hub", "switch")


class _Flow:
    """One in-flight transfer under the fluid model."""

    __slots__ = ("fid", "size", "remaining", "rate", "links", "deliver")

    def __init__(
        self,
        fid: int,
        size: int,
        volume: float,
        links: tuple,
        deliver: _t.Callable[[], None],
    ) -> None:
        self.fid = fid
        #: Requested bytes (what accounting reports).
        self.size = size
        #: Bytes still to serve (>= 1 even for empty messages, matching
        #: the frame models' one-minimum-frame charge).
        self.remaining = volume
        #: Current max-min share, bytes/second.
        self.rate = 0.0
        #: Link keys this flow crosses.
        self.links = links
        self.deliver = deliver


class FluidFabric(Fabric):
    """Max-min fair-share fabric: analytic rates, event-minimal.

    API-compatible with the frame fabrics: :meth:`transmit` is the
    generator seam :class:`~repro.net.network.Network` falls back to,
    and :meth:`fast_transmit` — which here covers *every* transfer, not
    just idle single-frame ones — is the callback path it prefers, so
    no per-message :class:`~repro.sim.process.Process` is ever spawned.
    """

    def __init__(
        self,
        env: Environment,
        mode: str = "switch",
        bandwidth_bps: float = 100e6,
        frame_bytes: int = 65536,
        base_latency_s: float = 100e-6,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown fluid mode {mode!r}; have {MODES}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if frame_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {frame_bytes}")
        self.env = env
        self.mode = mode
        self.bandwidth_bps = float(bandwidth_bps)
        #: Kept for config parity with the frame fabrics; the fluid
        #: model itself never fragments (its only role here is the
        #: documented tolerance of the equivalence tests).
        self.frame_bytes = int(frame_bytes)
        self.base_latency_s = float(base_latency_s)
        #: Link capacity, bytes per second.
        self._cap_Bps = self.bandwidth_bps / 8.0
        #: Active flows, keyed by monotone per-fabric flow id
        #: (insertion order == deterministic iteration order).
        self._flows: dict[int, _Flow] = {}
        self._next_fid = 1
        #: Simulated time the flow volumes were last integrated to.
        self._last_update = env.now
        self._timer: Timer = env.timer(self._on_timer)
        # -- contention stats (metrics / instrumentation hooks) ------------
        self.bytes_transferred = 0
        self.flows_started = 0
        self.flows_completed = 0
        self.peak_active_flows = 0
        #: Simulated seconds with at least one active flow.
        self.wire_busy_s = 0.0
        self._busy_since: float | None = None

    # -- timing helpers (frame-fabric-compatible signatures) ---------------
    def frame_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` at full link rate."""
        return nbytes * 8.0 / self.bandwidth_bps

    def transfer_time_unloaded(self, size_bytes: int) -> float:
        """Transfer time if no other flow is active."""
        return self.base_latency_s + self.frame_time(max(size_bytes, 1))

    # -- contention probes ---------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Flows currently sharing the fabric."""
        return len(self._flows)

    @property
    def utilization_queue(self) -> int:
        """Flows beyond the first (contention-depth probe).

        The frame hub reports frames *waiting* for the medium; the
        fluid analogue is how many concurrent flows are squeezing each
        other below full rate.
        """
        return max(0, len(self._flows) - 1)

    def stats_snapshot(self) -> dict[str, _t.Any]:
        """Contention counters for metrics export (see DESIGN.md §12)."""
        busy = self.wire_busy_s
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return {
            "model": f"fluid-{self.mode}",
            "bytes_transferred": self.bytes_transferred,
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "active_flows": len(self._flows),
            "peak_active_flows": self.peak_active_flows,
            "utilization_queue": self.utilization_queue,
            "wire_busy_s": busy,
        }

    # -- transfer entry points ---------------------------------------------
    def fast_transmit(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        deliver: _t.Callable[[], None],
    ) -> bool:
        """Callback path: every fluid transfer qualifies."""
        self.start_flow(src, dst, size_bytes, deliver)
        return True

    def transmit(self, src: str, dst: str, size_bytes: int) -> _t.Generator:
        """Generator seam for callers that yield through the fabric."""
        done = Event(self.env)
        self.start_flow(src, dst, size_bytes, lambda: done.succeed())
        yield done

    def start_flow(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        deliver: _t.Callable[[], None],
    ) -> None:
        """Admit one flow; ``deliver`` runs when its last bit lands
        (wire completion + base latency, like the frame models)."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        self._integrate()
        links = self._links_of(src, dst)
        fid = self._next_fid
        self._next_fid += 1
        # A zero-byte message still occupies the wire for its framing
        # (the frame models charge one minimum-size frame).
        flow = _Flow(fid, size_bytes, float(max(size_bytes, 1)), links, deliver)
        if not self._flows:
            self._busy_since = self.env.now
        self._flows[fid] = flow
        self.flows_started += 1
        if len(self._flows) > self.peak_active_flows:
            self.peak_active_flows = len(self._flows)
        self._reshare()
        self._rearm()

    # -- fluid mechanics -------------------------------------------------------
    def _links_of(self, src: str, dst: str) -> tuple:
        if self.mode == "hub":
            return ("medium",)
        return (("tx", src), ("rx", dst))

    def _integrate(self) -> None:
        """Drain each flow's volume at its current rate up to ``now``."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0.0:
            for flow in self._flows.values():
                remaining = flow.remaining - flow.rate * dt
                flow.remaining = remaining if remaining > 0.0 else 0.0
        self._last_update = now

    def _reshare(self) -> None:
        """Recompute every active flow's max-min fair share."""
        flows = self._flows
        if not flows:
            return
        if self.mode == "hub":
            share = self._cap_Bps / len(flows)
            for flow in flows.values():
                flow.rate = share
            return
        if len(flows) == 1:
            # A lone flow saturates its own ports: progressive filling
            # trivially yields full capacity.  Skipping the link-dict
            # construction matters because single-flow intervals
            # dominate low-contention sweeps.
            next(iter(flows.values())).rate = self._cap_Bps
            return
        # Progressive filling over the per-port links.  Typically a
        # handful of flows and twice as many links, so the quadratic
        # worst case is irrelevant.
        cap: dict[tuple, float] = {}
        members: dict[tuple, list[_Flow]] = {}
        for flow in flows.values():
            for link in flow.links:
                if link not in cap:
                    cap[link] = self._cap_Bps
                    members[link] = []
                members[link].append(flow)
        unfrozen = dict.fromkeys(flows)  # fid -> None, insertion order
        while unfrozen:
            bottleneck_share = min(
                cap[link] / len(mem)
                for link, mem in members.items()
                if mem
            )
            # Freeze every unfrozen flow on every link at the
            # bottleneck share (ties freeze together, deterministically
            # in link-creation order).  The relative slack absorbs
            # ulp-level drift from earlier capacity subtractions — a
            # mathematically tied link left unfrozen would strand its
            # flows on ~zero residual capacity.
            threshold = bottleneck_share * (1.0 + 1e-9)
            frozen: list[_Flow] = []
            for link, mem in members.items():
                if mem and cap[link] / len(mem) <= threshold:
                    frozen.extend(mem)
            for flow in frozen:
                if flow.fid not in unfrozen:
                    continue  # crossed two bottleneck links
                del unfrozen[flow.fid]
                flow.rate = bottleneck_share
                for link in flow.links:
                    members[link].remove(flow)
                    cap[link] -= bottleneck_share
            # Paranoia: progressive filling always freezes at least
            # one flow per round, so this loop terminates.
            assert frozen

    def _rearm(self) -> None:
        """Point the shared timer at the earliest flow completion."""
        if not self._flows:
            self._timer.cancel()
            return
        now = self.env.now
        earliest = min(
            now + flow.remaining / flow.rate for flow in self._flows.values()
        )
        self._timer.arm_at(earliest)

    def _on_timer(self, _timer: Timer) -> None:
        """Complete every flow that has drained; re-share the rest."""
        self._integrate()
        finished = [
            flow
            for flow in self._flows.values()
            if flow.remaining <= _EPS_BYTES
        ]
        env = self.env
        for flow in finished:
            del self._flows[flow.fid]
            self.bytes_transferred += flow.size
            self.flows_completed += 1
            # The last bit has left the wire; the fixed per-message
            # cost (interrupt, protocol stack, propagation) still
            # applies before the receiver sees it, as in the frame
            # models.  Default-arg binding keeps each closure on its
            # own flow.
            Timeout(env, self.base_latency_s).callbacks.append(
                lambda _ev, deliver=flow.deliver: deliver()
            )
        if not self._flows and self._busy_since is not None:
            self.wire_busy_s += env.now - self._busy_since
            self._busy_since = None
        self._reshare()
        self._rearm()
