"""The shared-hub medium: one collision domain at 100 Mbps."""

from __future__ import annotations

import math
import typing as _t

from repro.sim import Environment, Resource


class Hub:
    """A shared Ethernet hub.

    Every frame from every node serialises through one medium; a
    transfer of ``size`` bytes is fragmented into ``frame_bytes``
    quanta so that concurrent flows share bandwidth in FIFO-fair
    slices instead of one flow monopolising the wire for a whole
    multi-megabyte message.

    ``base_latency_s`` models the fixed per-message cost (interrupt,
    protocol stack, propagation) that dominates small transfers.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float = 100e6,
        frame_bytes: int = 65536,
        base_latency_s: float = 100e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if frame_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {frame_bytes}")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.frame_bytes = int(frame_bytes)
        self.base_latency_s = float(base_latency_s)
        self._medium = Resource(env, capacity=1)
        #: Cumulative bytes that crossed the medium (metrics hook).
        self.bytes_transferred = 0
        self.frames_transferred = 0
        #: Simulated seconds the medium spent carrying frames.
        self.wire_busy_s = 0.0

    def frame_time(self, nbytes: int) -> float:
        """Wire time for one frame of ``nbytes``."""
        return nbytes * 8.0 / self.bandwidth_bps

    def transfer_time_unloaded(self, size_bytes: int) -> float:
        """Transfer time if no one else is using the hub.

        Matches what :meth:`transmit` charges frame by frame: each
        re-acquisition of the medium carries at least one minimum-size
        frame, so even a zero-byte message pays one byte of framing on
        the wire.  (Partial final frames charge their actual bytes, so
        for ``size_bytes >= 1`` the per-frame sum telescopes to the
        whole message's wire time.)
        """
        return self.base_latency_s + self.frame_time(max(size_bytes, 1))

    def transmit(self, size_bytes: int) -> _t.Generator:
        """Process body: occupy the medium for ``size_bytes``.

        Yields frame-by-frame so concurrent transmissions interleave.
        Completion of this generator means the last bit has left the
        wire; the caller then delivers the message.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        remaining = size_bytes
        # Even a zero-byte message occupies the wire for its framing.
        nframes = max(1, math.ceil(size_bytes / self.frame_bytes))
        for _ in range(nframes):
            chunk = min(self.frame_bytes, remaining) if remaining else 0
            remaining -= chunk
            wire_s = self.frame_time(max(chunk, 1))
            with self._medium.request() as req:
                yield req
                yield self.env.timeout(wire_s)
            self.bytes_transferred += chunk
            self.frames_transferred += 1
            self.wire_busy_s += wire_s
        yield self.env.timeout(self.base_latency_s)

    @property
    def utilization_queue(self) -> int:
        """Frames currently waiting for the medium (contention probe)."""
        return self._medium.queue_length

    def stats_snapshot(self) -> dict[str, _t.Any]:
        """Contention counters for metrics export (see DESIGN.md §12)."""
        return {
            "model": "frames-hub",
            "bytes_transferred": self.bytes_transferred,
            "frames_transferred": self.frames_transferred,
            "utilization_queue": self._medium.queue_length,
            "wire_busy_s": self.wire_busy_s,
        }
