"""Network: wiring node endpoints together through a fabric."""

from __future__ import annotations

import typing as _t

from repro.net.fabric import Fabric, SwitchedFabric
from repro.net.message import Message
from repro.sim import Environment, Event, Process, Store, Timeout


class Network:
    """Delivers :class:`Message` objects between named nodes.

    Endpoints are ``(node, port)`` pairs, each backed by a FIFO
    :class:`~repro.sim.resources.Store`.  Transmission occupies the
    fabric; local (same-node) delivery bypasses the wire entirely,
    which matters when a compute node doubles as an iod node.
    """

    def __init__(self, env: Environment, fabric: Fabric | None = None) -> None:
        self.env = env
        self.fabric: Fabric = (
            fabric if fabric is not None else SwitchedFabric(env)
        )
        self._endpoints: dict[tuple[str, int], Store] = {}
        #: Inter-shard mailbox of the conservative parallel engine
        #: (:class:`repro.sim.mailbox.InterShardMailbox`), or ``None``
        #: when every node of the cluster lives in this environment.
        #: ``SocketAPI.connect`` consults it to route cross-shard
        #: connections.
        self.shard_router: _t.Any = None
        self.messages_delivered = 0
        #: Loopback messages never touch the fabric but still pay a
        #: small local protocol cost (localhost TCP is not free).
        self.loopback_latency_s = 20e-6
        #: ServiceStats row on the svc instrumentation bus, when a
        #: monitor attached one (see :meth:`attach_bus`).
        self._svc_stats: _t.Any = None

    # -- instrumentation -----------------------------------------------------
    def attach_bus(self, bus: _t.Any) -> None:
        """Register a ``network`` row on a svc instrumentation bus.

        The wire is not a :class:`~repro.svc.service.Service`, but its
        saturation belongs in the same per-daemon report: the row's
        ``handled`` is messages delivered, ``q-high`` the deepest
        contention the fabric ever saw (waiting frames for the frame
        models, concurrent flows beyond the first for the fluid model),
        and ``busy(s)`` the fabric's cumulative wire-busy time.
        """
        stats = bus.register("network")
        stats.state = "running"
        stats.messages_handled = self.messages_delivered
        self._svc_stats = stats

    def _note_delivery(self) -> None:
        """Per-delivery bookkeeping (bus row, when attached)."""
        self.messages_delivered += 1
        stats = self._svc_stats
        if stats is not None:
            stats.messages_handled = self.messages_delivered
            stats.busy_s = getattr(self.fabric, "wire_busy_s", 0.0)

    def stats_snapshot(self) -> dict[str, _t.Any]:
        """Fabric contention counters plus delivery totals."""
        snap = dict(self.fabric.stats_snapshot())
        snap["messages_delivered"] = self.messages_delivered
        return snap

    # -- endpoints ---------------------------------------------------------
    def register(self, node: str, port: int) -> Store:
        """Create the inbox for ``(node, port)``; idempotent."""
        key = (node, port)
        if key not in self._endpoints:
            self._endpoints[key] = Store(self.env)
        return self._endpoints[key]

    def endpoint(self, node: str, port: int) -> Store:
        """The inbox Store of ``(node, port)`` (KeyError if absent)."""
        try:
            return self._endpoints[(node, port)]
        except KeyError:
            raise KeyError(f"no endpoint registered at {node}:{port}") from None

    def has_endpoint(self, node: str, port: int) -> bool:
        """True if ``(node, port)`` is registered."""
        return (node, port) in self._endpoints

    # -- transport ---------------------------------------------------------
    def send(self, message: Message, dst_port: int) -> Event:
        """Asynchronously transmit ``message`` to ``(message.dst, port)``.

        Returns an event firing with the message once it has been
        enqueued at the receiver; yield it for a blocking send.
        """
        inbox = self.endpoint(message.dst, dst_port)  # fail fast
        return self.deliver(message, inbox)

    def deliver(self, message: Message, inbox: Store) -> Event:
        """Transmit ``message`` into ``inbox``; returns the done event.

        The common cases — loopback, and a single-frame transfer over
        idle switched-fabric ports — are driven entirely by scheduled
        callbacks instead of spawning a transmission :class:`Process`
        per message, which is the simulator's per-message hot path.
        Contended or multi-frame transfers fall back to the process.
        """
        env = self.env
        if message.src == message.dst:
            done = Event(env)
            Timeout(env, self.loopback_latency_s).callbacks.append(
                lambda _ev: self._finish_delivery(message, inbox, done)
            )
            return done
        stats = self._svc_stats
        if stats is not None:
            # Sample contention as the message joins the wire — by
            # delivery time its own share of the queue has drained.
            depth = getattr(self.fabric, "utilization_queue", 0)
            if depth > stats.queue_high_water:
                stats.queue_high_water = depth
        fast = getattr(self.fabric, "fast_transmit", None)
        if fast is not None:
            done = Event(env)
            if fast(
                message.src,
                message.dst,
                message.wire_bytes,
                lambda: self._finish_delivery(message, inbox, done),
            ):
                return done
        return env.process(
            self._transmit(message, inbox),
            name=f"xmit-{message.kind}-{message.msg_id}",
        )

    def _finish_delivery(
        self, message: Message, inbox: Store, done: Event
    ) -> None:
        """Enqueue at the receiver, then fire ``done`` (waiting for the
        inbox to admit the message if it is at capacity)."""

        def _admitted(_ev: Event) -> None:
            self._note_delivery()
            done.succeed(message)

        inbox.put(message).add_callback(_admitted)

    def _transmit(self, message: Message, inbox: Store) -> _t.Generator:
        if message.src == message.dst:
            yield self.env.timeout(self.loopback_latency_s)
        else:
            yield from self.fabric.transmit(
                message.src, message.dst, message.wire_bytes
            )
        yield inbox.put(message)
        self._note_delivery()
        return message
