"""Message envelope carried over the simulated network."""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.analysis.reset import register_reset

_msg_ids = itertools.count(1)


def _reset_msg_ids() -> None:
    """Test-reset hook: message ids restart at 1 (see RPL004)."""
    global _msg_ids
    _msg_ids = itertools.count(1)


register_reset(_reset_msg_ids)


@dataclasses.dataclass
class Message:
    """One application-level message.

    ``size_bytes`` is what occupies the wire (header + payload); the
    optional ``payload`` carries real Python data end-to-end so that
    correctness (read-your-writes through every cache path) is testable,
    while pure-performance workloads may leave it ``None`` and let the
    size alone drive the timing model.
    """

    kind: str
    size_bytes: int
    src: str = ""
    dst: str = ""
    payload: _t.Any = None
    #: Correlation id for request/response matching.
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_ids))
    reply_to: int | None = None

    #: Fixed protocol header charged on every message (TCP/IP + PVFS
    #: request framing), matching the granularity the paper's iod
    #: protocol uses.
    HEADER_BYTES: _t.ClassVar[int] = 64

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def wire_bytes(self) -> int:
        """Bytes that actually transit the medium."""
        return self.size_bytes + self.HEADER_BYTES

    def reply(
        self,
        kind: str,
        size_bytes: int,
        payload: _t.Any = None,
    ) -> "Message":
        """Build a response correlated to this message."""
        return Message(
            kind=kind,
            size_bytes=size_bytes,
            src=self.dst,
            dst=self.src,
            payload=payload,
            reply_to=self.msg_id,
        )
