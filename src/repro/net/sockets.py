"""Stream sockets over the simulated network.

``libpvfs`` talks to the metadata server and to each iod over TCP
sockets; the paper's kernel module interposes on exactly these socket
calls.  We reproduce that seam: an :class:`Endpoint` exposes
``send``/``recv``, and the cache module wraps the client-side endpoint
to intercept traffic (see :mod:`repro.cache.module`).

Guarantees mirrored from TCP: per-direction FIFO ordering (enforced
with a per-direction send lock, since hub frame interleaving could
otherwise reorder two in-flight messages), reliable delivery, and
connection-oriented addressing.  Endpoints are keyed by *role*
(client/server), not node name, because a compute node may talk to an
iod daemon on the very same node (loopback).
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.analysis.reset import register_reset
from repro.net.message import Message
from repro.net.network import Network
from repro.sim import Environment, Event, Lock, Process, Store

_conn_ids = itertools.count(1)


def _reset_conn_ids() -> None:
    """Test-reset hook: connection ids restart at 1 (see RPL004)."""
    global _conn_ids
    _conn_ids = itertools.count(1)


register_reset(_reset_conn_ids)

CLIENT = "client"
SERVER = "server"


class Endpoint:
    """One side of a :class:`Connection`."""

    __slots__ = ("conn", "role")

    def __init__(self, conn: "Connection", role: str) -> None:
        self.conn = conn
        self.role = role

    @property
    def node(self) -> str:
        """This endpoint's node name."""
        return (
            self.conn.client_node if self.role == CLIENT else self.conn.server_node
        )

    @property
    def peer_node(self) -> str:
        """The other endpoint's node name."""
        return (
            self.conn.server_node if self.role == CLIENT else self.conn.client_node
        )

    @property
    def env(self) -> Environment:
        """The simulation environment."""
        return self.conn.env

    def send(self, message: Message) -> Event:
        """Transmit ``message`` to the peer endpoint.

        Returns an event firing once the peer has the message queued.
        ``yield`` it to block, or fire-and-forget — FIFO order is
        preserved either way by the per-direction lock.
        """
        return self.conn._send(self.role, message)

    def recv(self):
        """Event yielding the next message queued for this endpoint."""
        return self.conn._inbox[self.role].get()

    def pending(self) -> int:
        """Messages already queued here (non-blocking probe)."""
        return len(self.conn._inbox[self.role])

    def __repr__(self) -> str:
        return f"<Endpoint {self.role}@{self.node} of conn #{self.conn.conn_id}>"


class Connection:
    """A full-duplex ordered message stream between two nodes."""

    def __init__(
        self, network: Network, client_node: str, server_node: str
    ) -> None:
        self.network = network
        self.env: Environment = network.env
        self.client_node = client_node
        self.server_node = server_node
        self.conn_id = next(_conn_ids)
        self._inbox: dict[str, Store] = {
            CLIENT: Store(self.env),
            SERVER: Store(self.env),
        }
        self._send_lock: dict[str, Lock] = {
            CLIENT: Lock(self.env),
            SERVER: Lock(self.env),
        }
        self.client = Endpoint(self, CLIENT)
        self.server = Endpoint(self, SERVER)
        self.closed = False

    def _send(self, from_role: str, message: Message) -> Event:
        if self.closed:
            raise RuntimeError("send on closed connection")
        to_role = SERVER if from_role == CLIENT else CLIENT
        message.src = self.client_node if from_role == CLIENT else self.server_node
        message.dst = self.client_node if to_role == CLIENT else self.server_node
        inbox = self._inbox[to_role]
        lock = self._send_lock[from_role]
        if not lock._holders and not lock._waiting:
            # Uncontended direction (the overwhelmingly common case):
            # take the lock synchronously and hand the message straight
            # to the network's callback-driven delivery — no ordering
            # process needed, FIFO is trivially preserved because the
            # lock is held until delivery completes.
            req = lock.request()
            done = self.network.deliver(message, inbox)
            done.add_callback(lambda _ev: lock.release(req))
            return done

        def _ordered_send() -> _t.Generator:
            with lock.request() as req:
                yield req
                yield self.network.deliver(message, inbox)
            return message

        return self.env.process(
            _ordered_send(), name=f"send-{message.kind}-{message.msg_id}"
        )

    def close(self) -> None:
        """Mark the connection closed (sends then fail)."""
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"<Connection #{self.conn_id} "
            f"{self.client_node}<->{self.server_node}>"
        )


class ListenQueue:
    """A server's accept queue for one port."""

    def __init__(self, env: Environment, node: str, port: int) -> None:
        self.env = env
        self.node = node
        self.port = port
        self._accepts = Store(env)

    def accept(self):
        """Event yielding the server :class:`Endpoint` of the next
        inbound connection."""
        return self._accepts.get()

    def _push(self, endpoint: Endpoint):
        return self._accepts.put(endpoint)


class SocketAPI:
    """Per-node socket interface (the seam the cache module wraps)."""

    #: Cost of establishing a connection (three-way handshake + PVFS
    #: hello), charged to the connecting side.
    CONNECT_COST_S = 300e-6

    def __init__(self, network: Network, node: str) -> None:
        self.network = network
        self.env = network.env
        self.node = node
        self._listeners: dict[int, ListenQueue] = {}

    def listen(self, port: int) -> ListenQueue:
        """Open an accept queue on ``port``."""
        if port in self._listeners:
            raise ValueError(f"{self.node}:{port} is already listening")
        queue = ListenQueue(self.env, self.node, port)
        self._listeners[port] = queue
        registry = getattr(self.network, "_listeners", None)
        if registry is None:
            registry = {}
            self.network._listeners = registry  # type: ignore[attr-defined]
        registry[(self.node, port)] = queue
        return queue

    def connect(self, server_node: str, port: int) -> _t.Generator:
        """Process body: connect to ``server_node:port``.

        Yields until the handshake completes; returns the *client*
        :class:`Endpoint` of the new connection.
        """
        router = self.network.shard_router
        if router is not None and not router.is_local(server_node):
            # Cross-shard connect (DESIGN.md §17): the server lives in
            # another shard's environment.  Pay the handshake cost
            # locally, then hand addressing to the inter-shard mailbox
            # — the SYN envelope creates the server half (and fails
            # loudly if nothing listens) one lookahead quantum later.
            yield self.env.timeout(self.CONNECT_COST_S)
            return router.open_connection(self.node, server_node, port)
        registry = getattr(self.network, "_listeners", {})
        try:
            queue: ListenQueue = registry[(server_node, port)]
        except KeyError:
            raise ConnectionRefusedError(
                f"nothing listening at {server_node}:{port}"
            ) from None
        yield self.env.timeout(self.CONNECT_COST_S)
        conn = Connection(self.network, self.node, server_node)
        yield queue._push(conn.server)
        return conn.client
