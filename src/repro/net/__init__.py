"""Cluster network substrate.

Models the paper's platform: 100 Mbps Ethernet NICs wired through a
single shared *hub* (a Linksys Etherfast 16-port hub in the paper).  A
hub — unlike a switch — is one collision domain, so all concurrent
transfers share the 100 Mbps medium.  We model that by serialising
frame transmissions through one FIFO medium resource; large messages
are fragmented so concurrent flows interleave fairly.

On top of the raw medium, :mod:`repro.net.sockets` provides the
stream-socket abstraction that ``libpvfs`` uses and that the paper's
kernel cache module intercepts.
"""

from repro.net.fabric import Fabric, SharedHubFabric, SwitchedFabric
from repro.net.fluid import FluidFabric
from repro.net.hub import Hub
from repro.net.message import Message
from repro.net.network import Network
from repro.net.sockets import Connection, Endpoint, ListenQueue, SocketAPI

__all__ = [
    "Connection",
    "Endpoint",
    "Fabric",
    "FluidFabric",
    "Hub",
    "ListenQueue",
    "Message",
    "Network",
    "SharedHubFabric",
    "SocketAPI",
    "SwitchedFabric",
]
