"""Fluid network model: timer primitive, equivalence, fairness, stats.

The fluid model's contract (DESIGN.md §12) is validated empirically
here against the frame models it replaces:

* scenario **makespans** (time the last flow completes) agree to well
  under 1%, because both models conserve bytes and link capacity;
* **per-flow** completion times agree within a scenario-dependent
  tolerance — exact for uncontended flows, up to ~20% for equal-size
  contenders and ~35% for mixed sizes, where FIFO frame interleaving
  and max-min sharing legitimately order completions differently.
"""

from __future__ import annotations

import pytest

from repro.analysis.determinism import fig4_point_trace_hash
from repro.cluster.cluster import Cluster
from repro.cluster.config import (
    NET_MODEL_ENV_VAR,
    ClusterConfig,
    CostModel,
)
from repro.net import (
    FluidFabric,
    Network,
    SharedHubFabric,
    SwitchedFabric,
)
from repro.net.fluid import MODES
from repro.sim import Environment, Timeout

MB = 2**20
BW = 100e6
#: Base latency used by every fabric in these tests (the default).
LAT = 100e-6


def _wire_s(nbytes: int) -> float:
    return max(nbytes, 1) * 8.0 / BW


def _frames_fabric(env: Environment, mode: str):
    return SharedHubFabric(env) if mode == "hub" else SwitchedFabric(env)


def _run_flows(fabric, flows):
    """Run ``[(start_s, src, dst, size), ...]``; per-flow finish times."""
    env = fabric.env
    finish: dict[int, float] = {}

    def one(i, start, src, dst, size):
        if start:
            yield env.timeout(start)
        yield from fabric.transmit(src, dst, size)
        finish[i] = env.now

    for i, flow in enumerate(flows):
        env.process(one(i, *flow))
    env.run()
    assert len(finish) == len(flows)
    return [finish[i] for i in range(len(flows))]


# ---------------------------------------------------------------------------
# Timer primitive (sim/events.py)
# ---------------------------------------------------------------------------


def test_timer_starts_idle_and_fires_once():
    env = Environment()
    fired = []
    timer = env.timer(lambda t: fired.append(env.now))
    assert not timer.armed
    timer.arm(5.0)
    assert timer.armed and timer.deadline == 5.0
    env.run()
    assert fired == [5.0]
    assert not timer.armed


def test_timer_cancel_suppresses_fire():
    env = Environment()
    fired = []
    timer = env.timer(lambda t: fired.append(env.now))
    timer.arm(5.0)
    timer.cancel()
    timer.cancel()  # idempotent
    env.run()
    assert fired == []


def test_timer_rearm_supersedes_without_new_event():
    env = Environment()
    fired = []
    timer = env.timer(lambda t: fired.append(env.now))
    timer.arm(10.0)
    timer.arm(3.0)  # earlier deadline wins
    env.run()
    assert fired == [3.0]


def test_timer_rearm_later_discards_stale_entry():
    env = Environment()
    fired = []
    timer = env.timer(lambda t: fired.append(env.now))
    timer.arm(2.0)
    timer.arm_at(7.0)
    env.run()
    assert fired == [7.0]


def test_timer_cancel_then_rearm_same_instant_reuses_entry():
    env = Environment()
    fired = []
    timer = env.timer(lambda t: fired.append(env.now))
    timer.arm_at(4.0)
    timer.cancel()
    timer.arm_at(4.0)
    env.run()
    assert fired == [4.0]


def test_timer_rearm_from_inside_on_fire():
    env = Environment()
    fired = []

    def on_fire(timer):
        fired.append(env.now)
        if len(fired) < 3:
            timer.arm(1.0)

    env.timer(on_fire).arm(1.0)
    env.run()
    assert fired == [1.0, 2.0, 3.0]


def test_timer_rejects_negative_delay_and_past_deadline():
    env = Environment()
    timer = env.timer(lambda t: None)
    with pytest.raises(ValueError):
        timer.arm(-1.0)
    Timeout(env, 5.0)
    env.run()
    assert env.now == 5.0
    with pytest.raises(ValueError):
        timer.arm_at(1.0)


def test_timer_tie_break_is_schedule_order():
    """A timer and a timeout at the same instant fire in arm order."""
    env = Environment()
    order = []
    timer = env.timer(lambda t: order.append("timer"))
    timer.arm(5.0)
    Timeout(env, 5.0).callbacks.append(lambda _ev: order.append("timeout"))
    env.run()
    assert order == ["timer", "timeout"]


# ---------------------------------------------------------------------------
# Fluid fabric basics
# ---------------------------------------------------------------------------


def test_fluid_validation():
    env = Environment()
    with pytest.raises(ValueError):
        FluidFabric(env, mode="token-ring")
    with pytest.raises(ValueError):
        FluidFabric(env, bandwidth_bps=0)
    with pytest.raises(ValueError):
        FluidFabric(env, frame_bytes=0)


def test_fluid_negative_size_rejected():
    env = Environment()
    fab = FluidFabric(env)

    def proc(env):
        yield from fab.transmit("a", "b", -1)

    p = env.process(proc(env))
    env.run()
    assert not p.ok and isinstance(p.value, ValueError)


@pytest.mark.parametrize("mode", MODES)
def test_fluid_single_flow_matches_unloaded_formula(mode):
    env = Environment()
    fab = FluidFabric(env, mode=mode)
    (finish,) = _run_flows(fab, [(0, "a", "b", MB)])
    assert finish == pytest.approx(fab.transfer_time_unloaded(MB), rel=1e-9)


def test_fluid_disjoint_pairs_contend_on_hub_not_switch():
    for mode, factor in (("hub", 2.0), ("switch", 1.0)):
        env = Environment()
        fab = FluidFabric(env, mode=mode)
        finish = _run_flows(fab, [(0, "a", "b", MB), (0, "c", "d", MB)])
        expected = factor * _wire_s(MB) + LAT
        assert max(finish) == pytest.approx(expected, rel=0.01)


# ---------------------------------------------------------------------------
# Equivalence: fluid vs frames, per scenario (DESIGN.md §12 tolerances)
# ---------------------------------------------------------------------------

#: (name, flows, per-flow tolerance).  Makespan tolerance is always
#: MAKESPAN_TOL; the per-flow bound is scenario-dependent because FIFO
#: frame interleaving and max-min sharing order completions
#: differently under contention (documented in DESIGN.md §12).
EQUIVALENCE_SCENARIOS = [
    ("single-1MB", [(0, "a", "b", MB)], 1e-6),
    ("single-64KB", [(0, "a", "b", 65536)], 1e-6),
    ("single-0B", [(0, "a", "b", 0)], 1e-6),
    ("single-frame-multiple", [(0, "a", "b", 4 * 65536)], 1e-6),
    ("pair-1MB", [(0, "a", "b", MB), (0, "c", "d", MB)], 0.05),
    (
        "four-equal",
        [(0, f"s{i}", f"r{i}", 262144) for i in range(4)],
        0.20,
    ),
    (
        "fan-in",
        [(0, f"s{i}", "sink", 262144) for i in range(4)],
        0.20,
    ),
    (
        "mixed-sizes",
        [(0, "a", "b", MB), (0, "c", "d", 65536), (0, "e", "f", 262144)],
        0.35,
    ),
    (
        "staggered",
        [(0, "a", "b", MB), (0.02, "c", "d", MB), (0.04, "e", "f", MB)],
        0.05,
    ),
]

MAKESPAN_TOL = 0.005


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize(
    "name,flows,flow_tol",
    EQUIVALENCE_SCENARIOS,
    ids=[s[0] for s in EQUIVALENCE_SCENARIOS],
)
def test_fluid_matches_frames_per_scenario(mode, name, flows, flow_tol):
    frames = _run_flows(_frames_fabric(Environment(), mode), flows)
    fluid = _run_flows(FluidFabric(Environment(), mode=mode), flows)
    assert max(fluid) == pytest.approx(max(frames), rel=MAKESPAN_TOL), (
        f"{mode}/{name}: makespan diverged"
    )
    for i, (a, b) in enumerate(zip(frames, fluid)):
        # Symmetric relative difference (|a-b| / max), the measure the
        # documented tolerances use; base latency absorbs tiny flows.
        rel = abs(a - b) / max(a, b)
        assert rel <= flow_tol or abs(a - b) <= LAT, (
            f"{mode}/{name}: flow {i} completed at {b} (frames: {a}, "
            f"rel diff {rel:.3f} > {flow_tol})"
        )


# ---------------------------------------------------------------------------
# Fairness: N concurrent flows each get ~1/N of the wire
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 4, 8])
@pytest.mark.parametrize("model", ["frames", "fluid"])
def test_hub_fair_share(model, n):
    """N equal hub flows each sustain ~C/N (both contention models)."""
    env = Environment()
    fab = (
        SharedHubFabric(env)
        if model == "frames"
        else FluidFabric(env, mode="hub")
    )
    size = 262144
    finish = _run_flows(fab, [(0, f"s{i}", f"r{i}", size) for i in range(n)])
    solo = _wire_s(size)
    for t in finish:
        # Finishing by ~n*solo means the flow averaged >= C/n; no flow
        # may be starved below its fair share (beyond one frame skew).
        throughput = size * 8 / (t - LAT)
        assert throughput >= (BW / n) * 0.95, (
            f"flow got {throughput / 1e6:.1f} Mbps, fair share is "
            f"{BW / n / 1e6:.1f} Mbps"
        )
    assert max(finish) == pytest.approx(n * solo + LAT, rel=0.02)


def test_fluid_switch_fan_in_splits_receiver_port():
    env = Environment()
    fab = FluidFabric(env, mode="switch")
    finish = _run_flows(
        fab, [(0, f"s{i}", "sink", 262144) for i in range(4)]
    )
    # All four share sink's RX link equally: each gets 25 Mbps.
    expected = 4 * _wire_s(262144) + LAT
    for t in finish:
        assert t == pytest.approx(expected, rel=1e-6)


# ---------------------------------------------------------------------------
# Edge cases shared by both models
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("model", ["frames", "fluid"])
@pytest.mark.parametrize("size", [0, 1, 65536, 4 * 65536, MB + 1])
def test_unloaded_formula_matches_actual_idle_transfer(model, mode, size):
    """``transfer_time_unloaded`` is exact for what transmit charges.

    Covers the satellite fix: the frame models' formula previously
    ignored per-frame framing, undercharging zero-byte messages (which
    still pay one minimum-size frame on the wire).
    """
    env = Environment()
    fab = (
        _frames_fabric(env, mode)
        if model == "frames"
        else FluidFabric(env, mode=mode)
    )
    (finish,) = _run_flows(fab, [(0, "a", "b", size)])
    assert finish == pytest.approx(
        fab.transfer_time_unloaded(size), rel=1e-9
    )


def test_zero_byte_message_still_occupies_wire():
    """Two zero-byte hub messages serialise their framing charges."""
    for fab in (
        SharedHubFabric(Environment()),
        FluidFabric(Environment(), mode="hub"),
    ):
        finish = _run_flows(fab, [(0, "a", "b", 0), (0, "c", "d", 0)])
        assert max(finish) == pytest.approx(2 * _wire_s(1) + LAT, rel=1e-6)


def test_fluid_accounting_counts_requested_bytes():
    env = Environment()
    fab = FluidFabric(env, mode="hub")
    _run_flows(fab, [(0, "a", "b", 2500), (0, "c", "d", 0)])
    assert fab.bytes_transferred == 2500
    assert fab.flows_completed == 2
    assert fab.active_flows == 0


# ---------------------------------------------------------------------------
# Determinism: trace hash stable per net model
# ---------------------------------------------------------------------------


def test_trace_hash_stable_per_net_model(monkeypatch):
    hashes = {}
    for model in ("frames", "fluid"):
        monkeypatch.setenv(NET_MODEL_ENV_VAR, model)
        first = fig4_point_trace_hash(seed=4242)
        again = fig4_point_trace_hash(seed=4242)
        assert first == again, f"{model} schedule is not reproducible"
        hashes[model] = first
    # The knob must actually select different models.
    assert hashes["frames"] != hashes["fluid"]


def test_frames_hash_ignores_fluid_availability(monkeypatch):
    """Leaving the knob unset is exactly the frames model."""
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    default = fig4_point_trace_hash(seed=99)
    monkeypatch.setenv(NET_MODEL_ENV_VAR, "frames")
    assert fig4_point_trace_hash(seed=99) == default


# ---------------------------------------------------------------------------
# Model selection plumbing
# ---------------------------------------------------------------------------


def test_config_rejects_unknown_net_model():
    with pytest.raises(ValueError):
        ClusterConfig(net_model="carrier-pigeon")


def test_resolved_net_model_precedence(monkeypatch):
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    assert ClusterConfig().resolved_net_model == "frames"
    monkeypatch.setenv(NET_MODEL_ENV_VAR, "fluid")
    assert ClusterConfig().resolved_net_model == "fluid"
    # An explicit config wins over the environment.
    assert ClusterConfig(net_model="frames").resolved_net_model == "frames"
    monkeypatch.setenv(NET_MODEL_ENV_VAR, "smoke-signals")
    with pytest.raises(ValueError):
        ClusterConfig().resolved_net_model


@pytest.mark.parametrize("fabric", ["hub", "switch"])
def test_cluster_builds_fluid_fabric(monkeypatch, fabric):
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    config = ClusterConfig(
        net_model="fluid", costs=CostModel(fabric=fabric)
    )
    cluster = Cluster(config)
    assert isinstance(cluster.network.fabric, FluidFabric)
    assert cluster.network.fabric.mode == fabric
    assert cluster.net_model == "fluid"


# ---------------------------------------------------------------------------
# Contention stats: snapshots, Metrics, svc bus
# ---------------------------------------------------------------------------


def test_hub_stats_snapshot_and_busy_time():
    env = Environment()
    fab = SharedHubFabric(env)
    _run_flows(fab, [(0, "a", "b", 65536)])
    snap = fab.stats_snapshot()
    assert snap["model"] == "frames-hub"
    assert snap["bytes_transferred"] == 65536
    assert snap["frames_transferred"] == 1
    assert snap["wire_busy_s"] == pytest.approx(_wire_s(65536))


def test_fluid_stats_snapshot_tracks_contention():
    env = Environment()
    fab = FluidFabric(env, mode="hub")
    seen = {}

    def probe(env):
        yield env.timeout(0.001)
        seen["active"] = fab.active_flows
        seen["queue"] = fab.utilization_queue

    env.process(probe(env))
    _run_flows(fab, [(0, "a", "b", MB), (0, "c", "d", MB)])
    assert seen == {"active": 2, "queue": 1}
    snap = fab.stats_snapshot()
    assert snap["model"] == "fluid-hub"
    assert snap["flows_started"] == snap["flows_completed"] == 2
    assert snap["peak_active_flows"] == 2
    assert snap["active_flows"] == 0
    # Two equal flows share the wire for their combined volume.
    assert snap["wire_busy_s"] == pytest.approx(2 * _wire_s(MB), rel=1e-6)


@pytest.mark.parametrize("model", ["frames", "fluid"])
def test_network_saturation_reaches_metrics_and_bus(model):
    from repro.svc.events import get_bus
    from repro.workload import MicroBenchmark, MicroBenchParams
    from tests.conftest import make_cluster

    cluster = make_cluster(net_model=model)
    bus = get_bus(cluster.env)
    cluster.network.attach_bus(bus)
    params = MicroBenchParams(
        nodes=cluster.config.compute_node_names(),
        request_size=65536,
        iterations=4,
        mode="write",
        locality=0.0,
        partition_bytes=MB,
    )
    procs = MicroBenchmark(params).spawn(cluster)
    cluster.env.run(until=cluster.env.all_of(procs))
    snap = cluster.record_network_metrics()
    assert snap["messages_delivered"] > 0
    # record_network_metrics folded the snapshot into net.* counters.
    assert cluster.metrics.counters["net.messages_delivered"] > 0
    assert cluster.metrics.counters["net.bytes_transferred"] > 0
    # The bus row mirrors delivery totals and wire-busy time.
    stats = bus.stats["network"]
    assert stats.messages_handled == snap["messages_delivered"]
    assert stats.busy_s == pytest.approx(snap["wire_busy_s"])
