"""Drain semantics: drain() then kill loses nothing; bare stop() reports it."""

import pytest

from repro.disk.model import DiskModel
from repro.disk.writeback import WritebackDaemon, WritebackItem
from repro.sim import Environment

from tests.conftest import make_cluster, run_app

DATA = bytes(range(256)) * 64  # 16 KiB of recognisable bytes


def _dirty_up(cluster, node="node0", path="/data/f"):
    """Write real payload bytes through the cache; returns the handle."""
    client = cluster.client(node)
    state = {}

    def app(env):
        handle = yield from client.open(path)
        yield from client.write(handle, 0, len(DATA), DATA)
        state["handle"] = handle

    run_app(cluster, app(cluster.env))
    return state["handle"]


def test_drain_then_kill_loses_zero_dirty_blocks():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    _dirty_up(cluster)
    module = cluster.cache_modules["node0"]
    assert module.manager.n_dirty > 0  # the write really was cached dirty

    # Drain the writer node (cache flusher), then the storage nodes
    # (disk writeback), exactly as an orderly shutdown would.
    run_app(cluster, cluster.drain_node("node0"))
    assert module.manager.n_dirty == 0
    for name in cluster.iod_nodes:
        run_app(cluster, cluster.drain_node(name))

    # The flushed bytes must now be readable from a *different* node.
    reader = cluster.client("node1")

    def check(env):
        handle = yield from reader.open("/data/f")
        data = yield from reader.read(handle, 0, len(DATA), want_data=True)
        assert data == DATA

    run_app(cluster, check(cluster.env))

    # Kill everything: a post-drain stop drops no work anywhere.
    reports = cluster.stop_services()
    for report in reports:
        for entry in report.flat():
            assert entry.total_dropped == 0, entry


def test_stop_without_drain_reports_dropped_blocks():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    _dirty_up(cluster)
    module = cluster.cache_modules["node0"]
    n_dirty = module.manager.n_dirty
    assert n_dirty > 0

    reports = cluster.stop_node("node0")
    (module_report,) = [r for r in reports if r.service.startswith("cache-")]
    flusher_reports = [
        r for r in module_report.flat() if r.service.startswith("flusher-")
    ]
    assert flusher_reports[0].dropped == {"dirty_blocks": n_dirty}
    assert module_report.total_dropped == n_dirty
    # The always-on stats table records the loss too.
    assert module.flusher.svc_stats.dropped == {"dirty_blocks": n_dirty}


def test_writeback_drain_then_stop_is_clean():
    env = Environment()
    daemon = WritebackDaemon(env, DiskModel(env))
    daemon.start()

    def app(env):
        for i in range(4):
            yield from daemon.submit(WritebackItem(1, i * 65536, 65536))
        yield from daemon.drain()

    run = env.process(app(env))
    env.run(until=run)
    assert daemon.idle()
    assert daemon.items_written == 4
    assert daemon.bytes_written == 4 * 65536
    report = daemon.stop()
    assert report.dropped == {}


def test_writeback_stop_without_drain_reports_backlog():
    env = Environment()
    daemon = WritebackDaemon(env, DiskModel(env))
    daemon.start()

    def app(env):
        for i in range(4):
            yield from daemon.submit(WritebackItem(1, i * 65536, 65536))

    env.run(until=env.process(app(env)))
    # Submissions are instant; the slow disk still owes all the bytes.
    assert daemon.dirty_bytes == 4 * 65536
    report = daemon.stop()
    assert report.dropped["dirty_bytes"] == 4 * 65536
    assert report.dropped["queued_items"] >= 1
    assert report.total_dropped > 0


@pytest.mark.usefixtures("_reset_module_counters")
def test_drain_semantics_under_sanitizer(monkeypatch):
    """The drain/stop paths hold up with REPRO_SANITIZE=1 checking."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    _dirty_up(cluster)
    run_app(cluster, cluster.drain_node("node0"))
    assert cluster.cache_modules["node0"].manager.n_dirty == 0
    reports = cluster.stop_node("node0")
    assert all(
        entry.total_dropped == 0 for r in reports for entry in r.flat()
    )
