"""Open-loop workload generation: samplers, traces, measurement.

The sampler tests pin golden first-20-draw streams per seed — the
open-loop generator's determinism contract is that a workload is a
pure function of its parameters, on any host, serially and inside
``repro.experiments.parallel`` sweep workers.
"""

import math

import pytest

from repro.experiments import parallel
from repro.workload.openloop import (
    MMPPArrivals,
    OpenLoopParams,
    PoissonArrivals,
    ZipfSampler,
    generate,
    is_open_loop,
    offered_load_stats,
    report_from_series,
    run_open_loop,
)
from repro.workload.trace import validate_trace

# -- golden streams (first 20 draws per seed) --------------------------------

GOLDEN_ZIPF = {
    0: [28, 0, 63, 63, 63, 63, 2, 0, 23, 47, 0, 10, 63, 15, 19, 1, 0, 63, 63, 2],
    7: [63, 0, 63, 2, 1, 9, 1, 22, 0, 26, 8, 0, 49, 3, 63, 0, 3, 0, 2, 63],
}

GOLDEN_POISSON = {
    0: [
        0.000679932, 0.001019597, 1.9807e-05, 2.269e-06, 0.000550343,
        0.00162994, 0.000673583, 0.000755301, 0.002816786, 0.006057753,
        0.003286428, 1.288e-06, 0.002269095, 7.2498e-05, 0.0010694,
        0.000848933, 0.003149909, 0.00035401, 0.000307111, 0.001492219,
    ],
    7: [
        0.000707529, 0.001025203, 0.000568549, 0.00089511, 0.000206533,
        0.003383637, 9.754e-06, 0.002809216, 0.000575333, 0.000300534,
        0.000541136, 0.000312146, 0.00089977, 0.001073701, 0.00188425,
        0.000222071, 0.003144673, 0.000735857, 0.000348373, 0.000883565,
    ],
}

GOLDEN_MMPP = {
    0: [
        0.000254899, 4.952e-06, 5.67e-07, 0.000137586, 0.000407485,
        0.000168396, 0.000188825, 0.000704196, 0.001514438, 0.000821607,
        3.22e-07, 0.000567274, 1.8124e-05, 0.00026735, 0.000212233,
        0.000787477, 8.8503e-05, 7.6778e-05, 0.000373055, 9.251e-06,
    ],
    7: [
        0.000256301, 0.000142137, 0.000223777, 5.1633e-05, 0.000845909,
        2.438e-06, 0.000702304, 0.000143833, 7.5134e-05, 0.000135284,
        7.8036e-05, 0.000224943, 0.000268425, 0.000471063, 5.5518e-05,
        0.000786168, 0.000183964, 8.7093e-05, 0.000220891, 1.8765e-05,
    ],
}


def zipf_first20(seed: int) -> list[int]:
    """Module-level so parallel sweep workers can pickle it."""
    return ZipfSampler(1.3, 64, seed).draws(20)


def poisson_first20(seed: int) -> list[float]:
    return [round(g, 9) for g in PoissonArrivals(1000.0, seed).gaps(20)]


def mmpp_first20(seed: int) -> list[float]:
    sampler = MMPPArrivals(
        1000.0, seed, burst_factor=4.0, on_fraction=0.25, cycle_s=0.2
    )
    return [round(g, 9) for g in sampler.gaps(20)]


@pytest.mark.parametrize("seed", sorted(GOLDEN_ZIPF))
def test_zipf_golden_stream(seed):
    assert zipf_first20(seed) == GOLDEN_ZIPF[seed]


@pytest.mark.parametrize("seed", sorted(GOLDEN_POISSON))
def test_poisson_golden_stream(seed):
    assert poisson_first20(seed) == GOLDEN_POISSON[seed]


@pytest.mark.parametrize("seed", sorted(GOLDEN_MMPP))
def test_mmpp_golden_stream(seed):
    assert mmpp_first20(seed) == GOLDEN_MMPP[seed]


def test_sampler_streams_identical_in_parallel_workers(monkeypatch):
    """The same seed yields the same stream inside sweep workers."""
    monkeypatch.delenv(parallel.WORKERS_ENV_VAR, raising=False)
    seeds = sorted(GOLDEN_ZIPF)
    points = [(s,) for s in seeds]
    assert parallel.sweep(points, zipf_first20, max_workers=2) == [
        GOLDEN_ZIPF[s] for s in seeds
    ]
    assert parallel.sweep(points, poisson_first20, max_workers=2) == [
        GOLDEN_POISSON[s] for s in seeds
    ]
    assert parallel.sweep(points, mmpp_first20, max_workers=2) == [
        GOLDEN_MMPP[s] for s in seeds
    ]


# -- sampler semantics --------------------------------------------------------


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(1.0, 64, 0)
    with pytest.raises(ValueError):
        ZipfSampler(1.3, 0, 0)


def test_zipf_draws_stay_in_namespace():
    draws = ZipfSampler(1.1, 8, 123).draws(500)
    assert all(0 <= r < 8 for r in draws)
    # Heavy tail: rank 0 dominates.
    assert draws.count(0) > draws.count(7 - 1)


def test_poisson_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0, 0)


def test_poisson_mean_rate():
    gaps = PoissonArrivals(500.0, 42).gaps(4000)
    assert sum(gaps) / len(gaps) == pytest.approx(1 / 500.0, rel=0.1)


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MMPPArrivals(0.0, 0)
    with pytest.raises(ValueError):
        MMPPArrivals(100.0, 0, burst_factor=0.5)
    with pytest.raises(ValueError):
        MMPPArrivals(100.0, 0, on_fraction=1.0)
    with pytest.raises(ValueError):
        MMPPArrivals(100.0, 0, cycle_s=0.0)
    with pytest.raises(ValueError):
        # OFF rate would go negative.
        MMPPArrivals(100.0, 0, burst_factor=5.0, on_fraction=0.25)


def test_mmpp_long_run_rate_matches_configured():
    sampler = MMPPArrivals(1000.0, 9, burst_factor=4.0, on_fraction=0.25)
    gaps = sampler.gaps(20000)
    assert sum(gaps) / len(gaps) == pytest.approx(1e-3, rel=0.1)


def test_mmpp_is_burstier_than_poisson():
    """Squared coefficient of variation > 1 distinguishes MMPP."""

    def scv(gaps):
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var / mean**2

    mmpp = MMPPArrivals(1000.0, 5, burst_factor=4.0, on_fraction=0.25)
    poisson = PoissonArrivals(1000.0, 5)
    assert scv(mmpp.gaps(8000)) > scv(poisson.gaps(8000))


# -- parameter validation ------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"processes": 0},
        {"duration_s": 0.0},
        {"rate_ops_s": 0.0},
        {"arrival": "uniform"},
        {"n_files": 0},
        {"sharing": 1.5},
        {"churn": -0.1},
        {"read_fraction": 0.8, "write_fraction": 0.4},
        {"access": "random"},
        {"request_bytes": 0},
        {"file_bytes": 1024, "request_bytes": 4096},
        {"stride_count": 0},
        {"stride_bytes": -1},
        {"stride_count": 4, "stride_bytes": 1 << 19, "file_bytes": 1 << 20},
    ],
)
def test_params_validation(kwargs):
    with pytest.raises(ValueError):
        OpenLoopParams(**kwargs)


def test_request_span_strided():
    params = OpenLoopParams(stride_count=4, stride_bytes=16384)
    assert params.request_span == 3 * 16384 + 4096
    assert OpenLoopParams().request_span == 4096


# -- generation ----------------------------------------------------------------


def test_generate_is_deterministic():
    params = OpenLoopParams(processes=3, duration_s=0.2, rate_ops_s=600, seed=5)
    assert generate(params).content_hash() == generate(params).content_hash()


def test_generate_different_seeds_differ():
    base = OpenLoopParams(processes=3, duration_s=0.2, rate_ops_s=600, seed=5)
    other = OpenLoopParams(processes=3, duration_s=0.2, rate_ops_s=600, seed=6)
    assert generate(base).content_hash() != generate(other).content_hash()


def test_generate_meta_and_shape():
    params = OpenLoopParams(processes=4, duration_s=0.25, rate_ops_s=800, seed=1)
    trace = generate(params)
    assert is_open_loop(trace)
    assert trace.meta["offered_ops"] == len(trace.events)
    assert trace.meta["arrival"] == "poisson"
    assert set(e.process for e in trace.events) <= set(params.process_names())
    assert all(0 < e.time <= params.duration_s for e in trace.events)
    assert all(e.nbytes == params.request_bytes for e in trace.events)
    assert validate_trace(trace) == []


def test_generate_op_mix_respects_fractions():
    params = OpenLoopParams(
        processes=2,
        duration_s=1.0,
        rate_ops_s=2000,
        read_fraction=1.0,
        write_fraction=0.0,
        seed=2,
    )
    assert set(e.op for e in generate(params).events) == {"read"}


def test_generate_sharing_namespaces():
    all_shared = generate(
        OpenLoopParams(processes=2, duration_s=0.5, rate_ops_s=400,
                       sharing=1.0, seed=3)
    )
    assert all(e.path.startswith("/shared/") for e in all_shared.events)
    private = generate(
        OpenLoopParams(processes=2, duration_s=0.5, rate_ops_s=400,
                       sharing=0.0, seed=3)
    )
    assert all(e.path.startswith("/p") for e in private.events)


def test_generate_churn_creates_fresh_files():
    trace = generate(
        OpenLoopParams(processes=2, duration_s=0.5, rate_ops_s=400,
                       churn=1.0, seed=4)
    )
    # Every path is unique: pure namespace churn.
    paths = [e.path for e in trace.events]
    assert len(set(paths)) == len(paths)
    assert all("/new" in p for p in paths)


def test_generate_strided_shape():
    trace = generate(
        OpenLoopParams(processes=1, duration_s=0.2, rate_ops_s=300,
                       stride_count=4, stride_bytes=16384, seed=5)
    )
    assert trace.events
    assert all(e.is_list and e.count == 4 for e in trace.events)


def test_generate_uniform_offsets_are_request_aligned():
    params = OpenLoopParams(
        processes=2, duration_s=0.3, rate_ops_s=500,
        access="uniform", file_bytes=1 << 20, seed=6,
    )
    trace = generate(params)
    offsets = {e.offset for e in trace.events}
    assert len(offsets) > 1  # actually spread
    assert all(off % params.request_bytes == 0 for off in offsets)
    assert all(
        off + params.request_span <= params.file_bytes for off in offsets
    )


def test_generate_seq_cursors_wrap():
    params = OpenLoopParams(
        processes=1, duration_s=0.5, rate_ops_s=600, n_files=1,
        sharing=1.0, file_bytes=16384, seed=7,
    )
    trace = generate(params)
    offsets = [e.offset for e in trace.events]
    assert max(offsets) + params.request_bytes <= params.file_bytes
    assert offsets.count(0) > 1  # wrapped at least once


# -- offered-load stats and validation ------------------------------------------


def test_offered_load_stats():
    params = OpenLoopParams(processes=4, duration_s=0.5, rate_ops_s=800, seed=8)
    trace = generate(params)
    load = offered_load_stats(trace)
    assert load["offered_ops"] == len(trace.events)
    # Uses the declared horizon as denominator, not the span.
    assert load["offered_ops_per_s"] == pytest.approx(
        len(trace.events) / 0.5
    )
    assert load["per_process_ops_per_s"] == pytest.approx(
        load["offered_ops_per_s"] / 4
    )


def test_offered_load_stats_empty_trace():
    from repro.workload.trace import Trace

    assert offered_load_stats(Trace([]))["offered_ops"] == 0


def test_validate_trace_open_loop_skips_zero_byte_heuristic():
    from repro.workload.trace import Trace, TraceEvent

    events = [
        TraceEvent(
            time=0.1, process="p0", path="/a", op="read", offset=0, nbytes=0
        )
    ]
    closed = Trace(list(events))
    assert "every event transfers zero bytes" in validate_trace(closed)
    opened = Trace(list(events), meta={"open_loop": True})
    assert validate_trace(opened) == []


def test_validate_trace_open_loop_checks_declared_meta():
    params = OpenLoopParams(processes=2, duration_s=0.2, rate_ops_s=500, seed=9)
    trace = generate(params)
    trace.meta["offered_ops"] = len(trace.events) + 3
    issues = validate_trace(trace)
    assert any("offered ops" in issue for issue in issues)
    trace.meta["offered_ops"] = len(trace.events)
    trace.meta["duration_s"] = trace.events[-1].time / 2
    issues = validate_trace(trace)
    assert any("schedule horizon" in issue for issue in issues)


def test_cli_validate_reports_offered_load(tmp_path, capsys):
    from repro.workload.__main__ import main

    trace = generate(
        OpenLoopParams(processes=2, duration_s=0.3, rate_ops_s=600, seed=10)
    )
    path = tmp_path / "ol.jsonl"
    path.write_text(trace.dumps())
    assert main(["validate", "--trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "offered load" in out


# -- measurement -----------------------------------------------------------------


def test_report_percentiles_and_saturation():
    params = OpenLoopParams(processes=1, duration_s=1.0, rate_ops_s=100, seed=11)
    trace = generate(params)
    series = {"client.read_latency": [0.001 * (i + 1) for i in range(100)]}
    report = report_from_series(trace, makespan_s=1.0, series=series)
    assert report.p50_s == pytest.approx(0.050)
    assert report.p95_s == pytest.approx(0.095)
    assert report.p99_s == pytest.approx(0.099)
    assert not report.saturated
    behind = report_from_series(trace, makespan_s=2.0, series=series)
    assert behind.saturated
    assert behind.completed_ops_per_s == pytest.approx(
        report.completed_ops_per_s / 2
    )


def test_report_empty_series_is_nan():
    trace = generate(
        OpenLoopParams(processes=1, duration_s=0.1, rate_ops_s=100, seed=12)
    )
    report = report_from_series(trace, makespan_s=0.1, series={})
    assert math.isnan(report.p50_s)


def test_run_open_loop_unsaturated_cluster():
    from repro.cluster.config import ClusterConfig

    # Cold 4 KB reads cost ~40 ms (disk + wire), so stay well under
    # that: 10 ops/s per process leaves 100 ms between arrivals.
    params = OpenLoopParams(
        processes=4, duration_s=0.25, rate_ops_s=40,
        read_fraction=1.0, write_fraction=0.0, seed=13,
    )
    report = run_open_loop(ClusterConfig(compute_nodes=4, iod_nodes=4), params)
    assert report.offered_ops > 0
    assert report.makespan_s > 0
    # Light load: the run keeps up with its arrival schedule.
    assert not report.saturated
    assert report.completed_ops_per_s >= report.offered_ops_per_s * 0.9
    assert report.p50_s > 0
