"""Unit + property tests for the open-hashing block table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import CacheBlock
from repro.cache.hashtable import BlockHashTable, _next_prime
from repro.sim import Environment


def _resident_block(index, key):
    env = Environment()
    b = CacheBlock(index, 4096)
    b.assign(key, env.event())
    return b


def test_next_prime():
    assert _next_prime(2) == 2
    assert _next_prime(4) == 5
    assert _next_prime(90) == 97
    assert _next_prime(600) == 601


def test_bucket_hint_validation():
    with pytest.raises(ValueError):
        BlockHashTable(n_buckets_hint=0)


def test_insert_get_remove():
    t = BlockHashTable(n_buckets_hint=7)
    b = _resident_block(0, (1, 5))
    t.insert(b)
    assert len(t) == 1
    assert (1, 5) in t
    assert t.get((1, 5)) is b
    assert t.get((1, 6)) is None
    t.remove(b)
    assert len(t) == 0
    assert t.get((1, 5)) is None


def test_duplicate_insert_rejected():
    t = BlockHashTable()
    t.insert(_resident_block(0, (1, 5)))
    with pytest.raises(KeyError):
        t.insert(_resident_block(1, (1, 5)))


def test_insert_keyless_rejected():
    t = BlockHashTable()
    with pytest.raises(ValueError):
        t.insert(CacheBlock(0, 4096))


def test_remove_absent_raises():
    t = BlockHashTable()
    b = _resident_block(0, (1, 5))
    with pytest.raises(KeyError):
        t.remove(b)
    with pytest.raises(ValueError):
        t.remove(CacheBlock(1, 4096))


def test_chaining_many_keys_one_bucket():
    t = BlockHashTable(n_buckets_hint=2)  # tiny: forces chains
    blocks = [_resident_block(i, (1, i)) for i in range(20)]
    for b in blocks:
        t.insert(b)
    assert len(t) == 20
    for b in blocks:
        assert t.get(b.key) is b
    assert sum(t.chain_lengths()) == 20


def test_blocks_iterates_all():
    t = BlockHashTable()
    keys = {(1, i) for i in range(10)}
    for i, k in enumerate(keys):
        t.insert(_resident_block(i, k))
    assert {b.key for b in t.blocks()} == keys


keys_strategy = st.lists(
    st.tuples(st.integers(1, 5), st.integers(0, 50)), max_size=30
)


@settings(max_examples=150)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["insert", "remove"]),
              st.tuples(st.integers(1, 3), st.integers(0, 10))),
    max_size=40,
))
def test_property_matches_dict_model(ops):
    """The chained table behaves exactly like a dict."""
    t = BlockHashTable(n_buckets_hint=3)  # force heavy chaining
    model: dict = {}
    counter = 0
    for op, key in ops:
        if op == "insert":
            if key in model:
                with pytest.raises(KeyError):
                    t.insert(_resident_block(counter, key))
            else:
                b = _resident_block(counter, key)
                t.insert(b)
                model[key] = b
            counter += 1
        else:
            if key in model:
                t.remove(model.pop(key))
            # removing absent key needs a block handle; skip
    assert len(t) == len(model)
    for key, block in model.items():
        assert t.get(key) is block
    assert {b.key for b in t.blocks()} == set(model)
