"""Unit tests for the BufferManager."""

import pytest

from repro.cache.block import BlockState
from repro.cache.manager import BufferManager
from repro.cluster.config import CacheConfig
from repro.metrics import Metrics
from repro.sim import Environment


def _manager(n_blocks=8, replacement="clock"):
    env = Environment()
    config = CacheConfig(
        size_bytes=n_blocks * 4096,
        block_size=4096,
        replacement=replacement,
        low_watermark=0.25,
        high_watermark=0.5,
    )
    return env, BufferManager(env, config, Metrics())


def test_initial_state():
    env, m = _manager(8)
    assert m.n_free == 8
    assert m.n_resident == 0
    assert m.n_dirty == 0
    assert m.lookup((1, 0)) is None


def test_exact_lru_policy_selected():
    env, m = _manager(replacement="exact-lru")
    from repro.cache.clock import ExactLRUPolicy

    assert isinstance(m.policy, ExactLRUPolicy)


def test_allocate_then_lookup():
    env, m = _manager()
    result = {}

    def proc(env):
        block, resident = yield from m.get_or_allocate((1, 0))
        result["first"] = (block, resident)
        block2, resident2 = yield from m.get_or_allocate((1, 0))
        result["second"] = (block2, resident2)

    env.process(proc(env))
    env.run()
    block, resident = result["first"]
    assert resident is False
    assert block.state is BlockState.PENDING
    block2, resident2 = result["second"]
    assert resident2 is True
    assert block2 is block
    assert m.lookup((1, 0)) is block
    assert m.n_resident == 1
    assert m.n_free == 7


def test_concurrent_allocations_coalesce():
    """Two processes missing the same key get the SAME block."""
    env, m = _manager()
    got = []

    def proc(env, tag):
        block, resident = yield from m.get_or_allocate((1, 7))
        got.append((tag, block, resident))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert len(got) == 2
    assert got[0][1] is got[1][1]
    assert m.metrics.count("cache.allocations") == 1


def test_concurrent_different_keys_distinct_blocks():
    env, m = _manager()
    got = []

    def proc(env, key):
        block, _ = yield from m.get_or_allocate(key)
        got.append(block)

    env.process(proc(env, (1, 0)))
    env.process(proc(env, (1, 1)))
    env.run()
    assert got[0] is not got[1]


def test_note_write_and_cleaned():
    env, m = _manager()

    def proc(env):
        block, _ = yield from m.get_or_allocate((1, 0))
        block.write(0, 10, None)
        m.note_write(block)
        assert m.n_dirty == 1
        epoch = block.dirty_epoch
        assert m.note_cleaned(block, epoch) is True
        assert m.n_dirty == 0
        assert block.state is BlockState.CLEAN

    p = env.process(proc(env))
    env.run()
    assert p.ok


def test_note_cleaned_raced_epoch():
    env, m = _manager()

    def proc(env):
        block, _ = yield from m.get_or_allocate((1, 0))
        block.write(0, 10, None)
        m.note_write(block)
        old_epoch = block.dirty_epoch
        block.write(10, 20, None)  # race: rewritten during flush
        assert m.note_cleaned(block, old_epoch) is False
        assert m.n_dirty == 1

    p = env.process(proc(env))
    env.run()
    assert p.ok


def test_evict_clean_returns_to_freelist():
    env, m = _manager()

    def proc(env):
        block, _ = yield from m.get_or_allocate((1, 0))
        block.make_ready()
        m.evict(block)
        assert m.n_free == 8
        assert m.lookup((1, 0)) is None
        assert block.state is BlockState.FREE

    p = env.process(proc(env))
    env.run()
    assert p.ok


def test_evict_guards():
    env, m = _manager()

    def proc(env):
        block, _ = yield from m.get_or_allocate((1, 0))
        block.make_ready()
        block.pin()
        with pytest.raises(ValueError):
            m.evict(block)
        block.unpin()
        block.write(0, 10, None)
        m.note_write(block)
        with pytest.raises(ValueError):
            m.evict(block)  # dirty without force
        m.evict(block, force=True)
        assert block.state is BlockState.FREE
        free = [b for b in m.blocks if b.state is BlockState.FREE][0]
        with pytest.raises(ValueError):
            m.evict(free)

    p = env.process(proc(env))
    env.run()
    assert p.ok, p.value


def test_invalidate_semantics():
    env, m = _manager()

    def proc(env):
        assert m.invalidate((9, 9)) is False  # absent
        block, _ = yield from m.get_or_allocate((1, 0))
        # PENDING: doomed, so the fetch path discards the in-flight
        # fill instead of publishing possibly-stale bytes.
        assert m.invalidate((1, 0)) is True
        assert block.doomed
        block.make_ready()
        # pinned: deferred
        block.pin()
        assert m.invalidate((1, 0)) is True
        assert block.doomed
        assert m.lookup((1, 0)) is block  # still resident while pinned
        m.unpin(block)
        assert m.lookup((1, 0)) is None  # dropped at unpin
        # plain resident: immediate
        block2, _ = yield from m.get_or_allocate((1, 1))
        block2.make_ready()
        assert m.invalidate((1, 1)) is True
        assert m.lookup((1, 1)) is None

    p = env.process(proc(env))
    env.run()
    assert p.ok, p.value


def test_invalidate_dirty_forces_drop():
    env, m = _manager()

    def proc(env):
        block, _ = yield from m.get_or_allocate((1, 0))
        block.write(0, 10, None)
        m.note_write(block)
        assert m.invalidate((1, 0)) is True
        assert m.n_dirty == 0
        assert block.state is BlockState.FREE

    p = env.process(proc(env))
    env.run()
    assert p.ok, p.value


def test_allocation_exhaustion_waits_for_eviction():
    env, m = _manager(n_blocks=2)
    log = []

    def filler(env):
        b0, _ = yield from m.get_or_allocate((1, 0))
        b1, _ = yield from m.get_or_allocate((1, 1))
        b0.make_ready()
        b1.make_ready()
        log.append(("filled", env.now))
        yield env.timeout(10)
        m.evict(b0)
        log.append(("evicted", env.now))

    def late(env):
        yield env.timeout(1)
        block, _ = yield from m.get_or_allocate((1, 2))
        log.append(("allocated", env.now))

    env.process(filler(env))
    env.process(late(env))
    env.run()
    assert ("allocated", 10.0) in log


def test_resident_keys_snapshot():
    env, m = _manager()

    def proc(env):
        for i in range(3):
            block, _ = yield from m.get_or_allocate((1, i))
            block.make_ready()

    env.process(proc(env))
    env.run()
    assert m.resident_keys() == {(1, 0), (1, 1), (1, 2)}


def test_select_victims_passthrough():
    env, m = _manager()

    def proc(env):
        for i in range(4):
            block, _ = yield from m.get_or_allocate((1, i))
            block.make_ready()
            block.refbit = False

    env.process(proc(env))
    env.run()
    victims = m.select_victims(2)
    assert len(victims) == 2
