"""Seeded lint fixture: every RPL rule must fire on this file.

Never imported at runtime — :mod:`tests.test_analysis_lint` parses it
to prove the custom lint catches each hazard class (and that ``noqa``
suppression works).  Keep the hazards, they are the point.
"""

import heapq  # RPL006: timestamp heap outside repro.sim

shared_registry = {}  # RPL004: mutable module state, no reset hook

suppressed_registry = []  # noqa: RPL004 -- proves suppression works


def helper_steps(env):
    """A yielding helper (generator function)."""
    yield env.timeout(1.0)
    return 42


def mutable_default(values=[]):  # RPL003: shared across calls
    """Classic mutable-default hazard."""
    values.append(1)
    return values


def run(env):
    """Misuses of the yielding helper plus a bare except."""
    helper_steps(env)  # RPL001: generator built and discarded
    yield helper_steps(env)  # RPL002: yields a raw generator
    try:
        yield env.timeout(1.0)
    except:  # RPL005: bare except swallows GeneratorExit
        pass


def swallows_kill(env):
    """Swallowing GeneratorExit inside a generator breaks kill()."""
    try:
        yield env.timeout(1.0)
    except GeneratorExit:  # RPL005: no re-raise
        pass


def peek_other_shard(runner):
    """Cross-shard reach-through the mailbox API is meant to prevent."""
    return runner.shards[0].env  # RPL007: bypasses the inter-shard mailbox
