"""Flow-analyzer fixture: RPL101 yield-inside-atomic seeds."""

from repro.analysis.sanitize import atomic_section
from repro.analysis.shared import shared_state


@shared_state("table")
class Sectioned:
    def __init__(self, env):
        self.env = env
        self.table = {}

    def yields_inside_section(self, key):
        with atomic_section(self.table, label="bad_section"):
            value = self.table.get(key)
            yield self.env.timeout(1)  # RPL101
            self.table[key] = value

    def clean_section(self, key):  # clean: the yield is outside
        with atomic_section(self.table, label="good_section"):
            self.table[key] = self.table.get(key)
        yield self.env.timeout(1)
