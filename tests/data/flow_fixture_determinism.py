"""Flow-analyzer fixture: RPL110 unordered-iteration seeds.

Violations iterate an unordered collection into a scheduling /
emission / selection sink; "safe" variants sanction the iteration
with sorted()/min()/aggregation or never reach a sink.
"""


class Fanout:
    def __init__(self, env):
        self.env = env
        self.peers: set[str] = set()
        self.waiters: dict[str, set[str]] = {}
        self.outbox: list[str] = []

    def emit_unordered(self, channel):
        for peer in self.peers:  # RPL110
            yield channel.send(peer)

    def capture_unordered(self, key):
        for peer in self.waiters.get(key, set()):  # RPL110
            self.outbox.append(peer)

    def schedule_unordered(self, extra, pool):
        for peer in self.peers | extra:  # RPL110
            pool.process(peer)

    def list_of_set(self):
        order = [p for p in self.peers]  # RPL110
        return order

    def sorted_is_safe(self, channel):  # clean: sorted() sanctions
        for peer in sorted(self.peers):
            yield channel.send(peer)

    def aggregation_is_safe(self):  # clean: order-insensitive fold
        total = 0
        for peer in self.peers:
            total += len(peer)
        return total

    def set_to_set_is_safe(self):  # clean: set -> set keeps no order
        return {p.upper() for p in self.peers}
