"""Flow-analyzer fixture: RPL100 read-modify-write seeds.

Each violating line carries its expected code in a trailing comment;
the test matches reported findings against those markers.  Functions
marked "clean" must produce no findings (false-positive guards).
"""

from repro.analysis.sanitize import atomic_section
from repro.analysis.shared import shared_state


@shared_state("table", "counters")
class Manager:
    def __init__(self, env):
        self.env = env
        self.table = {}
        self.counters = {}

    def racy_rmw(self, key):
        value = self.table.get(key)
        yield self.env.timeout(1)
        self.table[key] = value  # RPL100

    def racy_mutator(self, key):
        snapshot = len(self.table)
        yield self.env.timeout(1)
        self.table.pop(key, None)  # RPL100
        return snapshot

    def guarded_rmw(self, key):  # clean: atomic_section covers both ends
        with atomic_section(self.table, label="guarded_rmw"):
            value = self.table.get(key)
            self.table[key] = value
        yield self.env.timeout(1)

    def write_before_yield(self, key):  # clean: write precedes the yield
        self.table[key] = 1
        yield self.env.timeout(1)

    def read_only_span(self, key):  # clean: no write-back after the yield
        value = self.table.get(key)
        yield self.env.timeout(1)
        return value

    def deep_leaf(self):  # may-yield seed of the 3-deep chain
        yield self.env.timeout(1)

    def deep_mid(self):  # may-yield via deep_leaf
        yield from self.deep_leaf()

    def indirect_rmw(self, key):
        value = self.counters.get(key, 0)
        yield from self.deep_mid()
        self.counters[key] = value + 1  # RPL100
