"""Fixture shared by the lint and flow analyzers: one module that
trips RPL006 (heap ties victim order to hash) under `repro.analysis
lint` and RPL100 under `repro.analysis flow` — each analyzer must
report only its own codes here.
"""

import heapq  # RPL006

from repro.analysis.shared import shared_state


@shared_state("queue")
class TimerWheel:
    def __init__(self, env):
        self.env = env
        self.queue: list[tuple[float, object]] = []

    def push(self, deadline, item):
        heapq.heappush(self.queue, (deadline, item))

    def racy_pop(self, timeout):
        head = self.queue[0]
        yield self.env.timeout(timeout)
        self.queue.pop(0)  # RPL100
        return head
