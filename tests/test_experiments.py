"""Tests for the experiment result containers and harness machinery."""

import io

import pytest

from repro.experiments.common import (
    ExperimentResult,
    Series,
    SeriesPoint,
    sweep_sizes,
)
from repro.experiments.overhead import (
    PAPER_BOUND_S,
    measure_hit_cost,
    run_overhead,
)
from repro.experiments.report import RUNNERS, run_all


# -- Series / ExperimentResult --------------------------------------------


def test_series_add_and_lookup():
    s = Series(label="x")
    s.add(1, 0.5, hits=3)
    s.add(2, 0.25)
    assert s.xs == [1, 2]
    assert s.ys == [0.5, 0.25]
    assert s.y_at(2) == 0.25
    assert s.points[0].extra == {"hits": 3}
    with pytest.raises(KeyError):
        s.y_at(99)


def test_result_get_and_new_series():
    r = ExperimentResult("t", "title", "x", "y")
    s = r.new_series("a")
    assert r.get("a") is s
    with pytest.raises(KeyError):
        r.get("missing")


def test_result_table_rendering():
    r = ExperimentResult("fig0", "demo", "size", "seconds")
    a = r.new_series("Caching")
    b = r.new_series("No Caching")
    a.add(1024, 0.001)
    a.add(4096, 0.002)
    b.add(1024, 0.003)
    r.notes = "hello"
    table = r.to_table()
    assert "fig0: demo" in table
    assert "Caching" in table and "No Caching" in table
    assert "0.001000" in table
    # b has no point at 4096: renders as '-'
    assert "-" in table
    assert "note: hello" in table


def test_result_table_empty():
    r = ExperimentResult("e", "empty", "x", "y")
    r.new_series("only")
    table = r.to_table()
    assert "empty" in table


def test_sweep_sizes():
    assert len(sweep_sizes(quick=False)) == 6
    assert len(sweep_sizes(quick=True)) == 3
    assert max(sweep_sizes(False)) == 1048576


# -- overhead experiment ------------------------------------------------------


def test_overhead_measurement_satisfies_paper_bound():
    m = measure_hit_cost(4)
    assert m.blocks == 4
    assert 0 < m.per_block_s < PAPER_BOUND_S


def test_overhead_experiment_result_shape():
    result = run_overhead(block_counts=(1, 2))
    assert result.experiment_id == "overhead"
    series = result.get("hit service time / block")
    assert series.xs == [1, 2]
    assert all(y < PAPER_BOUND_S for y in series.ys)


# -- report runner -----------------------------------------------------------


def test_run_all_with_subset():
    stream = io.StringIO()
    results = run_all(only=["overhead"], stream=stream)
    assert len(results) == 1
    out = stream.getvalue()
    assert "overhead" in out
    assert "400 us" in out


def test_run_all_unknown_experiment():
    with pytest.raises(SystemExit):
        run_all(only=["fig99"])


def test_runner_registry_covers_every_figure():
    assert set(RUNNERS) == {
        "overhead", "fig4", "fig5", "fig6", "fig7", "fig8",
        "sensitivity", "extensions", "scaling",
    }


def test_default_set_is_the_papers_figures():
    from repro.experiments.report import DEFAULT_SET

    assert DEFAULT_SET == ["overhead", "fig4", "fig5", "fig6", "fig7", "fig8"]
    assert all(name in RUNNERS for name in DEFAULT_SET)


def test_run_all_with_charts():
    stream = io.StringIO()
    run_all(only=["overhead"], stream=stream, charts=True)
    out = stream.getvalue()
    assert "legend:" in out  # the chart rendered
