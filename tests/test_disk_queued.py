"""Queued (analytic) disk model: unit behavior, mech equivalence,
determinism, and the ``disk_model`` seam.

Mirrors what ``tests/test_net_fluid.py`` established for the network
seam (DESIGN.md §12), one layer down (DESIGN.md §13):

* scenario **makespans** agree exactly whenever the two models charge
  the same seek count — both conserve service demand and serve FIFO;
* **per-batch** completion times agree exactly for uncontended
  scenarios and within a documented tolerance under contention, where
  the queued model's batch-atomic service legitimately finishes early
  batches sooner than the mechanical model's per-run interleaving;
* the ``mech`` model's schedule stays **bit-identical** to the seed
  revision (golden trace hashes), proving the batched data path is a
  pure refactor for the validated model.
"""

from __future__ import annotations

import pytest

from repro.analysis.determinism import fig4_point_trace_hash
from repro.cluster.config import (
    DISK_MODEL_ENV_VAR,
    NET_MODEL_ENV_VAR,
    ClusterConfig,
)
from repro.disk import DiskModel, QueuedDiskModel
from repro.sim import Environment
from tests.conftest import make_cluster, run_app

#: Default positioning cost (avg seek + half rotation) and media rate.
POS = 8.5e-3 + 5.6e-3
RATE = 20e6

#: Schedule digests of the seed revision's mechanical model, captured
#: before the batched data path landed.  ``mech`` runs must reproduce
#: them bit for bit (the refactor may not move a single event).
GOLDEN_MECH_READ_HASH = "17999720988df8807faaae9a5137f1bc"
GOLDEN_MECH_WRITE_HASH = "c56fb89176c984016ecf282dfb455edb"


def _xfer(nbytes: int) -> float:
    return nbytes / RATE


def _run_batches(disk_cls, batches):
    """Run ``[(start_s, file_id, runs, write), ...]``; per-batch
    finish times plus the model instance (for counter checks)."""
    env = Environment()
    disk = disk_cls(env)
    finish: dict[int, float] = {}

    def one(i, start, file_id, runs, write):
        if start:
            yield env.timeout(start)
        yield from disk.io_batch(file_id, runs, write)
        finish[i] = env.now

    for i, batch in enumerate(batches):
        env.process(one(i, *batch))
    env.run()
    assert len(finish) == len(batches)
    return [finish[i] for i in range(len(batches))], disk


# ---------------------------------------------------------------------------
# Queued model unit behavior
# ---------------------------------------------------------------------------


def test_queued_single_run_matches_mech_formula():
    finish, disk = _run_batches(
        QueuedDiskModel, [(0, 1, [(0, 65536)], False)]
    )
    assert finish[0] == pytest.approx(POS + _xfer(65536), rel=1e-12)
    assert disk.reads == 1 and disk.bytes_read == 65536
    assert disk.seeks == 1


def test_queued_batch_charges_one_service_pass():
    """Within a batch, a run continuing the previous one skips the
    positioning cost — same sequential detection as the spindle."""
    runs = [(0, 65536), (65536, 65536), (262144, 65536)]
    finish, disk = _run_batches(QueuedDiskModel, [(0, 1, runs, False)])
    assert finish[0] == pytest.approx(2 * POS + _xfer(3 * 65536), rel=1e-12)
    assert disk.seeks == 2
    assert disk.reads == 3


def test_queued_fifo_serialises_contending_batches():
    finish, disk = _run_batches(
        QueuedDiskModel,
        [(0, 1, [(0, 65536)], False), (0, 2, [(0, 65536)], False)],
    )
    unit = POS + _xfer(65536)
    assert finish[0] == pytest.approx(unit, rel=1e-12)
    assert finish[1] == pytest.approx(2 * unit, rel=1e-12)


def test_queued_idle_gap_resets_queue_horizon():
    """A batch arriving after the disk went idle starts immediately."""
    finish, _ = _run_batches(
        QueuedDiskModel,
        [(0, 1, [(0, 65536)], False), (1.0, 1, [(65536, 65536)], False)],
    )
    # Second batch is sequential (continues the first) and uncontended.
    assert finish[1] == pytest.approx(1.0 + _xfer(65536), rel=1e-12)


def test_queued_queue_length_tracks_backlog():
    env = Environment()
    disk = QueuedDiskModel(env)

    def submit(file_id):
        yield from disk.io_batch(file_id, [(0, 65536)])

    for f in range(3):
        env.process(submit(f))
    probed = {}

    def probe(env):
        yield env.timeout(1e-6)
        probed["queue"] = disk.queue_length

    env.process(probe(env))
    env.run()
    assert probed["queue"] == 2  # two behind the one in service
    assert disk.queue_length == 0


def test_queued_io_compat_single_request():
    """``io()`` (writeback daemon, legacy callers) works unchanged."""
    env = Environment()
    disk = QueuedDiskModel(env)
    done = {}

    def proc(env):
        yield from disk.io(1, 0, 4096, write=True)
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    assert done["t"] == pytest.approx(POS + _xfer(4096), rel=1e-12)
    assert disk.writes == 1 and disk.bytes_written == 4096


def test_queued_negative_size_rejected():
    env = Environment()
    disk = QueuedDiskModel(env)

    def proc(env):
        yield from disk.io_batch(1, [(0, -1)])

    p = env.process(proc(env))
    env.run()
    assert not p.ok


def test_queued_on_run_complete_fires_at_batch_end():
    """Analytic batches land atomically: every run completes at once
    (the documented divergence from the mechanical model)."""
    env = Environment()
    disk = QueuedDiskModel(env)
    landings = []

    def proc(env):
        yield from disk.io_batch(
            1,
            [(0, 4096), (16384, 4096)],
            on_run_complete=lambda i: landings.append((i, env.now)),
        )

    env.process(proc(env))
    env.run()
    assert [i for i, _ in landings] == [0, 1]
    assert landings[0][1] == landings[1][1]


def test_batched_flag_distinguishes_models():
    assert QueuedDiskModel.batched and not DiskModel.batched


# ---------------------------------------------------------------------------
# Equivalence: queued vs mech, per scenario (DESIGN.md §13 tolerances)
# ---------------------------------------------------------------------------

#: (name, batches, per-batch tolerance).  Makespans must agree exactly
#: in every scenario below (seek counts match, service is conserved,
#: FIFO order is the same); the per-batch bound is scenario-dependent
#: because the queued model services a batch atomically while the
#: mechanical spindle lets concurrent batches interleave between runs.
EQUIVALENCE_SCENARIOS = [
    ("solo-one-run", [(0, 1, [(0, 65536)], False)], 1e-9),
    (
        "solo-multi-run",
        [(0, 1, [(0, 65536), (262144, 65536), (524288, 131072)], False)],
        1e-9,
    ),
    (
        "staggered-sequential",
        [(0, 1, [(0, 65536)], False), (0.05, 1, [(65536, 65536)], False)],
        1e-9,
    ),
    (
        "contended-single-runs",
        [(0, 1, [(0, 65536)], False), (0, 2, [(0, 65536)], False)],
        1e-9,
    ),
    (
        "contended-multi-run",
        [
            (0, 1, [(0, 65536), (262144, 65536)], False),
            (0, 2, [(0, 65536), (262144, 65536)], False),
        ],
        # mech: runs interleave a1 b1 a2 b2, so batch a finishes at
        # 3/4 of the makespan; queued finishes it at 2/4.
        0.40,
    ),
    (
        "contended-mixed-sizes",
        [
            (0, 1, [(0, 262144), (1 << 20, 65536)], False),
            (0, 2, [(0, 4096)], False),
            (0.001, 3, [(0, 131072)], True),
        ],
        0.45,
    ),
]


@pytest.mark.parametrize(
    "name,batches,batch_tol",
    EQUIVALENCE_SCENARIOS,
    ids=[s[0] for s in EQUIVALENCE_SCENARIOS],
)
def test_queued_matches_mech_per_scenario(name, batches, batch_tol):
    mech, mech_disk = _run_batches(DiskModel, batches)
    queued, queued_disk = _run_batches(QueuedDiskModel, batches)
    assert max(queued) == pytest.approx(max(mech), rel=1e-9), (
        f"{name}: makespan diverged"
    )
    for counter in ("reads", "writes", "bytes_read", "bytes_written", "seeks"):
        assert getattr(queued_disk, counter) == getattr(mech_disk, counter), (
            f"{name}: {counter} diverged"
        )
    for i, (a, b) in enumerate(zip(mech, queued)):
        rel = abs(a - b) / max(a, b)
        assert rel <= batch_tol, (
            f"{name}: batch {i} finished at {b} (mech: {a}, "
            f"rel diff {rel:.3f} > {batch_tol})"
        )


def test_queued_batch_atomicity_can_only_help_makespan():
    """Where the models diverge — contiguous runs inside contended
    batches — the queued model keeps the batch sequential (no head
    movement between its runs) while the mechanical spindle interleaves
    and re-seeks; the analytic makespan is then a lower bound."""
    batches = [
        (0, 1, [(0, 65536), (65536, 65536)], False),
        (0, 2, [(0, 65536), (65536, 65536)], False),
    ]
    mech, mech_disk = _run_batches(DiskModel, batches)
    queued, queued_disk = _run_batches(QueuedDiskModel, batches)
    assert queued_disk.seeks < mech_disk.seeks
    assert max(queued) < max(mech)


# ---------------------------------------------------------------------------
# Determinism: golden mech hashes, per-model stability
# ---------------------------------------------------------------------------


def test_mech_trace_hash_bit_identical_to_seed(monkeypatch):
    """The batched data path must be a pure refactor for ``mech``:
    the same-seed schedule digest equals the pre-refactor golden."""
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    assert fig4_point_trace_hash(seed=4242) == GOLDEN_MECH_READ_HASH
    assert (
        fig4_point_trace_hash(d=65536, mode="write", seed=7)
        == GOLDEN_MECH_WRITE_HASH
    )


def test_trace_hash_stable_per_disk_model(monkeypatch):
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    hashes = {}
    for model in ("mech", "queued"):
        monkeypatch.setenv(DISK_MODEL_ENV_VAR, model)
        first = fig4_point_trace_hash(seed=4242)
        again = fig4_point_trace_hash(seed=4242)
        assert first == again, f"{model} schedule is not reproducible"
        hashes[model] = first
    # The knob must actually select different models.
    assert hashes["mech"] != hashes["queued"]


# ---------------------------------------------------------------------------
# Model selection plumbing
# ---------------------------------------------------------------------------


def test_config_rejects_unknown_disk_model():
    with pytest.raises(ValueError):
        ClusterConfig(disk_model="ssd")


def test_resolved_disk_model_precedence(monkeypatch):
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    assert ClusterConfig().resolved_disk_model == "mech"
    monkeypatch.setenv(DISK_MODEL_ENV_VAR, "queued")
    assert ClusterConfig().resolved_disk_model == "queued"
    # An explicit config wins over the environment.
    assert ClusterConfig(disk_model="mech").resolved_disk_model == "mech"
    monkeypatch.setenv(DISK_MODEL_ENV_VAR, "punch-cards")
    with pytest.raises(ValueError):
        ClusterConfig().resolved_disk_model


def test_cluster_builds_queued_disks(monkeypatch):
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    cluster = make_cluster(disk_model="queued")
    assert cluster.disk_model == "queued"
    for iod in cluster.iods:
        assert isinstance(iod.node.disk, QueuedDiskModel)


def test_cluster_defaults_to_mech(monkeypatch):
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    cluster = make_cluster()
    assert cluster.disk_model == "mech"
    for iod in cluster.iods:
        assert type(iod.node.disk) is DiskModel


# ---------------------------------------------------------------------------
# The iod miss path: coalescing boundaries, zero-capacity page cache
# ---------------------------------------------------------------------------


def test_ensure_resident_coalesces_exact_block_multiple(monkeypatch):
    """A cold read of an exact block multiple is one disk request."""
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    cluster = make_cluster(compute_nodes=1, iod_nodes=1, caching=False)
    client = cluster.client("node0")
    disk = cluster.iods[0].node.disk
    block = cluster.iods[0].block_size

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 16 * block)
        assert disk.reads == 1  # one coalesced 16-block run
        assert disk.bytes_read == 16 * block
        # Straddle the residency boundary: block 15 is resident,
        # block 16 is not -> exactly one more single-block read.
        yield from client.read(f, 16 * block - 1, 2)
        assert disk.reads == 2
        assert disk.bytes_read == 17 * block

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("iod.pagecache_misses") == 17
    assert cluster.metrics.count("iod.pagecache_hits") == 1


def test_zero_capacity_pagecache_always_goes_to_disk(monkeypatch):
    """pagecache_blocks=0 must disable residency without corrupting
    the LRU or the miss path (satellite audit)."""
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    cluster = make_cluster(
        compute_nodes=1, iod_nodes=1, caching=False, pagecache_blocks=0
    )
    client = cluster.client("node0")
    node = cluster.iods[0].node
    block = cluster.iods[0].block_size

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 4 * block)
        yield from client.read(f, 0, 4 * block)  # no residency: re-read
        assert node.disk.reads == 2
        assert node.disk.bytes_read == 8 * block

    run_app(cluster, app(cluster.env))
    assert len(node.pagecache) == 0
    assert cluster.metrics.count("iod.pagecache_hits") == 0
    assert cluster.metrics.count("iod.pagecache_misses") == 8


@pytest.mark.parametrize("disk_model", ["mech", "queued"])
def test_end_to_end_read_your_writes(monkeypatch, disk_model):
    """Both models preserve data correctness through the full stack."""
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    cluster = make_cluster(caching=False, disk_model=disk_model)
    client = cluster.client("node0")
    payload = bytes(range(256)) * 512  # 128 KB: spans both iods

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, len(payload), payload)
        back = yield from client.read(f, 0, len(payload), want_data=True)
        assert back == payload

    run_app(cluster, app(cluster.env))


def _cold_sweep_makespan(disk_model: str) -> float:
    """Cold-cache concurrent reads through the full cluster stack."""
    cluster = make_cluster(
        caching=False, disk_model=disk_model, pagecache_blocks=0
    )
    env = cluster.env
    procs = []

    def app(node, base):
        client = cluster.client(node)
        f = yield from client.open("/shared")
        for i in range(4):
            yield from client.read(f, base + i * 131072, 131072)

    for idx, node in enumerate(cluster.config.compute_node_names()):
        procs.append(env.process(app(node, idx * (1 << 20))))
    env.run(until=env.all_of(procs))
    return env.now


def test_end_to_end_cold_sweep_makespans_agree(monkeypatch):
    """Disk-bound cluster makespans agree across models within a few
    per cent (contention interleaving is the only divergence)."""
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    mech = _cold_sweep_makespan("mech")
    queued = _cold_sweep_makespan("queued")
    assert queued == pytest.approx(mech, rel=0.05)
