"""Tests for the extension experiments and the sync_fraction workload knob."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.experiments.extensions import (
    run_coherence_sweep,
    run_global_cache_experiment,
    run_readahead_experiment,
)
from repro.workload import MicroBenchParams, run_instances


# -- sync_fraction workload knob -----------------------------------------


def test_sync_fraction_validation():
    with pytest.raises(ValueError):
        MicroBenchParams(
            nodes=["n"], request_size=4096, iterations=1, sync_fraction=1.5
        )


def test_sync_fraction_mixes_write_kinds():
    config = ClusterConfig(compute_nodes=1, iod_nodes=1, caching=True)
    params = MicroBenchParams(
        nodes=["node0"],
        request_size=8192,
        iterations=40,
        mode="write",
        sync_fraction=0.5,
        partition_bytes=1 << 20,
    )
    out = run_instances(config, [params])
    n_sync = out.counter("client.sync_writes")
    n_plain = out.counter("client.writes")
    assert n_sync + n_plain == 40
    assert 8 <= n_sync <= 32  # ~half, with RNG slack


def test_sync_fraction_zero_means_all_buffered():
    config = ClusterConfig(compute_nodes=1, iod_nodes=1, caching=True)
    params = MicroBenchParams(
        nodes=["node0"], request_size=8192, iterations=10, mode="write",
        partition_bytes=1 << 20,
    )
    out = run_instances(config, [params])
    assert out.counter("client.sync_writes") == 0


# -- extension experiments --------------------------------------------------


def test_coherence_sweep_monotone_cost():
    result = run_coherence_sweep(fractions=(0.0, 1.0), iterations=16)
    latency = result.get("write latency")
    assert latency.y_at(0.0) < latency.y_at(1.0)
    invals = result.get("invalidations (count)")
    assert invals.y_at(1.0) > 0
    assert invals.y_at(0.0) == 0


def test_global_cache_experiment_disk_regime():
    result = run_global_cache_experiment(pagecache_blocks=(0, 16384))
    local = result.get("local cache only")
    cooperative = result.get("with global cache")
    # disk-bound iods: peer hits win
    assert cooperative.y_at(0) < local.y_at(0)
    # warm iods: both paths are cheap and comparable
    assert cooperative.y_at(16384) < local.y_at(0)


def test_straggler_experiment_masking():
    from repro.experiments.extensions import run_straggler_experiment

    result = run_straggler_experiment(slowdowns=(1.0, 8.0))
    plain = result.get("no caching")
    cached = result.get("caching")
    # baseline degrades with the disk; the cached version does not
    assert plain.y_at(8.0) > plain.y_at(1.0) * 1.5
    assert cached.y_at(8.0) <= cached.y_at(1.0) * 1.05
    assert cached.y_at(8.0) < plain.y_at(8.0) / 3


def test_readahead_experiment_overlap_with_compute():
    result = run_readahead_experiment(think_times_s=(0.0, 2e-3))
    plain = result.get("no readahead")
    ra = result.get("readahead")
    # with compute between chunks, prefetch overlaps and wins
    assert ra.y_at(2e-3) < plain.y_at(2e-3)
