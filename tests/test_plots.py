"""Tests for the terminal chart renderer."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.plots import render_bar_chart, render_chart, sparkline


def _result():
    r = ExperimentResult("figX", "demo", "size", "seconds")
    a = r.new_series("Caching")
    b = r.new_series("No Caching")
    for i, x in enumerate((1024, 4096, 65536)):
        a.add(x, 0.001 * (i + 1))
        b.add(x, 0.004 * (i + 1))
    return r


def test_render_chart_contains_series_glyphs_and_legend():
    out = render_chart(_result())
    assert "figX: demo" in out
    assert "o=Caching" in out
    assert "x=No Caching" in out
    assert "o" in out and "x" in out
    assert "(log x)" in out


def test_render_chart_linear_axes():
    out = render_chart(_result(), log_x=False)
    assert "(log x)" not in out


def test_render_chart_empty_result():
    r = ExperimentResult("e", "nothing", "x", "y")
    assert "(no data)" in render_chart(r)


def test_render_chart_log_rejects_nonpositive():
    r = ExperimentResult("bad", "bad", "x", "y")
    s = r.new_series("s")
    s.add(0, 1.0)
    with pytest.raises(ValueError):
        render_chart(r, log_x=True)


def test_render_chart_collision_marker():
    r = ExperimentResult("c", "collide", "x", "y")
    for label in ("a", "b"):
        s = r.new_series(label)
        s.add(1, 1.0)  # same point in both series
        s.add(10, 2.0 if label == "a" else 1.5)
    out = render_chart(r, log_x=False)
    assert "?" in out


def test_render_chart_single_point():
    r = ExperimentResult("p", "point", "x", "y")
    r.new_series("only").add(5, 0.5)
    out = render_chart(r, log_x=False)
    assert "o" in out


def test_bar_chart():
    out = render_bar_chart(
        [("cache-coloc", 0.2), ("nocache-spread", 0.3)], title="fig8 @64KB"
    )
    assert "fig8 @64KB" in out
    assert "cache-coloc" in out
    assert "█" in out
    assert "0.3" in out


def test_bar_chart_empty():
    assert "(no data)" in render_bar_chart([], title="t")


def test_sparkline():
    assert sparkline([]) == ""
    line = sparkline([1, 2, 3, 4])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline([5, 5, 5]) == "▁▁▁"
