"""Edge-case and failure-injection tests for the simulation engine."""

import pytest

from repro.sim import Environment, Interrupt, Lock, Resource, Store
from repro.sim.process import ProcessKilled


def test_kill_while_holding_lock_leaks_by_design():
    """A killed process does NOT auto-release held resources (like a
    kernel thread dying with a spinlock); the next claimant waits
    forever.  This documents the semantics so misuse is caught in
    design review, not debugging."""
    env = Environment()
    lock = Lock(env)
    got_lock = []

    def holder(env):
        req = lock.request()
        yield req
        yield env.timeout(100)

    def claimant(env):
        yield env.timeout(2)
        req = lock.request()
        yield req
        got_lock.append(env.now)

    victim = env.process(holder(env))

    def killer(env):
        yield env.timeout(1)
        victim.kill()

    env.process(killer(env))
    env.process(claimant(env))
    env.run(until=50)
    assert got_lock == []  # the lock stayed held
    assert lock.locked


def test_kill_releases_nothing_but_fails_waiters():
    env = Environment()

    def sleeper(env):
        yield env.timeout(10)

    victim = env.process(sleeper(env))
    outcomes = []

    def waiter(env):
        try:
            yield victim
        except ProcessKilled as exc:
            outcomes.append(str(exc))

    def killer(env):
        yield env.timeout(1)
        victim.kill()

    env.process(waiter(env))
    env.process(killer(env))
    env.run()
    assert len(outcomes) == 1


def test_interrupt_during_resource_wait_dequeues_cleanly():
    """Interrupting a process waiting on a Resource must not leave a
    stale grant that blocks others (the request is cancelled in the
    handler)."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def impatient(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.cancel()
            order.append(("gave-up", env.now))
            return

    def patient(env):
        yield env.timeout(2)
        req = res.request()
        yield req
        order.append(("granted", env.now))
        res.release(req)

    env.process(holder(env))
    victim = env.process(impatient(env))

    def interrupter(env):
        yield env.timeout(1)
        victim.interrupt("timeout")

    env.process(interrupter(env))
    env.process(patient(env))
    env.run()
    assert order == [("gave-up", 1.0), ("granted", 10.0)]


def test_store_get_after_producer_dies():
    """A consumer blocked on a Store whose producer died simply never
    resumes — the run drains without error."""
    env = Environment()
    store = Store(env)
    resumed = []

    def consumer(env):
        item = yield store.get()
        resumed.append(item)

    def producer(env):
        yield env.timeout(1)
        raise RuntimeError("producer crashed before putting")

    env.process(consumer(env))
    proc = env.process(producer(env))
    env.run()
    assert resumed == []
    assert proc.triggered and not proc.ok


def test_failed_process_propagates_to_all_of():
    env = Environment()

    def good(env):
        yield env.timeout(1)

    def bad(env):
        yield env.timeout(2)
        raise ValueError("boom")

    def waiter(env):
        with pytest.raises(ValueError):
            yield env.all_of([env.process(good(env)), env.process(bad(env))])
        return "handled"

    proc = env.process(waiter(env))
    assert env.run(until=proc) == "handled"


def test_exception_inside_nested_yield_from_chain():
    """Errors raised deep in a yield-from chain surface at the top."""
    env = Environment()

    def level3(env):
        yield env.timeout(1)
        raise KeyError("deep")

    def level2(env):
        yield from level3(env)

    def level1(env):
        try:
            yield from level2(env)
        except KeyError as exc:
            return f"caught {exc}"

    proc = env.process(level1(env))
    assert "caught" in env.run(until=proc)


def test_zero_delay_timeout_processes_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0)
        order.append(tag)

    for tag in range(4):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_event_callbacks_after_processing_run_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_many_concurrent_processes_scale():
    """Sanity: thousands of processes interleave without recursion or
    quadratic blowup."""
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i % 7 / 10.0)
        done.append(i)

    for i in range(2000):
        env.process(proc(env, i))
    env.run()
    assert len(done) == 2000
