"""Tests for the service runtime: lifecycle, dispatch, instrumentation."""

import pytest

from repro.metrics import DaemonMonitor, Metrics, daemon_table
from repro.net import Message, Network, SocketAPI
from repro.sim import Environment
from repro.svc import Service, ServiceState, get_bus, handles

from tests.conftest import make_cluster, run_app


class EchoNode:
    """Minimal stand-in for a cluster Node (sockets + free compute)."""

    def __init__(self, env, network, name):
        self.env = env
        self.name = name
        self.sockets = SocketAPI(network, name)

    def compute(self, seconds):
        if seconds:
            yield self.env.timeout(seconds)


class EchoService(Service):
    PORT = 9100

    def __init__(self, env, node):
        super().__init__(env, f"echo-{node.name}", node=node)

    def _on_start(self):
        self.serve(self.PORT)

    @handles("ping")
    def _handle_ping(self, msg, endpoint):
        yield endpoint.send(msg.reply("pong", 8))


def _echo_world():
    env = Environment()
    net = Network(env)
    server = EchoNode(env, net, "srv")
    client = EchoNode(env, net, "cli")
    service = EchoService(env, server)
    service.start()
    return env, service, client


def test_lifecycle_states():
    env = Environment()
    net = Network(env)
    service = EchoService(env, EchoNode(env, net, "srv"))
    assert service.state is ServiceState.NEW
    service.start()
    assert service.state is ServiceState.RUNNING
    service.start()  # idempotent
    assert service.state is ServiceState.RUNNING
    report = service.stop()
    assert service.state is ServiceState.STOPPED
    assert report.dropped == {}
    # All runtime-owned processes are gone.
    assert service._procs == []


def test_dispatch_routes_by_kind_and_counts():
    env, service, client = _echo_world()
    got = {}

    def app(env):
        endpoint = yield env.process(
            client.sockets.connect("srv", EchoService.PORT)
        )
        endpoint.send(Message(kind="ping", size_bytes=16))
        got["reply"] = yield endpoint.recv()

    env.process(app(env))
    env.run()
    assert got["reply"].kind == "pong"
    assert service.svc_stats.messages_handled == 1
    assert service.svc_stats.dispatched == {"ping": 1}
    assert service.svc_stats.queue_high_water >= 1


def test_dispatch_rejects_unknown_kind():
    env, service, client = _echo_world()

    def app(env):
        endpoint = yield env.process(
            client.sockets.connect("srv", EchoService.PORT)
        )
        endpoint.send(Message(kind="bogus", size_bytes=16))

    env.process(app(env))
    env.run()
    # The failure lands on the connection-loop process event (loudly,
    # as the engine does for any crashed process), not on env.run().
    (conn,) = [p for p in service._procs if "-conn" in p.name]
    assert not conn.ok
    assert isinstance(conn.value, ValueError)
    assert "unexpected message 'bogus'" in str(conn.value)


def test_handler_inheritance_subclass_wins():
    class Fancy(EchoService):
        @handles("ping")
        def _handle_ping2(self, msg, endpoint):
            yield endpoint.send(msg.reply("fancy-pong", 8))

    env = Environment()
    net = Network(env)
    service = Fancy(env, EchoNode(env, net, "srv"))
    service.start()
    client = EchoNode(env, net, "cli")
    got = {}

    def app(env):
        endpoint = yield env.process(
            client.sockets.connect("srv", EchoService.PORT)
        )
        endpoint.send(Message(kind="ping", size_bytes=16))
        got["reply"] = yield endpoint.recv()

    env.process(app(env))
    env.run()
    assert got["reply"].kind == "fancy-pong"


def test_bus_records_only_reach_subscribers():
    env, service, client = _echo_world()
    bus = get_bus(env)
    assert not bus.active
    records = []
    detach = bus.subscribe(records.append)
    assert bus.active

    def app(env):
        endpoint = yield env.process(
            client.sockets.connect("srv", EchoService.PORT)
        )
        endpoint.send(Message(kind="ping", size_bytes=16))
        yield endpoint.recv()

    env.process(app(env))
    env.run()
    kinds = [r.kind for r in records]
    assert "msg_received" in kinds and "dispatch" in kinds
    detach()
    assert not bus.active


def test_metrics_attach_bus_mirrors_events():
    env, service, client = _echo_world()
    metrics = Metrics()
    detach = metrics.attach_bus(get_bus(env))

    def app(env):
        endpoint = yield env.process(
            client.sockets.connect("srv", EchoService.PORT)
        )
        endpoint.send(Message(kind="ping", size_bytes=16))
        yield endpoint.recv()

    env.process(app(env))
    env.run()
    assert metrics.count("svc.echo-srv.dispatch") == 1
    assert metrics.count("svc.echo-srv.msg_received") == 1
    detach()


def test_daemon_monitor_and_table():
    env, service, client = _echo_world()
    monitor = DaemonMonitor(get_bus(env), keep_records=8)

    def app(env):
        endpoint = yield env.process(
            client.sockets.connect("srv", EchoService.PORT)
        )
        for _ in range(3):
            endpoint.send(Message(kind="ping", size_bytes=16))
            yield endpoint.recv()

    env.process(app(env))
    env.run()
    assert monitor.count("echo-srv", "dispatch") == 3
    assert monitor.records  # ring buffer kept some
    table = daemon_table(get_bus(env))
    assert "echo-srv" in table and "running" in table
    monitor.close()
    assert monitor.bus.subscribers == []


def test_cluster_daemons_all_subclass_service():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    assert all(isinstance(s, Service) for s in cluster.services)
    names = {s.svc_stats.service for s in cluster.services}
    assert "mgr" in names
    assert any(n.startswith("iod-") for n in names)
    assert any(n.startswith("writeback-") for n in names)
    assert any(n.startswith("cache-") for n in names)
    # Children (flusher/harvester) ride under their cache module.
    module = cluster.cache_modules["node0"]
    assert module.flusher in module._children
    assert module.harvester in module._children


def test_cluster_bus_sees_traffic():
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    bus = get_bus(cluster.env)
    monitor = DaemonMonitor(bus)
    client = cluster.client("node0")

    def app(env):
        handle = yield from client.open("/f")
        yield from client.write(handle, 0, 8192)
        yield from client.read(handle, 0, 8192)

    run_app(cluster, app(cluster.env))
    assert monitor.count("mgr", "dispatch") == 1
    assert bus.stats["mgr"].messages_handled == 1
    # The 8 KiB write was absorbed by the cache; flushing it produces
    # the iod traffic (FLUSH batches) the bus should have seen.
    run_app(cluster, cluster.drain_caches())
    iod_stats = bus.stats["iod-node0"]
    assert iod_stats.messages_handled >= 1
    assert iod_stats.busy_s > 0.0
