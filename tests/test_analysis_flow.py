"""The interprocedural flow analyzer: every seeded fixture violation
fires (and nothing else), may-yield classification propagates through
indirect call chains, noqa outranks the baseline, and the runtime
coverage join reports never-executed atomic sections."""

import re
from pathlib import Path

from repro.analysis import sanitize
from repro.analysis.flow import analyze_paths, main
from repro.analysis.lint import lint_paths
from repro.analysis.shared import declared_shared, shared_state

DATA = Path(__file__).parent / "data"
RMW = DATA / "flow_fixture_rmw.py"
ATOMIC = DATA / "flow_fixture_atomic.py"
DETERMINISM = DATA / "flow_fixture_determinism.py"
INTERACTION = DATA / "flow_fixture_interaction.py"
FIXTURES = [RMW, ATOMIC, DETERMINISM, INTERACTION]
SRC_TREE = Path(__file__).resolve().parents[1] / "src" / "repro"

#: flow rules carry trailing `# RPL1xx` markers; `# RPL006` belongs
#: to the lint (see test_interaction_fixture_splits_by_analyzer).
_FLOW_MARKER = re.compile(r"#\s*(RPL1\d\d)\b")


def _seeded_markers(path: Path) -> set[tuple[str, str, int]]:
    markers = set()
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        match = _FLOW_MARKER.search(line)
        if match:
            markers.add((path.name, match.group(1), lineno))
    return markers


def test_fixtures_trip_exactly_the_seeded_violations():
    report = analyze_paths(FIXTURES)
    found = {
        (Path(f.path).name, f.code, f.line) for f in report.findings
    }
    expected = set()
    for fixture in FIXTURES:
        expected |= _seeded_markers(fixture)
    # set equality: every seeded violation fires, zero false positives
    assert found == expected


def test_fixture_exits_nonzero(tmp_path, capsys):
    empty_baseline = tmp_path / "baseline.txt"
    argv = [str(f) for f in FIXTURES] + ["--baseline", str(empty_baseline)]
    assert main(argv) == 1
    out = capsys.readouterr().out
    for code in ("RPL100", "RPL101", "RPL110"):
        assert code in out
    assert "finding(s)" in out


def test_may_yield_propagates_through_three_deep_chain():
    report = analyze_paths([RMW])
    # indirect_rmw -> deep_mid -> deep_leaf: only the leaf has a
    # bare yield; the others must be classified by propagation.
    assert report.classification("Manager.deep_leaf") is True
    assert report.classification("Manager.deep_mid") is True
    assert report.classification("Manager.indirect_rmw") is True
    # and the chain produces the RPL100 at the write-back site
    chain = [
        f
        for f in report.findings
        if f.code == "RPL100" and "counters" in f.message
    ]
    assert len(chain) == 1
    assert "deep_mid" in chain[0].message


def test_plain_function_is_not_may_yield():
    report = analyze_paths([DETERMINISM])
    assert report.classification("Fanout.aggregation_is_safe") is False


_RACY = """\
from repro.analysis.shared import shared_state


@shared_state("table")
class M:
    def __init__(self, env):
        self.env = env
        self.table = {}

    def racy(self, key):
        value = self.table.get(key)
        yield self.env.timeout(1)
        self.table[key] = value@NOQA@
"""


def test_noqa_takes_precedence_over_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    mod = tmp_path / "mod.py"
    mod.write_text(_RACY.replace("@NOQA@", ""))
    # without noqa: flagged, then accepted into the baseline
    assert main([str(mod), "--baseline", str(baseline)]) == 1
    assert main([str(mod), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(mod), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # with noqa: suppressed before baseline matching, so the baseline
    # entry goes stale instead of being consumed
    mod.write_text(_RACY.replace("@NOQA@", "  # noqa: RPL100 - fixture"))
    assert main([str(mod), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "stale baseline entr" in out
    assert "clean (0 baselined finding(s))" in out


def test_write_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "baseline.txt"
    assert main([str(RMW), "--baseline", str(baseline), "--write-baseline"]) == 0
    entries = [
        line
        for line in baseline.read_text().splitlines()
        if line and not line.startswith("#")
    ]
    assert len(entries) == 3  # racy_rmw, racy_mutator, indirect_rmw
    assert all(entry.startswith("RPL100|") for entry in entries)
    capsys.readouterr()
    assert main([str(RMW), "--baseline", str(baseline)]) == 0
    assert "clean (3 baselined finding(s))" in capsys.readouterr().out


def test_source_tree_is_clean(capsys):
    # the committed analysis_baseline.txt covers the accepted findings
    assert main([str(SRC_TREE)]) == 0
    assert "clean" in capsys.readouterr().out


def test_runtime_coverage_reports_unexecuted_sections(
    tmp_path, monkeypatch, capsys
):
    coverage = tmp_path / "coverage.txt"
    monkeypatch.setenv(sanitize.COVERAGE_ENV_VAR, str(coverage))
    monkeypatch.setattr(sanitize, "_covered_labels", set())
    with sanitize.atomic_section(object(), label="good_section"):
        pass
    # only one of the fixture's two sections executed: a gap remains
    assert main(["--runtime-coverage", str(coverage), str(ATOMIC)]) == 1
    out = capsys.readouterr().out
    assert "bad_section" in out
    assert "1/2 atomic_section site(s) uncovered" in out
    with sanitize.atomic_section(object(), label="bad_section"):
        pass
    assert main(["--runtime-coverage", str(coverage), str(ATOMIC)]) == 0
    assert "all 2 atomic_section site(s) covered" in capsys.readouterr().out


def test_runtime_coverage_flags_unknown_labels(tmp_path, capsys):
    coverage = tmp_path / "coverage.txt"
    coverage.write_text("good_section\nbad_section\nphantom\n")
    assert main(["--runtime-coverage", str(coverage), str(ATOMIC)]) == 0
    assert "runtime label 'phantom' has no static site" in (
        capsys.readouterr().out
    )


def test_interaction_fixture_splits_by_analyzer():
    # one module, two analyzers: the lint owns RPL006, flow owns RPL100
    lint_codes = {f.code for f in lint_paths([INTERACTION])}
    assert lint_codes == {"RPL006"}
    flow_codes = {f.code for f in analyze_paths([INTERACTION]).findings}
    assert flow_codes == {"RPL100"}


def test_shared_state_registry_unions_across_inheritance():
    @shared_state("table")
    class Base:
        pass

    @shared_state("queue")
    class Derived(Base):
        pass

    assert declared_shared(Base) == frozenset({"table"})
    assert declared_shared(Derived) == frozenset({"table", "queue"})
