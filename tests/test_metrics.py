"""Unit tests for the metrics collector."""

import math

import pytest

from repro.metrics import Metrics


def test_counters():
    m = Metrics()
    assert m.count("x") == 0
    m.inc("x")
    m.inc("x", 5)
    assert m.count("x") == 6


def test_series_basic():
    m = Metrics()
    for v in (1.0, 2.0, 3.0):
        m.record("lat", v)
    assert m.samples("lat") == [1.0, 2.0, 3.0]
    assert m.mean("lat") == 2.0
    assert m.total("lat") == 6.0


def test_empty_series_stats():
    m = Metrics()
    assert math.isnan(m.mean("ghost"))
    assert m.total("ghost") == 0
    assert math.isnan(m.percentile("ghost", 50))
    assert m.summary("ghost")["n"] == 0


def test_percentiles():
    m = Metrics()
    for v in range(1, 101):
        m.record("lat", float(v))
    assert m.percentile("lat", 50) == 50.0
    assert m.percentile("lat", 95) == 95.0
    assert m.percentile("lat", 100) == 100.0
    assert m.percentile("lat", 0) == 1.0
    with pytest.raises(ValueError):
        m.percentile("lat", 101)


def test_summary():
    m = Metrics()
    for v in (5.0, 1.0, 3.0):
        m.record("lat", v)
    s = m.summary("lat")
    assert s["n"] == 3
    assert s["min"] == 1.0
    assert s["max"] == 5.0
    assert s["mean"] == 3.0


def test_ratio():
    m = Metrics()
    assert m.ratio("h", "m") == 0.0
    m.inc("h", 3)
    m.inc("m", 1)
    assert m.ratio("h", "m") == 0.75


def test_snapshot():
    m = Metrics()
    m.inc("c", 2)
    m.record("s", 1.5)
    snap = m.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["series"]["s"]["n"] == 1
