"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import typing as _t

import pytest

import repro.net.message  # noqa: F401  (registers its reset hook)
import repro.net.sockets  # noqa: F401  (registers its reset hook)
from repro.analysis.reset import reset_all
from repro.cluster.cluster import Cluster
from repro.cluster.config import CacheConfig, ClusterConfig


@pytest.fixture(autouse=True)
def _reset_module_counters():
    """Reset registered module-level state between tests.

    Message and connection ids are drawn from module-global
    ``itertools.count`` objects, so without this a test's observed ids
    depend on which tests ran before it — assertions on ids (and
    golden outputs embedding them) would be order-dependent.  Every
    module owning such state registers a hook with
    :mod:`repro.analysis.reset` (enforced by lint rule RPL004), so one
    ``reset_all()`` covers them all.
    """
    reset_all()
    yield


def make_cluster(
    compute_nodes: int = 2,
    iod_nodes: int = 2,
    caching: bool = True,
    cache_blocks: int | None = None,
    **overrides: _t.Any,
) -> Cluster:
    """A small cluster for functional tests (tiny cache by default)."""
    cache_kwargs: dict[str, _t.Any] = {}
    if cache_blocks is not None:
        cache_kwargs["size_bytes"] = cache_blocks * 4096
    cache = CacheConfig(**cache_kwargs)
    config = ClusterConfig(
        compute_nodes=compute_nodes,
        iod_nodes=iod_nodes,
        caching=caching,
        cache=cache,
        **overrides,
    )
    return Cluster(config)


def run_app(cluster: Cluster, generator) -> _t.Any:
    """Run one application generator to completion; returns its value."""
    proc = cluster.env.process(generator)
    return cluster.env.run(until=proc)


@pytest.fixture
def small_cluster() -> Cluster:
    return make_cluster()
