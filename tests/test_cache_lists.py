"""Unit tests for the free list and dirty list."""

import pytest

from repro.cache.block import BlockState, CacheBlock
from repro.cache.dirtylist import DirtyList
from repro.cache.freelist import FreeList
from repro.sim import Environment


def _blocks(env, n):
    return [CacheBlock(i, 4096) for i in range(n)]


# -- FreeList ------------------------------------------------------------


def test_freelist_initial_count():
    env = Environment()
    fl = FreeList(env, _blocks(env, 10), low_blocks=2, high_blocks=5)
    assert len(fl) == 10
    assert not fl.below_low
    assert not fl.below_high


def test_freelist_requires_free_blocks():
    env = Environment()
    b = CacheBlock(0, 4096)
    b.assign((1, 0), env.event())
    with pytest.raises(ValueError):
        FreeList(env, [b], low_blocks=1, high_blocks=2)


def test_freelist_acquire_release_cycle():
    env = Environment()
    fl = FreeList(env, _blocks(env, 3), low_blocks=1, high_blocks=2)
    got = []

    def proc(env):
        blk = yield from fl.acquire()
        got.append(blk)
        blk.assign((1, 0), env.event())
        blk.make_ready()
        blk.reset()
        fl.release(blk)

    env.process(proc(env))
    env.run()
    assert len(got) == 1
    assert len(fl) == 3


def test_freelist_release_nonfree_rejected():
    env = Environment()
    fl = FreeList(env, _blocks(env, 1), low_blocks=1, high_blocks=1)
    b = CacheBlock(9, 4096)
    b.assign((1, 0), env.event())
    with pytest.raises(ValueError):
        fl.release(b)


def test_freelist_acquire_blocks_when_dry():
    env = Environment()
    blocks = _blocks(env, 1)
    fl = FreeList(env, blocks, low_blocks=1, high_blocks=1)
    order = []

    def taker(env, tag):
        blk = yield from fl.acquire()
        order.append((tag, env.now))
        if tag == "first":
            yield env.timeout(5)
            blk.reset() if blk.state is not BlockState.FREE else None
            fl.release(blk)

    env.process(taker(env, "first"))
    env.process(taker(env, "second"))
    env.run()
    assert order[0] == ("first", 0.0)
    assert order[1] == ("second", 5.0)
    assert fl.allocation_waits == 1


def test_freelist_low_watermark_callback():
    env = Environment()
    fl = FreeList(env, _blocks(env, 4), low_blocks=3, high_blocks=4)
    pokes = []
    fl.on_low = lambda: pokes.append(env.now)

    def proc(env):
        yield from fl.acquire()  # count 3: not below low
        yield from fl.acquire()  # count 2: below low -> poke
        yield from fl.acquire()  # count 1: poke again

    env.process(proc(env))
    env.run()
    assert len(pokes) == 2


# -- DirtyList -----------------------------------------------------------


def _dirty_block(env, index):
    b = CacheBlock(index, 4096)
    b.assign((1, index), env.event())
    b.write(0, 10, None)
    return b


def test_dirtylist_requires_dirty():
    env = Environment()
    dl = DirtyList()
    with pytest.raises(ValueError):
        dl.add(CacheBlock(0, 4096))


def test_dirtylist_order_preserved():
    env = Environment()
    dl = DirtyList()
    blocks = [_dirty_block(env, i) for i in range(5)]
    for b in blocks:
        dl.add(b)
    assert dl.snapshot() == blocks
    # re-add keeps original position
    dl.add(blocks[0])
    assert dl.snapshot() == blocks


def test_dirtylist_discard_and_contains():
    env = Environment()
    dl = DirtyList()
    b = _dirty_block(env, 0)
    dl.add(b)
    assert b in dl and len(dl) == 1
    dl.discard(b)
    assert b not in dl and len(dl) == 0
    dl.discard(b)  # idempotent


def test_dirtylist_drain():
    env = Environment()
    dl = DirtyList()
    blocks = [_dirty_block(env, i) for i in range(3)]
    for b in blocks:
        dl.add(b)
    assert dl.drain() == blocks
    assert len(dl) == 0
