"""Model-based random-operation test of the BufferManager.

Hypothesis drives random sequences of allocate / write / flush-clean /
evict / invalidate against a small manager; after every step the
global invariants that the rest of the system relies on are checked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import BlockState
from repro.cache.manager import BufferManager
from repro.cluster.config import CacheConfig
from repro.metrics import Metrics
from repro.sim import Environment

N_BLOCKS = 6
KEYS = [(1, i) for i in range(4)] + [(2, i) for i in range(4)]

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            ["allocate", "write", "make_ready", "clean", "evict",
             "invalidate", "lookup"]
        ),
        st.integers(0, len(KEYS) - 1),
    ),
    max_size=60,
)


def _check_invariants(m: BufferManager) -> None:
    # Frame conservation: every frame is either free or resident
    # (allocation waiters may make the freelist counter negative, but
    # this single-process driver never leaves waiters behind).
    assert m.n_free + m.n_resident == N_BLOCKS
    resident = list(m.table.blocks())
    # no table block is FREE; keys unique
    keys = [b.key for b in resident]
    assert len(set(keys)) == len(keys)
    for block in resident:
        assert block.state is not BlockState.FREE
        assert block.key is not None
    # the dirty list only holds DIRTY resident blocks
    for block in m.dirtylist.snapshot():
        assert block.state is BlockState.DIRTY
        assert block in resident
    # every DIRTY resident block that was noted is tracked; and no
    # CLEAN/PENDING block lingers on the dirty list (checked above)
    # free frames really are FREE
    free_states = [b.state for b in m.blocks if b not in resident]
    assert all(s is BlockState.FREE for s in free_states)


@settings(max_examples=120, deadline=None)
@given(ops=op_strategy)
def test_manager_invariants_under_random_ops(ops):
    env = Environment()
    config = CacheConfig(
        size_bytes=N_BLOCKS * 4096,
        block_size=4096,
        low_watermark=0.2,
        high_watermark=0.5,
    )
    m = BufferManager(env, config, Metrics())

    def driver(env):
        for op, key_idx in ops:
            key = KEYS[key_idx]
            block = m.table.get(key)
            if op == "allocate":
                if m.n_free > 0 or block is not None:
                    block, _resident = yield from m.get_or_allocate(key)
            elif op == "write" and block is not None:
                block.write(0, 100, None)
                m.note_write(block)
            elif op == "make_ready" and block is not None:
                if block.state is BlockState.PENDING:
                    block.make_ready()
            elif op == "clean" and block is not None:
                if block.state is BlockState.DIRTY:
                    m.note_cleaned(block, block.dirty_epoch)
            elif op == "evict" and block is not None:
                if block.state is BlockState.CLEAN and block.pins == 0:
                    m.evict(block)
            elif op == "invalidate":
                m.invalidate(key)
            elif op == "lookup":
                found = m.lookup(key)
                assert (found is not None) == (key in m.resident_keys())
            _check_invariants(m)
        # Drain: make everything evictable and evict it.
        for block in list(m.table.blocks()):
            if block.state is BlockState.PENDING:
                block.make_ready()
            if block.state is BlockState.DIRTY:
                m.note_cleaned(block, block.dirty_epoch)
            if block.state is BlockState.CLEAN:
                m.evict(block)
            _check_invariants(m)

    proc = env.process(driver(env))
    env.run(until=proc)
    assert m.n_free == N_BLOCKS
    assert m.n_resident == 0
    assert m.n_dirty == 0
