"""Tests for the PVFS shell utilities."""

import pytest

from repro.pvfs.shell import PVFSShell
from tests.conftest import make_cluster


def test_cp_roundtrip():
    cluster = make_cluster(caching=False)
    shell = PVFSShell(cluster)
    payload = bytes(range(256)) * 100
    shell.cp_in("/data/in", payload)
    assert shell.cp_out("/data/in", len(payload)) == payload


def test_cp_out_without_size_uses_apparent_size():
    cluster = make_cluster(caching=False)
    shell = PVFSShell(cluster)
    payload = b"hello world" * 100
    shell.cp_in("/f", payload)
    out = shell.cp_out("/f")
    # apparent size is block-rounded; the prefix must match
    assert out[: len(payload)] == payload
    assert len(out) % 4096 == 0


def test_cp_out_empty_file():
    cluster = make_cluster(caching=False)
    shell = PVFSShell(cluster)

    def gen(env):
        yield from shell.client.open("/empty")

    shell._run(gen(cluster.env))
    assert shell.cp_out("/empty") == b""


def test_ls_and_exists():
    cluster = make_cluster(caching=False)
    shell = PVFSShell(cluster)
    shell.cp_in("/b", b"x")
    shell.cp_in("/a", b"x")
    assert shell.ls() == ["/a", "/b"]
    assert shell.exists("/a")
    assert not shell.exists("/zzz")


def test_stat_reports_striping():
    cluster = make_cluster(caching=False, iod_nodes=2)
    shell = PVFSShell(cluster)
    # 2 stripes of 64 KB: one per iod
    shell.cp_in("/striped", b"s" * 131072)
    st = shell.stat("/striped")
    assert st.apparent_size == 131072
    assert sum(st.blocks_per_iod.values()) == 32
    assert all(count == 16 for count in st.blocks_per_iod.values())
    assert st.allocated_bytes == 131072


def test_stat_missing_file():
    cluster = make_cluster(caching=False)
    with pytest.raises(FileNotFoundError):
        PVFSShell(cluster).stat("/ghost")


def test_rm_frees_blocks():
    cluster = make_cluster(caching=False)
    shell = PVFSShell(cluster)
    shell.cp_in("/victim", b"v" * 16384)
    assert shell.rm("/victim") == 4
    st = shell.stat("/victim")
    assert st.apparent_size == 0
    with pytest.raises(FileNotFoundError):
        shell.rm("/ghost")


def test_dd_read_and_write():
    cluster = make_cluster()
    shell = PVFSShell(cluster)
    stats = shell.dd("/dd", block_size=16384, count=8, mode="write")
    assert stats["bytes"] == 131072
    assert stats["bytes_per_second"] > 0
    stats = shell.dd("/dd", block_size=16384, count=8, mode="read")
    assert stats["seconds"] > 0
    with pytest.raises(ValueError):
        shell.dd("/dd", 4096, 1, mode="append")


def test_shell_works_through_cache_too():
    cluster = make_cluster()
    shell = PVFSShell(cluster, use_cache=True)
    payload = b"c" * 8192
    shell.cp_in("/cached", payload)
    assert shell.cp_out("/cached", len(payload)) == payload
