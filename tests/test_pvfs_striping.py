"""Unit + property tests for the stripe layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pvfs.striping import StripeLayout


def test_validation():
    with pytest.raises(ValueError):
        StripeLayout(0, 65536)
    with pytest.raises(ValueError):
        StripeLayout(4, 0)
    layout = StripeLayout(4, 65536)
    with pytest.raises(ValueError):
        layout.iod_index(-1)
    with pytest.raises(ValueError):
        layout.local_offset(-1)
    with pytest.raises(ValueError):
        layout.split(-1, 10)


def test_round_robin_mapping():
    layout = StripeLayout(4, 65536)
    assert layout.iod_index(0) == 0
    assert layout.iod_index(65535) == 0
    assert layout.iod_index(65536) == 1
    assert layout.iod_index(4 * 65536) == 0  # wraps


def test_local_offsets_compact():
    layout = StripeLayout(4, 65536)
    # second stripe on iod 0 (global stripe 4) starts locally at 64 KB
    assert layout.local_offset(0) == 0
    assert layout.local_offset(4 * 65536) == 65536
    assert layout.local_offset(4 * 65536 + 100) == 65536 + 100
    assert layout.local_offset(65536) == 0  # iod 1's first byte


def test_split_single_stripe():
    layout = StripeLayout(4, 65536)
    out = layout.split(100, 1000)
    assert out == {0: [(100, 1000)]}


def test_split_across_stripes():
    layout = StripeLayout(2, 100)
    out = layout.split(50, 200)
    assert out == {0: [(50, 50), (200, 50)], 1: [(100, 100)]}


def test_split_single_iod_merges_adjacent():
    layout = StripeLayout(1, 100)
    out = layout.split(0, 1000)
    assert out == {0: [(0, 1000)]}


def test_split_empty():
    layout = StripeLayout(4, 65536)
    assert layout.split(10, 0) == {}


@settings(max_examples=200)
@given(
    n_iods=st.integers(1, 8),
    stripe=st.sampled_from([64, 128, 4096, 65536]),
    offset=st.integers(0, 10**6),
    nbytes=st.integers(0, 10**6),
)
def test_property_split_partitions_range(n_iods, stripe, offset, nbytes):
    """The per-iod ranges exactly tile [offset, offset+nbytes)."""
    layout = StripeLayout(n_iods, stripe)
    out = layout.split(offset, nbytes)
    pieces = sorted(
        (off, n) for ranges in out.values() for off, n in ranges
    )
    cursor = offset
    for off, n in pieces:
        assert off == cursor
        assert n > 0
        cursor = off + n
    assert cursor == offset + nbytes or (nbytes == 0 and not pieces)


@settings(max_examples=200)
@given(
    n_iods=st.integers(1, 8),
    stripe=st.sampled_from([64, 4096, 65536]),
    offset=st.integers(0, 10**6),
    nbytes=st.integers(1, 10**5),
)
def test_property_split_ranges_owned_by_right_iod(
    n_iods, stripe, offset, nbytes
):
    layout = StripeLayout(n_iods, stripe)
    for idx, ranges in layout.split(offset, nbytes).items():
        for off, n in ranges:
            # every byte of the range maps to idx
            assert layout.iod_index(off) == idx
            assert layout.iod_index(off + n - 1) == idx


@settings(max_examples=200)
@given(
    n_iods=st.integers(1, 8),
    stripe=st.sampled_from([64, 4096]),
    offsets=st.lists(st.integers(0, 10**5), min_size=2, max_size=10),
)
def test_property_local_offset_monotone_per_iod(n_iods, stripe, offsets):
    """Within one iod, increasing global offsets map to increasing
    local offsets (sequential scans stay sequential on disk)."""
    layout = StripeLayout(n_iods, stripe)
    by_iod: dict[int, list[tuple[int, int]]] = {}
    for off in sorted(set(offsets)):
        by_iod.setdefault(layout.iod_index(off), []).append(
            (off, layout.local_offset(off))
        )
    for pairs in by_iod.values():
        locals_ = [loc for _, loc in pairs]
        assert locals_ == sorted(locals_)
