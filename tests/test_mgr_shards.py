"""The sharded metadata service: routing, placement, determinism.

The contract has three parts: (1) path → shard routing is a pure
function of the path bytes (never Python's seeded ``hash``), (2) a
file's owning shard is recoverable from its id alone, and (3) one
shard is *exactly* the paper's single mgr — same label, same id
sequence, bit-identical schedule hashes.
"""

import pytest

from repro.cluster.config import ClusterConfig, MGR_SHARDS_ENV_VAR
from repro.pvfs import protocol
from repro.sim.parallel import run_sharded_replay
from tests.conftest import make_cluster, run_app
from tests.test_engine_shards import make_trace, small_config

# -- routing -----------------------------------------------------------------

#: Pinned routing assignments: these may only change if the hash
#: function changes, which would strand every persisted deployment map.
GOLDEN_ROUTES = {
    ("/data/shared", 2): 1,
    ("/data/shared", 4): 3,
    ("/shared/f0", 4): 2,
    ("/shared/f1", 4): 1,
    ("/p0/new0", 4): 1,
    ("/p1/new0", 4): 0,
}


def test_mgr_shard_of_golden_routes():
    for (path, n), expected in GOLDEN_ROUTES.items():
        assert protocol.mgr_shard_of(path, n) == expected


def test_mgr_shard_of_single_shard_is_zero():
    assert protocol.mgr_shard_of("/anything", 1) == 0


def test_mgr_shard_of_in_range_and_covers_shards():
    paths = [f"/f{i}" for i in range(256)]
    shards = {protocol.mgr_shard_of(p, 4) for p in paths}
    assert all(0 <= protocol.mgr_shard_of(p, 4) < 4 for p in paths)
    assert shards == {0, 1, 2, 3}  # no shard starves


def test_mgr_shard_of_rejects_bad_count():
    with pytest.raises(ValueError):
        protocol.mgr_shard_of("/x", 0)


def test_owning_mgr_shard_inverts_id_allocation():
    import itertools

    for n_shards in (1, 2, 4, 8):
        for shard in range(n_shards):
            ids = itertools.count(shard + 1, n_shards)
            for _ in range(5):
                assert (
                    protocol.owning_mgr_shard(next(ids), n_shards) == shard
                )


# -- config seam ----------------------------------------------------------------


def test_mgr_shards_default_is_one():
    assert ClusterConfig().resolved_mgr_shards == 1


def test_mgr_shards_explicit_wins_over_env(monkeypatch):
    monkeypatch.setenv(MGR_SHARDS_ENV_VAR, "8")
    assert ClusterConfig(mgr_shards=2).resolved_mgr_shards == 2


def test_mgr_shards_env_var(monkeypatch):
    monkeypatch.setenv(MGR_SHARDS_ENV_VAR, "4")
    assert ClusterConfig().resolved_mgr_shards == 4


def test_mgr_shards_validation():
    with pytest.raises(ValueError):
        ClusterConfig(mgr_shards=0)


# -- cluster assembly -------------------------------------------------------------


def test_single_shard_keeps_plain_mgr_label():
    cluster = make_cluster()
    assert cluster.mgr is cluster.mgr_servers[0]
    assert cluster.mgr.name == "mgr"
    assert cluster.mgr_placements == [("node0", cluster.config.MGR_PORT)]


def test_shards_round_robin_over_iod_nodes():
    cluster = make_cluster(compute_nodes=4, iod_nodes=2, mgr_shards=4)
    port = cluster.config.MGR_PORT
    assert cluster.mgr_placements == [
        ("node0", port),
        ("node1", port),
        ("node0", port + 1),
        ("node1", port + 1),
    ]
    assert [s.name for s in cluster.mgr_servers] == [
        "mgr0", "mgr1", "mgr2", "mgr3"
    ]


def test_placement_matches_parallel_partitions():
    """Shard k's node is partition (k % n) of plan_shards' order."""
    from repro.sim.mailbox import plan_shards

    config = ClusterConfig(compute_nodes=4, iod_nodes=4, mgr_shards=4)
    from repro.cluster.cluster import Cluster

    cluster = Cluster(config)
    plan = plan_shards(
        config.compute_node_names(), config.iod_node_names(), shards=4
    )
    for k, (node, _port) in enumerate(cluster.mgr_placements):
        assert plan.shard_of(node) == k % 4


# -- end-to-end routing --------------------------------------------------------


def test_opens_route_to_owning_shard():
    cluster = make_cluster(compute_nodes=4, iod_nodes=4, mgr_shards=4)
    client = cluster.client("node0")
    paths = [f"/routes/f{i}" for i in range(8)]

    def app(env):
        handles = []
        for path in paths:
            handles.append((yield from client.open(path)))
        return handles

    handles = run_app(cluster, app(cluster.env))
    for path, handle in zip(paths, handles):
        shard = protocol.mgr_shard_of(path, 4)
        # The file id encodes its allocator; only the owning shard
        # knows the path.
        assert protocol.owning_mgr_shard(handle.file_id, 4) == shard
        assert cluster.mgr_servers[shard].lookup(path) is not None
        for other in range(4):
            if other != shard:
                assert cluster.mgr_servers[other].lookup(path) is None


def test_listdir_merges_all_shards_sorted():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2, mgr_shards=4)
    client = cluster.client("node0")
    paths = [f"/ls/f{i}" for i in range(10)]

    def app(env):
        for path in paths:
            yield from client.open(path)
        return (yield from client.listdir())

    listed = run_app(cluster, app(cluster.env))
    assert listed == sorted(paths)


def test_stat_and_unlink_route_to_owner():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2, mgr_shards=3)
    client = cluster.client("node0")

    def app(env):
        yield from client.open("/route/stat-me")
        reply = yield from client.stat("/route/stat-me")
        missing = yield from client.stat("/route/never-made")
        existed = yield from client.unlink("/route/stat-me")
        gone = yield from client.stat("/route/stat-me")
        return reply, missing, existed, gone

    reply, missing, existed, gone = run_app(cluster, app(cluster.env))
    assert reply is not None
    assert missing is None
    assert existed
    assert gone is None


def test_sync_write_invalidates_across_shard_directories():
    """Coherence still works when the owning shard is not shard 0."""
    cluster = make_cluster(compute_nodes=2, iod_nodes=2, mgr_shards=4)
    path = "/data/shared"  # routes to shard 3 under 4 shards
    assert protocol.mgr_shard_of(path, 4) == 3
    reader = cluster.client("node1")
    writer = cluster.client("node0")

    def read_side(env):
        handle = yield from reader.open(path)
        yield from reader.read(handle, 0, 64 * 1024)

    def write_side(env):
        handle = yield from writer.open(path)
        yield from writer.sync_write(handle, 0, 64 * 1024)

    run_app(cluster, read_side(cluster.env))
    before = cluster.metrics.count("cache.invalidations_received")
    run_app(cluster, write_side(cluster.env))
    assert cluster.metrics.count("cache.invalidations_received") > before


def test_iod_directory_view_merges_partitions():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2, mgr_shards=2)
    iod = cluster.iods[0]
    iod.directories[0][(1, 0)] = {"node0"}
    iod.directories[1][(2, 0)] = {"node1"}
    merged = iod.directory
    assert merged == {(1, 0): {"node0"}, (2, 0): {"node1"}}
    # Re-assignment re-routes entries by owning shard of the file id.
    iod.directory = {(1, 5): {"node0"}, (2, 7): {"node1"}}
    assert iod.directories[0] == {(1, 5): {"node0"}}
    assert iod.directories[1] == {(2, 7): {"node1"}}


# -- determinism -----------------------------------------------------------------


def test_explicit_single_shard_hash_matches_default():
    """mgr_shards=1 is bit-identical to the unset default."""
    trace = make_trace()
    default = run_sharded_replay(
        small_config(), trace, shards=1, hash_enabled=True
    )
    explicit = run_sharded_replay(
        small_config(mgr_shards=1), trace, shards=1, hash_enabled=True
    )
    assert default.trace_hash == explicit.trace_hash


def test_sharded_mgr_changes_the_schedule():
    trace = make_trace()
    one = run_sharded_replay(
        small_config(), trace, shards=1, hash_enabled=True
    )
    four = run_sharded_replay(
        small_config(mgr_shards=4), trace, shards=1, hash_enabled=True
    )
    assert one.trace_hash != four.trace_hash


def test_sharded_mgr_is_run_to_run_deterministic():
    trace = make_trace()
    first = run_sharded_replay(
        small_config(mgr_shards=4), trace, shards=1, hash_enabled=True
    )
    second = run_sharded_replay(
        small_config(mgr_shards=4), trace, shards=1, hash_enabled=True
    )
    assert first.trace_hash == second.trace_hash


def test_sharded_mgr_composes_with_engine_shards():
    """mgr shards compose with the conservative parallel engine:
    both backends agree bit-for-bit and runs repeat exactly.  (The
    engine's conservative timing differs from serial by design, so
    serial-vs-sharded equality is *not* the contract — backend
    equivalence and determinism are.)"""
    trace = make_trace()
    inline = run_sharded_replay(
        small_config(mgr_shards=2),
        trace,
        shards=2,
        backend="inline",
        hash_enabled=True,
    )
    process = run_sharded_replay(
        small_config(mgr_shards=2),
        trace,
        shards=2,
        backend="process",
        hash_enabled=True,
    )
    again = run_sharded_replay(
        small_config(mgr_shards=2),
        trace,
        shards=2,
        backend="inline",
        hash_enabled=True,
    )
    assert inline.shards == 2
    assert inline.trace_hash == process.trace_hash == again.trace_hash
    assert inline.completion == process.completion


def test_open_loop_knee_moves_serially_and_under_engine_shards():
    """A saturating open-loop workload completes measurably more
    ops/s with a sharded mgr — under both execution modes (the p=256
    version with the ≥2x floor is the bench gate)."""
    from repro.workload.openloop import OpenLoopParams, generate

    params = OpenLoopParams(
        processes=16,
        duration_s=0.1,
        rate_ops_s=16000,
        churn=1.0,
        read_fraction=0.0,
        write_fraction=1.0,
        access="uniform",
        file_bytes=4 << 20,
        seed=11,
    )
    trace = generate(params)
    rates = {}
    for mgr_shards in (1, 4):
        config = ClusterConfig(
            compute_nodes=16, iod_nodes=16, mgr_shards=mgr_shards
        )
        serial = run_sharded_replay(
            config, trace, shards=1, preserve_timing=True
        )
        engine = run_sharded_replay(
            config, trace, shards=2, preserve_timing=True
        )
        again = run_sharded_replay(
            config, trace, shards=2, preserve_timing=True
        )
        assert engine.total_time == again.total_time  # deterministic
        rates[mgr_shards] = (
            len(trace) / serial.total_time,
            len(trace) / engine.total_time,
        )
    assert rates[4][0] > 1.5 * rates[1][0]  # serial
    assert rates[4][1] > 1.5 * rates[1][1]  # engine-sharded
