"""Regression tests for two races the flow analyzer surfaced.

1. A ``sync_write`` invalidation arriving while the target block is
   PENDING (fetch in flight) used to be skipped entirely, leaving the
   just-fetched — and possibly stale — bytes resident forever.  The
   fix dooms the PENDING block so the fetch path discards it.
2. The iod's ``_invalidate_sharers`` used to iterate the raw sharer
   set, tying the invalidation packet order (and every downstream
   event) to the string hash seed.
"""

import types

from repro.cache.block import BlockState
from repro.pvfs.iod import Iod
from tests.conftest import make_cluster, run_app


def test_pending_invalidate_discards_in_flight_fetch(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "1")
    cluster = make_cluster()
    client = cluster.client("node0")
    manager = cluster.cache_modules["node0"].manager
    metrics = cluster.metrics
    env = cluster.env

    def invalidator(env, key):
        # wait until the demand fetch has allocated the PENDING block
        for _ in range(100_000):
            block = manager.table.get(key)
            if block is not None and block.state is BlockState.PENDING:
                break
            yield env.timeout(1e-7)
        else:
            raise AssertionError("fetch never left a PENDING block")
        # the racing coherence message: must doom, not skip
        assert manager.invalidate(key) is True
        assert block.doomed

    def app(env):
        f = yield from client.open("/raced")
        key = (f.file_id, 0)
        racer = env.process(invalidator(env, key))
        yield from client.read(f, 0, 4096)
        yield racer
        # the doomed block was discarded, not published
        assert manager.table.get(key) is None
        assert metrics.count(f"{manager.name}.deferred_invalidations") == 1
        # a re-read must go back to the iod instead of hitting the
        # stale snapshot (the old behaviour: permanent stale hit)
        misses = metrics.count("cache.misses")
        yield from client.read(f, 0, 4096)
        assert metrics.count("cache.misses") == misses + 1

    run_app(cluster, app(cluster.env))
    manager.sanitizer.check()


def test_invalidation_fanout_order_is_hash_independent():
    """Sharers must be invalidated in sorted order, whatever the
    iteration order of the directory's sharer set."""
    sharers = {f"node-{c}" for c in "zyxwvutsrqponmlkjihgfedcba"}
    iod = object.__new__(Iod)
    iod.block_size = 4096
    iod.mgr_shards = 1
    iod.directories = [{}]
    iod.directory = {(7, 0): set(sharers) | {"writer"}}
    contacted = []

    class _Call:
        def response(self):
            return None

        def close(self):
            return None

    class _Channel:
        def call(self, message):
            return _Call()

    class _Pool:
        def channel(self, node_name):
            contacted.append(node_name)
            return _Channel()
            yield  # pragma: no cover - makes this a generator

    iod._invalidate_pool = _Pool()
    iod.metrics = types.SimpleNamespace(inc=lambda *a, **k: None)
    iod._emit = lambda *a, **k: None

    req = types.SimpleNamespace(
        file_id=7, ranges=[(0, 4096)], requester_node="writer"
    )
    gen = iod._invalidate_sharers(req)
    try:
        while True:
            gen.send(None)
    except StopIteration:
        pass

    assert contacted == sorted(sharers)
    # the writer's own (current) copy survives in the directory
    assert iod.directory[(7, 0)] == {"writer"}
