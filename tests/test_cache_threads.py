"""Tests for the flusher and harvester kernel threads."""

import pytest

from repro.cache.block import BlockState
from tests.conftest import make_cluster, run_app


def _dirty_some(cluster, client, nbytes, path="/f"):
    """Generator: write nbytes through the cache, return handle."""

    def gen(env):
        f = yield from client.open(path)
        yield from client.write(f, 0, nbytes, None)
        return f

    return gen(cluster.env)


# -- flusher -------------------------------------------------------------------


def test_flusher_periodic_writeback():
    cluster = make_cluster()
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 16384, b"x" * 16384)
        assert module.manager.n_dirty == 4
        yield env.timeout(module.config.flush_period_s * 2.5)
        assert module.manager.n_dirty == 0
        # the bytes are now at the iods, visible to raw readers
        raw = cluster.client("node1", use_cache=False)
        data = yield from raw.read(f, 0, 16384, want_data=True)
        assert data == b"x" * 16384

    run_app(cluster, app(cluster.env))


def test_flusher_coalesces_contiguous_blocks():
    cluster = make_cluster(iod_nodes=1, compute_nodes=1)
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        # 8 contiguous blocks: one flush batch with ONE entry
        yield from client.write(f, 0, 32768, None)
        module = cluster.cache_modules["node0"]
        yield from module.flusher.drain()
        assert m.count("flusher.batches") == 1
        batches = m.count("iod.flush_batches")
        assert batches == 1

    run_app(cluster, app(cluster.env))


def test_flusher_respects_dirty_epoch_races():
    cluster = make_cluster()
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 4096, b"1" * 4096)
        # Start a flush round, then rewrite the block mid-flight.
        flush = env.process(module.flusher.flush_round())
        yield from client.write(f, 0, 4096, b"2" * 4096)
        yield flush
        block = module.manager.table.get((f.file_id, 0))
        # the raced write must keep the block dirty
        assert block.state is BlockState.DIRTY
        yield from module.flusher.drain()
        assert module.manager.n_dirty == 0
        raw = cluster.client("node1", use_cache=False)
        data = yield from raw.read(f, 0, 4096, want_data=True)
        assert data == b"2" * 4096

    run_app(cluster, app(cluster.env))


def test_flusher_drain_empties():
    cluster = make_cluster()
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        yield from _dirty_some_inline(env)

    def _dirty_some_inline(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 65536, None)
        yield from module.flusher.drain()
        assert module.manager.n_dirty == 0

    run_app(cluster, app(cluster.env))


def test_flush_round_empty_is_noop():
    cluster = make_cluster()
    module = cluster.cache_modules["node0"]

    def app(env):
        cleaned = yield from module.flusher.flush_round()
        assert cleaned == 0

    run_app(cluster, app(cluster.env))


def test_flusher_no_duplicate_shipping():
    cluster = make_cluster()
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 8192, None)
        # two concurrent flush requests for the same blocks
        p1 = env.process(module.flusher.flush_round())
        p2 = env.process(module.flusher.flush_round())
        yield env.all_of([p1, p2])
        # 8 KB written once, not twice
        assert m.count("flusher.bytes") == 8192

    run_app(cluster, app(cluster.env))


# -- harvester -----------------------------------------------------------------


def test_harvester_maintains_watermarks():
    cluster = make_cluster(cache_blocks=32)
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        f = yield from client.open("/f")
        for i in range(16):
            yield from client.read(f, i * 16384, 16384)
        # give the harvester a moment to settle
        yield env.timeout(0.05)
        assert len(module.manager.freelist) >= module.config.low_blocks

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("harvester.freed") > 0
    assert cluster.metrics.count("harvester.activations") > 0


def test_harvester_flushes_dirty_victims():
    """When everything is dirty, the harvester must flush then free."""
    cluster = make_cluster(cache_blocks=16)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        # write 4x the cache without ever reading: all blocks dirty
        yield from client.write(f, 0, 64 * 4096, None)

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("harvester.dirty_flushes") > 0
    assert cluster.metrics.count("cache.evictions") > 0


def test_harvester_prefers_clean_victims():
    cluster = make_cluster(cache_blocks=16)
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        f = yield from client.open("/f")
        # 8 clean blocks (read) + 4 dirty (written, not yet flushed)
        yield from client.read(f, 0, 8 * 4096)
        yield from client.write(f, 16 * 4096, 4 * 4096, None)
        # age the refbits so the clock can evict
        for b in module.manager.blocks:
            b.refbit = False
        victims = module.manager.select_victims(4)
        assert all(v.state is BlockState.CLEAN for v in victims)

    run_app(cluster, app(cluster.env))


def test_harvester_wake_is_idempotent():
    cluster = make_cluster()
    module = cluster.cache_modules["node0"]
    module.harvester.wake()
    module.harvester.wake()  # second wake while already triggered

    def app(env):
        yield env.timeout(0.01)

    run_app(cluster, app(cluster.env))
