"""Tests for the two-phase collective I/O layer."""

import pytest

from repro.pvfs.collective import (
    CollectiveGroup,
    InterleavedAccess,
    run_interleaved_read,
)
from tests.conftest import make_cluster


def test_interleaved_access_geometry():
    a = InterleavedAccess(rank=1, n_ranks=4, item_bytes=1024, items=3, base=100)
    assert a.offsets() == [100 + 1024, 100 + 4096 + 1024, 100 + 8192 + 1024]
    assert a.total_bytes == 3072
    assert a.aggregate_bytes == 12288


def test_group_requires_ranks():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        CollectiveGroup(cluster, [])


def test_ranks_cover_aggregate_disjointly():
    accesses = [
        InterleavedAccess(rank=r, n_ranks=4, item_bytes=512, items=4)
        for r in range(4)
    ]
    covered = set()
    for a in accesses:
        for off in a.offsets():
            region = set(range(off, off + a.item_bytes))
            assert not (covered & region)
            covered |= region
    assert covered == set(range(accesses[0].aggregate_bytes))


def test_independent_read_completes():
    cluster = make_cluster(caching=False)
    t = run_interleaved_read(
        cluster, cluster.compute_nodes, item_bytes=4096,
        items_per_rank=8, collective=False,
    )
    assert t > 0
    assert cluster.metrics.count("collective.independent_reads") == 2


def test_collective_read_completes_with_shuffle():
    cluster = make_cluster(caching=False)
    t = run_interleaved_read(
        cluster, cluster.compute_nodes, item_bytes=4096,
        items_per_rank=8, collective=True,
    )
    assert t > 0
    assert cluster.metrics.count("collective.reads") == 2


def test_collective_beats_independent_for_small_items_no_cache():
    """Tiny interleaved items: per-request overhead dominates the
    independent version; the collective's two large reads + shuffle
    win.  (The classic two-phase I/O result.)"""

    def run(collective):
        cluster = make_cluster(compute_nodes=4, iod_nodes=4, caching=False)
        return run_interleaved_read(
            cluster, cluster.compute_nodes, item_bytes=2048,
            items_per_rank=32, collective=collective,
        )

    assert run(True) < run(False)


def test_cache_narrows_the_collective_gap():
    """With adjacent ranks co-located, the kernel cache merges their
    sub-block items into shared 4 KB fetches: the independent version
    improves far more than the collective one — the interplay question
    the module exists to answer."""

    def run(collective, caching):
        cluster = make_cluster(compute_nodes=2, iod_nodes=2, caching=caching)
        # ranks 0,1 on node0 and 2,3 on node1: neighbouring ranks'
        # 2 KB items share 4 KB cache blocks
        ranks = ["node0", "node0", "node1", "node1"]
        return run_interleaved_read(
            cluster, ranks, item_bytes=2048,
            items_per_rank=32, collective=collective,
        )

    gap_nocache = run(False, False) / run(True, False)
    gap_cache = run(False, True) / run(True, True)
    assert gap_cache < gap_nocache


def test_collective_write_completes():
    cluster = make_cluster(caching=False)
    t = run_interleaved_read(
        cluster, cluster.compute_nodes, item_bytes=4096,
        items_per_rank=8, collective=True, mode="write",
    )
    assert t > 0
    assert cluster.metrics.count("collective.writes") == 2


def test_independent_write_completes():
    cluster = make_cluster(caching=False)
    t = run_interleaved_read(
        cluster, cluster.compute_nodes, item_bytes=4096,
        items_per_rank=8, collective=False, mode="write",
    )
    assert t > 0
    assert cluster.metrics.count("collective.independent_writes") == 2


def test_collective_write_beats_independent_without_cache():
    def run(collective):
        cluster = make_cluster(compute_nodes=4, iod_nodes=4, caching=False)
        return run_interleaved_read(
            cluster, cluster.compute_nodes, item_bytes=2048,
            items_per_rank=32, collective=collective, mode="write",
        )

    assert run(True) < run(False)


def test_invalid_mode_rejected():
    cluster = make_cluster()
    with pytest.raises(ValueError, match="read/write"):
        run_interleaved_read(
            cluster, cluster.compute_nodes, item_bytes=4096,
            items_per_rank=1, collective=True, mode="append",
        )


def test_single_rank_collective_degenerates():
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    t = run_interleaved_read(
        cluster, ["node0"], item_bytes=4096, items_per_rank=4,
        collective=True,
    )
    assert t > 0  # no peers to shuffle with; still completes
