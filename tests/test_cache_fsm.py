"""Unit tests for the per-request finite state machine."""

import pytest

from repro.cache.fsm import FSMState, IllegalTransition, RequestFSM
from repro.sim import Environment


def test_initial_state():
    env = Environment()
    fsm = RequestFSM(env)
    assert fsm.state is FSMState.IDLE
    assert not fsm.is_done
    assert fsm.states_visited() == [FSMState.IDLE]


def test_full_miss_path():
    env = Environment()
    fsm = RequestFSM(env)
    fsm.to(FSMState.LOOKUP)
    fsm.to(FSMState.REQUESTS_ISSUED)
    fsm.to(FSMState.ACK_FAKED)
    fsm.fake_ack(3)
    fsm.to(FSMState.AWAIT_DATA)
    fsm.to(FSMState.COPY)
    fsm.to(FSMState.DONE)
    assert fsm.is_done
    assert fsm.faked_acks == 3
    assert fsm.states_visited() == [
        FSMState.IDLE,
        FSMState.LOOKUP,
        FSMState.REQUESTS_ISSUED,
        FSMState.ACK_FAKED,
        FSMState.AWAIT_DATA,
        FSMState.COPY,
        FSMState.DONE,
    ]


def test_full_hit_shortcut():
    env = Environment()
    fsm = RequestFSM(env)
    fsm.to(FSMState.LOOKUP)
    fsm.to(FSMState.COPY)  # all blocks cached: skip the wire
    fsm.to(FSMState.DONE)
    assert fsm.is_done
    assert fsm.faked_acks == 0


def test_illegal_transitions_raise():
    env = Environment()
    fsm = RequestFSM(env)
    with pytest.raises(IllegalTransition):
        fsm.to(FSMState.COPY)  # IDLE -> COPY illegal
    fsm.to(FSMState.LOOKUP)
    with pytest.raises(IllegalTransition):
        fsm.to(FSMState.AWAIT_DATA)
    fsm.to(FSMState.REQUESTS_ISSUED)
    with pytest.raises(IllegalTransition):
        fsm.to(FSMState.DONE)


def test_done_is_terminal():
    env = Environment()
    fsm = RequestFSM(env)
    fsm.to(FSMState.LOOKUP)
    fsm.to(FSMState.DONE)
    for state in FSMState:
        with pytest.raises(IllegalTransition):
            fsm.to(state)


def test_fake_ack_only_in_ack_faked_state():
    env = Environment()
    fsm = RequestFSM(env)
    with pytest.raises(IllegalTransition):
        fsm.fake_ack()
    fsm.to(FSMState.LOOKUP)
    fsm.to(FSMState.REQUESTS_ISSUED)
    fsm.to(FSMState.ACK_FAKED)
    fsm.fake_ack()
    fsm.fake_ack(2)
    assert fsm.faked_acks == 3


def test_trace_records_times():
    env = Environment()
    fsm = RequestFSM(env)

    def proc(env):
        fsm.to(FSMState.LOOKUP)
        yield env.timeout(5)
        fsm.to(FSMState.COPY)
        fsm.to(FSMState.DONE)

    env.process(proc(env))
    env.run()
    times = dict((s.value, t) for s, t in fsm.trace)
    assert times["lookup"] == 0.0
    assert times["copy"] == 5.0
