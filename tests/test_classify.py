"""Tests for the sharing-pattern classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.classify import (
    PATTERNS,
    RECOMMENDATIONS,
    AccessRecord,
    SharingClassifier,
    TraceCollector,
)
from tests.conftest import make_cluster


def _r(t, proc, file_id, block, op):
    return AccessRecord(time=t, process=proc, file_id=file_id, block_no=block, op=op)


def test_record_validation():
    with pytest.raises(ValueError):
        _r(0, "p", 1, 0, "append")


def test_unused_file():
    c = SharingClassifier()
    assert c.classify(42) == "unused"
    assert c.recommendation(42) == RECOMMENDATIONS["unused"]


def test_private_pattern():
    c = SharingClassifier()
    c.observe([_r(i, "p1", 1, i, "read") for i in range(5)])
    c.record(_r(9, "p1", 1, 0, "write"))
    assert c.classify(1) == "private"


def test_read_shared_pattern():
    c = SharingClassifier()
    c.observe([_r(i, "p1", 1, i, "read") for i in range(5)])
    c.observe([_r(10 + i, "p2", 1, i, "read") for i in range(5)])
    assert c.classify(1) == "read-shared"


def test_disjoint_readers():
    c = SharingClassifier()
    c.observe([_r(i, "p1", 1, i, "read") for i in range(5)])
    c.observe([_r(i, "p2", 1, 100 + i, "read") for i in range(5)])
    assert c.classify(1) == "disjoint"


def test_producer_consumer_pattern():
    c = SharingClassifier()
    c.observe([_r(i, "writer", 1, i, "write") for i in range(5)])
    c.observe([_r(10 + i, "reader", 1, i, "read") for i in range(5)])
    assert c.classify(1) == "producer-consumer"


def test_multiple_writers_is_rw_shared():
    c = SharingClassifier()
    c.record(_r(0, "p1", 1, 0, "write"))
    c.record(_r(1, "p2", 1, 0, "write"))
    assert c.classify(1) == "read-write-shared"


def test_disjoint_writers():
    c = SharingClassifier()
    c.observe([_r(i, "p1", 1, i, "write") for i in range(3)])
    c.observe([_r(i, "p2", 1, 50 + i, "write") for i in range(3)])
    assert c.classify(1) == "disjoint"


def test_per_file_isolation():
    c = SharingClassifier()
    c.record(_r(0, "p1", 1, 0, "read"))
    c.record(_r(0, "p1", 2, 0, "write"))
    c.record(_r(1, "p2", 2, 0, "read"))
    report = c.report()
    assert report[1] == "private"
    assert report[2] == "producer-consumer"


def test_processes_of():
    c = SharingClassifier()
    c.record(_r(0, "a", 1, 0, "read"))
    c.record(_r(0, "b", 1, 1, "write"))
    assert c.processes_of(1) == {"a", "b"}


def test_all_patterns_have_recommendations():
    assert set(RECOMMENDATIONS) == set(PATTERNS)


@settings(max_examples=100)
@given(
    records=st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.sampled_from(["p1", "p2", "p3"]),
            st.integers(1, 2),
            st.integers(0, 8),
            st.sampled_from(["read", "write"]),
        ),
        max_size=30,
    )
)
def test_property_classification_total_and_stable(records):
    """Any trace classifies into a known pattern, deterministically."""
    recs = [
        _r(t, p, f, b, op) for t, p, f, b, op in sorted(records, key=lambda r: r[0])
    ]
    c1, c2 = SharingClassifier(), SharingClassifier()
    c1.observe(recs)
    c2.observe(recs)
    for f in (1, 2):
        assert c1.classify(f) in PATTERNS
        assert c1.classify(f) == c2.classify(f)


# -- TraceCollector + client hook ----------------------------------------------


def test_trace_collector_block_expansion():
    c = SharingClassifier()
    tc = TraceCollector(c, block_size=4096)
    tc(0.0, "p1", 7, 1000, 8000, "read")  # blocks 0..2
    assert c.records_seen == 3
    tc(0.0, "p1", 7, 0, 0, "read")  # zero bytes: no records
    assert c.records_seen == 3


def test_client_trace_hook_end_to_end():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    classifier = SharingClassifier()
    collector = TraceCollector(classifier)
    writer = cluster.client("node0")
    reader = cluster.client("node1")
    writer.trace_sink = collector
    reader.trace_sink = collector
    writer.process_name = "writer"
    reader.process_name = "reader"

    def app(env):
        f = yield from writer.open("/produced")
        yield from writer.write(f, 0, 16384, None)
        yield from cluster.drain_caches()
        yield from reader.read(f, 0, 16384)
        return f.file_id

    proc = cluster.env.process(app(cluster.env))
    file_id = cluster.env.run(until=proc)
    assert classifier.classify(file_id) == "producer-consumer"
