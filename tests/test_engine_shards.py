"""Conservative parallel engine (DESIGN.md §17): equivalence + edges.

The determinism oracle is the BLAKE2b schedule hash: a sharded replay
must merge to the *same* canonical hash whether the shards interleave
in this process (``inline``) or run in worker processes (``process``),
and a single-shard run must hash identically to the plain serial
replayer.  Shard-boundary edge cases — loopback sends, a timer
cancelled in the quantum it would cross a barrier, an empty shard —
get their own coverage.
"""

from __future__ import annotations

import pytest

from repro.analysis.reset import reset_all
from repro.cluster.config import (
    ENGINE_SHARDS_ENV_VAR,
    SHARD_BACKEND_ENV_VAR,
    CacheConfig,
    ClusterConfig,
)
from repro.sim import Environment
from repro.sim.mailbox import Envelope, ShardPlan, plan_shards
from repro.sim.parallel import merged_trace_hash, run_sharded_replay
from repro.workload.trace import Trace, TraceEvent


def make_trace(procs: int = 4, events_per: int = 6) -> Trace:
    """A small deterministic multi-process workload with sharing."""
    events = []
    for i in range(procs):
        process = f"app-{i:02d}"
        for j in range(events_per):
            t = (j * procs + i) * 1e-4
            if j % 3 == 2:
                events.append(
                    TraceEvent(
                        time=t,
                        process=process,
                        path="/shared",
                        op="write",
                        offset=((i * events_per + j) % 8) * 4096,
                        nbytes=4096,
                    )
                )
            else:
                events.append(
                    TraceEvent(
                        time=t,
                        process=process,
                        path="/shared",
                        op="read",
                        offset=((j * 7 + i) % 16) * 4096,
                        nbytes=8192,
                    )
                )
    return Trace(events=events)


def small_config(**overrides) -> ClusterConfig:
    return ClusterConfig(
        compute_nodes=4,
        iod_nodes=4,
        caching=True,
        cache=CacheConfig(size_bytes=64 * 4096),
        **overrides,
    )


# -- shard planning ----------------------------------------------------------
def test_plan_shards_co_locates_iods_with_compute():
    plan = plan_shards(
        ["node0", "node1", "node2", "node3"],
        ["node0", "node1", "node2", "node3"],
        2,
    )
    assert plan.shards == 2
    # compute i and iod i share node names here, so one entry each;
    # round-robin: even nodes shard 0, odd nodes shard 1.
    assert plan.shard_of("node0") == 0
    assert plan.shard_of("node1") == 1
    assert plan.local_nodes(0) == ["node0", "node2"]
    assert plan.local_nodes(1) == ["node1", "node3"]


def test_plan_shards_separate_iod_pool():
    plan = plan_shards(["node0", "node1"], ["node2", "node3"], 2)
    # iod j rides with compute j: node2 with node0, node3 with node1.
    assert plan.shard_of("node2") == plan.shard_of("node0")
    assert plan.shard_of("node3") == plan.shard_of("node1")


def test_plan_allows_empty_shard():
    plan = plan_shards(["node0"], ["node0"], 3)
    assert plan.local_nodes(0) == ["node0"]
    assert plan.local_nodes(1) == []
    assert plan.local_nodes(2) == []


def test_shard_plan_validates():
    with pytest.raises(ValueError):
        ShardPlan(shards=0, assignment={})
    with pytest.raises(ValueError):
        ShardPlan(shards=2, assignment={"node0": 5})


# -- engine horizon stepping -------------------------------------------------
def test_run_horizon_is_exclusive():
    env = Environment()
    seen: list[float] = []

    def body(env):
        seen.append(env.now)
        yield env.timeout(100e-6)
        seen.append(env.now)

    env.process(body(env))
    # The event *at* the horizon must NOT run (exclusive bound): an
    # envelope injected for exactly t=h must still be in the future.
    assert env.run_horizon(100e-6) is False
    assert seen == [0.0]
    assert env.now == 100e-6
    env.run_horizon(200e-6)
    assert seen == [0.0, 100e-6]


def test_run_horizon_rejects_past_horizons():
    env = Environment()
    env.run_horizon(1.0)
    with pytest.raises(ValueError):
        env.run_horizon(0.5)


def test_run_horizon_stop_event_short_circuits():
    env = Environment()

    def body(env):
        yield env.timeout(10e-6)

    proc = env.process(body(env))
    assert env.run_horizon(1.0, stop_event=proc) is True
    assert env.now == pytest.approx(10e-6)


def test_timer_cancelled_in_quantum_it_would_cross_a_barrier():
    """A Timer armed past the horizon and cancelled before the barrier
    must never fire in any later quantum."""
    env = Environment()
    fired: list[float] = []
    timer = env.timer(lambda t: fired.append(env.now))
    timer.arm(150e-6)  # deadline inside the *next* 100us quantum

    def canceller(env):
        yield env.timeout(50e-6)
        timer.cancel()

    env.process(canceller(env))
    env.run_horizon(100e-6)
    assert not timer.armed
    env.run_horizon(200e-6)
    env.run_horizon(300e-6)
    assert fired == []
    assert env.now == 300e-6


# -- hash equivalence --------------------------------------------------------
def test_single_shard_hash_equals_serial_replay():
    from repro.workload.replay import replay_trace_hash

    trace = make_trace()
    serial = replay_trace_hash(
        trace.dumps(), compute_nodes=4, iod_nodes=4, caching=True
    )
    reset_all()
    one = run_sharded_replay(
        ClusterConfig(compute_nodes=4, iod_nodes=4, caching=True),
        trace,
        shards=1,
        hash_enabled=True,
    )
    assert one.trace_hash == serial
    assert one.shard_hashes == [serial]
    assert one.barriers == 0


@pytest.mark.parametrize("net_model", ["frames", "fluid"])
@pytest.mark.parametrize("disk_model", ["mech", "queued"])
def test_inline_and_process_backends_hash_identically(net_model, disk_model):
    """The equivalence table: frames/fluid x mech/queued, macro off."""
    trace = make_trace()
    config = small_config(
        net_model=net_model, disk_model=disk_model, engine_macro=False
    )
    inline = run_sharded_replay(
        config, trace, shards=2, backend="inline", hash_enabled=True
    )
    process = run_sharded_replay(
        config, trace, shards=2, backend="process", hash_enabled=True
    )
    assert inline.trace_hash == process.trace_hash
    assert inline.shard_hashes == process.shard_hashes
    assert inline.barriers == process.barriers
    assert inline.completion == process.completion
    assert inline.counters == process.counters


def test_inline_backend_is_run_to_run_deterministic():
    trace = make_trace()
    config = small_config(engine_macro=False)
    first = run_sharded_replay(
        config, trace, shards=2, backend="inline", hash_enabled=True
    )
    second = run_sharded_replay(
        config, trace, shards=2, backend="inline", hash_enabled=True
    )
    assert first.trace_hash == second.trace_hash
    assert first.barriers > 0
    assert first.counters["sim.cross_shard_msgs"] > 0


def test_sharded_run_reports_barrier_observability():
    trace = make_trace()
    out = run_sharded_replay(
        small_config(engine_macro=False),
        trace,
        shards=2,
        backend="inline",
        hash_enabled=False,
    )
    assert out.trace_hash is None
    for sched in out.shard_sched:
        assert sched["barriers_crossed"] == out.barriers
    assert out.events_processed >= out.max_shard_events
    assert out.total_time == max(out.completion.values())


# -- shard-boundary edge cases -----------------------------------------------
def test_loopback_sends_stay_intra_shard():
    """Co-located iod traffic (loopback, latency below the lookahead)
    never crosses the mailbox: node i's iod is always in node i's
    shard, so sub-lookahead local sends cannot violate the barrier."""
    trace = make_trace(procs=2, events_per=4)
    config = ClusterConfig(compute_nodes=2, iod_nodes=2, caching=True)
    inline = run_sharded_replay(
        config, trace, shards=2, backend="inline", hash_enabled=True
    )
    process = run_sharded_replay(
        config, trace, shards=2, backend="process", hash_enabled=True
    )
    assert inline.trace_hash == process.trace_hash
    # Loopback iod reads happened (each proc reads its own node's
    # stripes for some offsets) and the run completed every process.
    assert set(inline.completion) == {"app-00", "app-01"}


def test_empty_shard_when_nodes_fewer_than_shards():
    trace = make_trace(procs=2, events_per=3)
    config = ClusterConfig(compute_nodes=2, iod_nodes=2, caching=True)
    inline = run_sharded_replay(
        config, trace, shards=3, backend="inline", hash_enabled=True
    )
    process = run_sharded_replay(
        config, trace, shards=3, backend="process", hash_enabled=True
    )
    assert inline.trace_hash == process.trace_hash
    assert len(inline.shard_hashes) == 3
    # The empty shard processed nothing.
    assert min(s["events_processed"] for s in inline.shard_sched) == 0


def test_global_cache_refuses_sharding():
    config = ClusterConfig(
        compute_nodes=2,
        iod_nodes=2,
        caching=True,
        cache=CacheConfig(global_cache=True),
    )
    with pytest.raises(ValueError, match="global_cache"):
        run_sharded_replay(
            config, make_trace(procs=2, events_per=2),
            shards=2, backend="inline",
        )


# -- mailbox ordering --------------------------------------------------------
def test_merged_hash_is_identity_for_one_shard():
    assert merged_trace_hash(["abc"]) == "abc"
    assert merged_trace_hash(["a", "b"]) != merged_trace_hash(["b", "a"])


def test_envelope_sort_key_orders_time_shard_seq():
    envs = [
        Envelope(deliver_time=2e-4, src_shard=1, dst_shard=0, seq=1,
                 conn_uid=(1, 1)),
        Envelope(deliver_time=1e-4, src_shard=1, dst_shard=0, seq=2,
                 conn_uid=(1, 1)),
        Envelope(deliver_time=1e-4, src_shard=0, dst_shard=1, seq=9,
                 conn_uid=(0, 1)),
    ]
    ordered = sorted(envs, key=lambda e: e.sort_key)
    assert [e.sort_key for e in ordered] == [
        (1e-4, 0, 9), (1e-4, 1, 2), (2e-4, 1, 1)
    ]


def test_mailbox_fifo_clamp_and_barrier_violation_guard():
    from repro.net.message import Message
    from repro.sim.mailbox import InterShardMailbox, RemoteHalfConnection

    env = Environment()
    plan = plan_shards(["node0", "node1"], ["node0", "node1"], 2)
    # Latency shrinks between calls: the second message would overtake
    # the first without the per-direction FIFO clamp.
    latencies = iter([200e-6, 100e-6])
    mailbox = InterShardMailbox(
        env, 0, plan, network=object(), latency=lambda n: next(latencies)
    )
    half = RemoteHalfConnection(
        mailbox, (0, 1), "node0", "node1", "client", peer_shard=1
    )
    half._send("client", Message(kind="req", size_bytes=0))
    half._send("client", Message(kind="req", size_bytes=0))
    first, second = mailbox.collect()
    assert second.deliver_time >= first.deliver_time
    assert mailbox.outbox == []
    # Injecting an envelope into the shard's past is a protocol bug.
    env.run_horizon(1.0)
    stale = Envelope(
        deliver_time=0.5, src_shard=1, dst_shard=0, seq=1, conn_uid=(1, 1)
    )
    with pytest.raises(RuntimeError, match="past"):
        mailbox.inject([stale])


# -- config / runner / CLI wiring --------------------------------------------
def test_config_validates_shard_fields():
    with pytest.raises(ValueError):
        ClusterConfig(engine_shards=0)
    with pytest.raises(ValueError):
        ClusterConfig(shard_backend="threads")


def test_resolved_engine_shards(monkeypatch):
    monkeypatch.delenv(ENGINE_SHARDS_ENV_VAR, raising=False)
    assert ClusterConfig().resolved_engine_shards == 1
    monkeypatch.setenv(ENGINE_SHARDS_ENV_VAR, "3")
    assert ClusterConfig().resolved_engine_shards == 3
    assert ClusterConfig(engine_shards=2).resolved_engine_shards == 2
    monkeypatch.setenv(ENGINE_SHARDS_ENV_VAR, "zero")
    with pytest.raises(ValueError):
        ClusterConfig().resolved_engine_shards
    monkeypatch.setenv(ENGINE_SHARDS_ENV_VAR, "0")
    with pytest.raises(ValueError):
        ClusterConfig().resolved_engine_shards


def test_resolved_shard_backend(monkeypatch):
    monkeypatch.delenv(SHARD_BACKEND_ENV_VAR, raising=False)
    assert ClusterConfig().resolved_shard_backend == "process"
    monkeypatch.setenv(SHARD_BACKEND_ENV_VAR, "inline")
    assert ClusterConfig().resolved_shard_backend == "inline"
    assert (
        ClusterConfig(shard_backend="process").resolved_shard_backend
        == "process"
    )
    monkeypatch.setenv(SHARD_BACKEND_ENV_VAR, "threads")
    with pytest.raises(ValueError):
        ClusterConfig().resolved_shard_backend


def test_engine_shards_cli_flag_sets_env(monkeypatch):
    import repro.experiments.report as report

    monkeypatch.setenv(ENGINE_SHARDS_ENV_VAR, "sentinel")
    monkeypatch.setattr(report, "run_all", lambda **kwargs: [])
    assert report.main(["--engine-shards", "4"]) == 0
    import os

    assert os.environ[ENGINE_SHARDS_ENV_VAR] == "4"


def test_run_instances_routes_sharded_replay(tmp_path, monkeypatch):
    from repro.workload.runner import run_instances

    trace_file = tmp_path / "workload.jsonl"
    trace_file.write_text(make_trace(procs=2, events_per=3).dumps())
    config = ClusterConfig(
        compute_nodes=2,
        iod_nodes=2,
        caching=True,
        trace_source=str(trace_file),
        engine_shards=2,
        shard_backend="inline",
    )
    outcome = run_instances(config, [])
    assert outcome.cluster is None
    assert outcome.trace is None
    assert outcome.total_time > 0
    assert outcome.counters["client.reads"] > 0
    assert len(outcome.instances) == 1
    assert set(outcome.instances[0].per_rank) == {0, 1}


def test_run_instances_sharded_refuses_recording(tmp_path):
    from repro.workload.runner import run_instances

    trace_file = tmp_path / "workload.jsonl"
    trace_file.write_text(make_trace(procs=2, events_per=2).dumps())
    config = ClusterConfig(
        compute_nodes=2,
        iod_nodes=2,
        trace_source=str(trace_file),
        engine_shards=2,
        shard_backend="inline",
    )
    with pytest.raises(ValueError, match="record"):
        run_instances(config, [], record=True)
