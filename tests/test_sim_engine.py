"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import Environment, Event, Interrupt, ProcessKilled, Timeout
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(1.5)
        times.append(env.now)
        yield env.timeout(2.5)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.5, 4.0]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25)
    assert env.now == 25


def test_run_until_past_raises():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 3


def test_run_until_event_propagates_failure():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=env.process(proc(env)))


def test_run_until_unfired_event_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=never)


def test_step_on_empty_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_process_waits_on_event():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter(env):
        value = yield ev
        seen.append((env.now, value))

    def firer(env):
        yield env.timeout(7)
        ev.succeed("done")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert seen == [(7.0, "done")]


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1)
        ev.fail(ValueError("bad"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["bad"]


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    out = []

    def proc(env):
        yield env.timeout(5)
        value = yield ev  # processed long ago
        out.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert out == [(5.0, "early")]


def test_process_waiting_on_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        log.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [(2.0, "child-result")]


def test_process_yielding_non_event_fails():
    env = Environment()

    def bad(env):
        yield 42

    proc = env.process(bad(env))
    env.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, TypeError)


def test_process_yielding_foreign_event_fails():
    env1, env2 = Environment(), Environment()

    def bad(env):
        yield env2.event()

    proc = env1.process(bad(env1))
    env1.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, ValueError)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError, match="generator"):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake-up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3.0, "wake-up")]


def test_interrupt_then_original_event_does_not_double_resume():
    env = Environment()
    resumed = []

    def sleeper(env):
        try:
            yield env.timeout(5)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        yield env.timeout(100)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert resumed == ["interrupt"]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError, match="terminated"):
        proc.interrupt()


def test_kill_terminates_and_fails_waiters():
    env = Environment()
    caught = []

    def sleeper(env):
        yield env.timeout(100)

    def killer(env, victim):
        yield env.timeout(1)
        victim.kill()

    def waiter(env, victim):
        try:
            yield victim
        except ProcessKilled:
            caught.append(env.now)

    victim = env.process(sleeper(env))
    env.process(killer(env, victim))
    env.process(waiter(env, victim))
    env.run()
    assert caught == [1.0]
    assert not victim.is_alive


def test_kill_is_idempotent():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100)

    victim = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(1)
        victim.kill()
        victim.kill()  # second kill is a no-op

    env.process(killer(env))
    env.run()
    assert not victim.is_alive


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt("die")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.triggered and not victim.ok
    assert isinstance(victim.value, Interrupt)


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_timeout_repr_and_event_repr():
    env = Environment()
    assert "Timeout" in repr(env.timeout(3))
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    env.run()
    assert "processed" in repr(ev)


def test_all_of_collects_values():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        got = yield env.all_of([t1, t2])
        results.append((env.now, sorted(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(2.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        got = yield env.all_of([])
        done.append(got)

    env.process(proc(env))
    env.run()
    assert done == [{}]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(1, value="fast")
        got = yield env.any_of([t1, t2])
        results.append((env.now, list(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1.0, ["fast"])]


def test_condition_fails_if_member_fails():
    env = Environment()
    outcome = []

    def firer(env, ev):
        yield env.timeout(1)
        ev.fail(KeyError("nope"))

    def proc(env, ev):
        try:
            yield env.all_of([ev, env.timeout(10)])
        except KeyError:
            outcome.append(env.now)

    ev = env.event()
    env.process(firer(env, ev))
    env.process(proc(env, ev))
    env.run()
    assert outcome == [1.0]


def test_condition_mixed_environment_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        env1.all_of([env1.event(), env2.event()])


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4
    env.run()
    assert env.peek() == float("inf")


def test_deterministic_replay():
    """Two identical runs produce identical event interleavings."""

    def scenario():
        env = Environment()
        trace = []

        def worker(env, tag, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((env.now, tag, i))

        for tag, delay in [("a", 1.0), ("b", 1.0), ("c", 0.5)]:
            env.process(worker(env, tag, delay))
        env.run()
        return trace

    assert scenario() == scenario()


# ---------------------------------------------------------------------------
# Event-queue fast path (timer wheel + far heap + compaction, DESIGN.md §14)
# ---------------------------------------------------------------------------


def test_randomized_timeout_storm_fires_in_order():
    """Differential check of the wheel/deque/heap queue against a
    plain sorted reference: same-priority events must fire in exact
    (time, creation-order) sequence no matter which structure each
    entry landed in (due deque, current bucket, calendar ring, or far
    heap)."""
    import random

    rng = random.Random(0xC0FFEE)
    env = Environment()
    fired = []
    created = []

    def spawn(env):
        tag = 0
        for _ in range(40):
            for _ in range(rng.randrange(1, 40)):
                delay = rng.choice(
                    (
                        0.0,  # due deque
                        rng.random() * 0.01,  # calendar ring
                        rng.random() * 5.0,  # far heap
                        round(rng.random(), 2),  # deliberate ties
                    )
                )
                ev = env.timeout(delay)
                when = env.now + delay
                created.append((when, tag))
                ev.callbacks.append(
                    lambda _e, when=when, tag=tag: fired.append((when, tag))
                )
                tag += 1
            yield env.timeout(rng.random() * 0.05)

    env.process(spawn(env))
    env.run()
    assert len(fired) == len(created)
    # Tags rise with engine sequence numbers, so a stable sort of the
    # creation log is exactly the order a correct queue must pop.
    assert fired == sorted(created)


def test_timer_rearm_churn_keeps_queue_bounded():
    """Re-arming a timer leaves its old entry behind (lazy
    cancellation); eager compaction must physically drop the garbage
    so unbounded re-arm churn cannot grow the queue without bound."""
    env = Environment()
    timer = env.timer(lambda t: None)

    def churn(env):
        deadline = 1000.0
        for _ in range(5000):
            deadline += 1.0
            timer.arm_at(deadline)  # strands an entry at the old slot
            yield env.timeout(0.001)

    proc = env.process(churn(env))
    env.run(until=proc)
    stats = env.sched_stats()
    assert stats["timer_compactions"] > 0
    assert stats["timer_entries_purged"] >= 4000
    # 5000 stale entries were created; compaction keeps live state to
    # the survivors plus at most one sub-threshold stale batch.
    assert stats["queue_depth"] < 200


def test_compaction_preserves_the_live_deadline():
    """Compacting away stale entries must keep the armed one firing."""
    env = Environment()
    fired = []
    timer = env.timer(lambda t: fired.append(env.now))

    survivor = []

    def churn(env):
        for i in range(200):
            timer.arm_at(1000.0 + i)
            yield env.timeout(0.001)
        survivor.append(env.now + 0.5)  # the deadline that must survive
        timer.arm_at(survivor[0])

    proc = env.process(churn(env))
    env.run(until=proc)
    assert env.sched_stats()["timer_compactions"] > 0
    env.run(until=5.0)
    assert fired == survivor
