"""Unit + property tests for protocol payloads and range coalescing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pvfs import protocol
from repro.pvfs.protocol import (
    FileHandle,
    FlushBatch,
    FlushEntry,
    InvalidateRequest,
    ReadRequest,
    WriteRequest,
    coalesce_ranges,
)


def test_file_handle():
    h = FileHandle(1, "/f", ("a", "b"), 65536)
    assert h.n_iods == 2


def test_read_request_sizes():
    r = ReadRequest(file_id=1, ranges=[(0, 100), (200, 50)])
    assert r.total_bytes == 150
    assert r.wire_size() == 2 * protocol.RANGE_DESC_BYTES
    empty = ReadRequest(file_id=1, ranges=[])
    assert empty.wire_size() == protocol.RANGE_DESC_BYTES


def test_write_request_sizes():
    w = WriteRequest(file_id=1, ranges=[(0, 100)], chunks=[None])
    assert w.total_bytes == 100
    assert w.wire_size() == protocol.RANGE_DESC_BYTES + 100


def test_flush_batch_sizes():
    b = FlushBatch(entries=[
        FlushEntry(file_id=1, offset=0, nbytes=100, data=None),
        FlushEntry(file_id=1, offset=500, nbytes=50, data=None),
    ])
    assert b.total_bytes == 150
    assert b.wire_size() == 2 * protocol.RANGE_DESC_BYTES + 150


def test_invalidate_request_size():
    r = InvalidateRequest(file_id=1, block_nos=[1, 2, 3])
    assert r.wire_size() == 3 * protocol.BLOCK_ID_BYTES


def test_coalesce_basic():
    assert coalesce_ranges([(0, 10), (10, 10)]) == [(0, 20)]
    assert coalesce_ranges([(10, 10), (0, 10)]) == [(0, 20)]
    assert coalesce_ranges([(0, 10), (20, 10)]) == [(0, 10), (20, 10)]
    assert coalesce_ranges([(0, 10), (5, 10)]) == [(0, 15)]
    assert coalesce_ranges([]) == []
    assert coalesce_ranges([(5, 0)]) == []  # zero-length dropped


ranges_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 60)), max_size=15
)


@settings(max_examples=200)
@given(ranges=ranges_strategy)
def test_property_coalesce_preserves_coverage(ranges):
    covered = set()
    for off, n in ranges:
        covered |= set(range(off, off + n))
    out = coalesce_ranges(ranges)
    got = set()
    for off, n in out:
        got |= set(range(off, off + n))
    assert got == covered
    # output is sorted, non-overlapping, non-adjacent, non-empty
    for (o1, n1), (o2, n2) in zip(out, out[1:]):
        assert o1 + n1 < o2
    for _, n in out:
        assert n > 0
