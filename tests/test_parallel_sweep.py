"""The parallel sweep runner: ordering, equivalence, failure paths."""

from __future__ import annotations

import pytest

from repro.experiments.parallel import (
    WORKERS_ENV_VAR,
    SweepPointError,
    resolve_workers,
    sweep,
)
from repro.experiments.sensitivity import run_cache_size_sweep


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "3")
    assert resolve_workers() == 3
    assert resolve_workers(max_workers=2) == 2  # argument beats env
    monkeypatch.delenv(WORKERS_ENV_VAR)
    assert resolve_workers() >= 1  # falls back to cpu count
    assert resolve_workers(max_workers=8, n_points=2) == 2  # clamped
    assert resolve_workers(max_workers=0) == 1  # floor of one


def test_resolve_workers_rejects_garbage(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
    with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
        resolve_workers()


def test_sweep_preserves_point_order():
    points = [(x,) for x in range(20)]
    assert sweep(points, _square, max_workers=1) == [x * x for x in range(20)]
    assert sweep(points, _square, max_workers=4) == [x * x for x in range(20)]


def test_sweep_empty():
    assert sweep([], _square) == []


@pytest.mark.parametrize("workers", [1, 4])
def test_sweep_point_failure_is_attributed(workers):
    points = [(1,), (2,), (3,), (4,)]
    with pytest.raises(SweepPointError) as excinfo:
        sweep(points, _fail_on_three, max_workers=workers)
    assert excinfo.value.index == 2
    assert excinfo.value.point == (3,)
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_parallel_sweep_matches_serial(monkeypatch):
    """An actual experiment driver yields bit-identical series with
    max_workers=1 vs max_workers=4 (isolated simulations per point)."""

    def run_with(workers):
        monkeypatch.setenv(WORKERS_ENV_VAR, str(workers))
        return run_cache_size_sweep(sizes_kb=(600,))

    serial = run_with(1)
    parallel = run_with(4)
    assert [s.label for s in serial.series] == [
        s.label for s in parallel.series
    ]
    for s_series, p_series in zip(serial.series, parallel.series):
        assert [(pt.x, pt.y) for pt in s_series.points] == [
            (pt.x, pt.y) for pt in p_series.points
        ]
    assert serial.notes == parallel.notes
