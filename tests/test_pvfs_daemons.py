"""Tests for the mgr and iod daemons and the raw libpvfs client."""

import pytest

from repro.pvfs import protocol
from tests.conftest import make_cluster, run_app


# -- mgr --------------------------------------------------------------------


def test_open_assigns_stable_ids():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f1 = yield from client.open("/a")
        f2 = yield from client.open("/b")
        f3 = yield from client.open("/a")
        assert f1.file_id != f2.file_id
        assert f3.file_id == f1.file_id
        assert f1.iod_nodes == tuple(cluster.iod_nodes)
        assert f1.stripe_size == cluster.config.stripe_size

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("mgr.opens") == 3
    assert cluster.metrics.count("mgr.creates") == 2
    assert cluster.mgr.lookup("/a") is not None
    assert cluster.mgr.lookup("/zzz") is None


def test_opens_from_multiple_nodes_share_namespace():
    cluster = make_cluster(caching=False)
    a = cluster.client("node0")
    b = cluster.client("node1")

    def app(env):
        fa = yield from a.open("/same")
        fb = yield from b.open("/same")
        assert fa.file_id == fb.file_id

    run_app(cluster, app(cluster.env))


# -- iod read/write paths ------------------------------------------------------


def test_raw_write_then_read_roundtrip():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")
    payload = bytes(range(256)) * 512  # 128 KB: spans both iods

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, len(payload), payload)
        back = yield from client.read(f, 0, len(payload), want_data=True)
        assert back == payload

    run_app(cluster, app(cluster.env))


def test_raw_unwritten_reads_zeros():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        data = yield from client.read(f, 0, 8192, want_data=True)
        assert data == b"\x00" * 8192

    run_app(cluster, app(cluster.env))


def test_raw_unaligned_rmw():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 8192, b"A" * 8192)
        yield from client.write(f, 1000, 100, b"B" * 100)
        data = yield from client.read(f, 0, 8192, want_data=True)
        assert data[:1000] == b"A" * 1000
        assert data[1000:1100] == b"B" * 100
        assert data[1100:] == b"A" * 7092

    run_app(cluster, app(cluster.env))


def test_iod_pagecache_hits_on_reread():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 65536)
        misses = m.count("iod.pagecache_misses")
        assert misses > 0
        yield from client.read(f, 0, 65536)
        assert m.count("iod.pagecache_misses") == misses  # all hits
        assert m.count("iod.pagecache_hits") > 0

    run_app(cluster, app(cluster.env))


def test_iod_reread_faster_than_cold():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        t0 = env.now
        yield from client.read(f, 0, 262144)
        cold = env.now - t0
        t0 = env.now
        yield from client.read(f, 0, 262144)
        warm = env.now - t0
        assert warm < cold  # no disk on the second pass

    run_app(cluster, app(cluster.env))


def test_iod_directory_tracks_cache_readers():
    cluster = make_cluster(caching=True)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 4096)
        iod = cluster.iods[0]
        assert iod.directory.get((f.file_id, 0)) == {"node0"}

    run_app(cluster, app(cluster.env))


def test_iod_directory_ignores_raw_readers():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 4096)
        assert cluster.iods[0].directory == {}

    run_app(cluster, app(cluster.env))


def test_striping_distributes_to_both_iods():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        # 128 KB = 2 stripes -> both iods serve one
        yield from client.read(f, 0, 131072)
        assert m.count("iod.reads") == 2

    run_app(cluster, app(cluster.env))


def test_raw_sync_write_roundtrip():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.sync_write(f, 0, 4096, b"s" * 4096)
        data = yield from client.read(f, 0, 4096, want_data=True)
        assert data == b"s" * 4096

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("iod.sync_writes") == 1


def test_client_data_length_validation():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 100, b"short")

    proc = cluster.env.process(app(cluster.env))
    with pytest.raises(ValueError, match="data length"):
        cluster.env.run(until=proc)


def test_iod_requires_disk_stack():
    from repro.cluster.config import ClusterConfig, CostModel
    from repro.cluster.node import Node
    from repro.metrics import Metrics
    from repro.net import Network
    from repro.pvfs.iod import Iod
    from repro.pvfs.striping import StripeLayout
    from repro.sim import Environment

    env = Environment()
    net = Network(env)
    node = Node(env, "x", net, CostModel(), with_disk=False)
    with pytest.raises(ValueError, match="disk stack"):
        Iod(node, StripeLayout(1, 65536), 0, Metrics())


def test_metrics_not_recorded_when_disabled():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")
    client.record_metrics = False

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 4096)
        yield from client.write(f, 0, 4096, None)
        yield from client.sync_write(f, 0, 4096, None)

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("client.reads") == 0
    assert cluster.metrics.count("client.writes") == 0
    assert cluster.metrics.count("client.sync_writes") == 0
