"""Unit tests for the network substrate: hub, network, sockets."""

import pytest

from repro.net import Hub, Message, Network, SocketAPI
from repro.sim import Environment


# -- Message -----------------------------------------------------------------


def test_message_wire_bytes_includes_header():
    msg = Message(kind="read", size_bytes=4096)
    assert msg.wire_bytes == 4096 + Message.HEADER_BYTES


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(kind="x", size_bytes=-1)


def test_message_ids_unique():
    a = Message(kind="x", size_bytes=0)
    b = Message(kind="x", size_bytes=0)
    assert a.msg_id != b.msg_id


def test_message_reply_correlates():
    req = Message(kind="read", size_bytes=10, src="n1", dst="n2")
    resp = req.reply("data", 4096, payload=b"abc")
    assert resp.reply_to == req.msg_id
    assert resp.src == "n2" and resp.dst == "n1"
    assert resp.payload == b"abc"


# -- Hub ---------------------------------------------------------------------


def test_hub_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Hub(env, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Hub(env, frame_bytes=0)


def test_hub_single_transfer_time():
    env = Environment()
    hub = Hub(env, bandwidth_bps=100e6, frame_bytes=65536, base_latency_s=100e-6)
    done = []

    def proc(env):
        yield from hub.transmit(65536)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    expected = 65536 * 8 / 100e6 + 100e-6
    assert done[0] == pytest.approx(expected)


def test_hub_concurrent_transfers_share_medium():
    """Two simultaneous 1 MB transfers each take ~2x the solo time."""
    env = Environment()
    hub = Hub(env, bandwidth_bps=100e6, frame_bytes=65536, base_latency_s=0)
    finish = {}

    def proc(env, tag):
        yield from hub.transmit(2**20)
        finish[tag] = env.now

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    solo = 2**20 * 8 / 100e6
    assert finish["a"] == pytest.approx(2 * solo, rel=0.05)
    assert finish["b"] == pytest.approx(2 * solo, rel=0.05)


def test_hub_small_transfer_not_starved_by_large():
    """Frame interleaving lets a 4 KB message finish long before a
    concurrent 1 MB message completes."""
    env = Environment()
    hub = Hub(env, bandwidth_bps=100e6, frame_bytes=65536, base_latency_s=0)
    finish = {}

    def proc(env, tag, size):
        yield from hub.transmit(size)
        finish[tag] = env.now

    env.process(proc(env, "big", 2**20))
    env.process(proc(env, "small", 4096))
    env.run()
    assert finish["small"] < finish["big"] / 4


def test_hub_zero_byte_message_still_costs():
    env = Environment()
    hub = Hub(env, base_latency_s=100e-6)
    done = []

    def proc(env):
        yield from hub.transmit(0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done[0] > 0


def test_hub_accounting():
    env = Environment()
    hub = Hub(env, frame_bytes=1000)

    def proc(env):
        yield from hub.transmit(2500)

    env.process(proc(env))
    env.run()
    assert hub.bytes_transferred == 2500
    assert hub.frames_transferred == 3


def test_hub_negative_size_rejected():
    env = Environment()
    hub = Hub(env)

    def proc(env):
        yield from hub.transmit(-5)

    p = env.process(proc(env))
    env.run()
    assert not p.ok and isinstance(p.value, ValueError)


# -- Network endpoints ---------------------------------------------------------


def test_network_register_and_send():
    env = Environment()
    net = Network(env)
    inbox = net.register("n2", 7000)
    got = []

    def sender(env):
        msg = Message(kind="ping", size_bytes=100, src="n1", dst="n2")
        yield net.send(msg, 7000)

    def receiver(env):
        msg = yield inbox.get()
        got.append((env.now, msg.kind))

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert got and got[0][1] == "ping"
    assert net.messages_delivered == 1


def test_network_send_to_unknown_endpoint_raises():
    env = Environment()
    net = Network(env)
    msg = Message(kind="x", size_bytes=0, src="a", dst="ghost")
    with pytest.raises(KeyError):
        net.send(msg, 1234)


def test_network_loopback_skips_fabric():
    env = Environment()
    net = Network(env)
    net.register("n1", 7000)

    def proc(env):
        msg = Message(kind="local", size_bytes=2**20, src="n1", dst="n1")
        yield net.send(msg, 7000)

    env.process(proc(env))
    env.run()
    assert net.fabric.bytes_transferred == 0
    # loopback is fast: just the local protocol cost
    assert env.now == pytest.approx(net.loopback_latency_s)


def test_network_register_idempotent():
    env = Environment()
    net = Network(env)
    a = net.register("n1", 1)
    b = net.register("n1", 1)
    assert a is b
    assert net.has_endpoint("n1", 1)
    assert not net.has_endpoint("n1", 2)


# -- Sockets -------------------------------------------------------------------


def _connected_pair(env, net, client="c", server="s"):
    """Helper: run the connect handshake, return (client_ep, server_ep)."""
    api_s = SocketAPI(net, server)
    api_c = SocketAPI(net, client)
    listener = api_s.listen(9000)
    result = {}

    def srv(env):
        ep = yield listener.accept()
        result["server"] = ep

    def cli(env):
        ep = yield env.process(api_c.connect(server, 9000))
        result["client"] = ep

    env.process(srv(env))
    env.process(cli(env))
    env.run()
    return result["client"], result["server"]


def test_socket_connect_and_roundtrip():
    env = Environment()
    net = Network(env)
    client, server = _connected_pair(env, net)
    log = []

    def cli(env):
        yield client.send(Message(kind="req", size_bytes=128))
        resp = yield client.recv()
        log.append(("client-got", resp.kind))

    def srv(env):
        req = yield server.recv()
        log.append(("server-got", req.kind))
        yield server.send(req.reply("resp", 4096))

    env.process(cli(env))
    env.process(srv(env))
    env.run()
    assert log == [("server-got", "req"), ("client-got", "resp")]


def test_socket_connect_refused():
    env = Environment()
    net = Network(env)
    api = SocketAPI(net, "c")

    def cli(env):
        yield env.process(api.connect("ghost", 1))

    p = env.process(cli(env))
    env.run()
    assert not p.ok and isinstance(p.value, ConnectionRefusedError)


def test_socket_fifo_ordering_same_direction():
    """Messages of very different sizes must still arrive in send order."""
    env = Environment()
    net = Network(env)
    client, server = _connected_pair(env, net)
    got = []

    def cli(env):
        # Fire-and-forget: big one first, small one second.
        client.send(Message(kind="big", size_bytes=2**20))
        client.send(Message(kind="small", size_bytes=16))
        yield env.timeout(0)

    def srv(env):
        for _ in range(2):
            msg = yield server.recv()
            got.append(msg.kind)

    env.process(cli(env))
    env.process(srv(env))
    env.run()
    assert got == ["big", "small"]


def test_socket_same_node_connection():
    """An app can talk to a daemon on its own node (role-keyed inboxes)."""
    env = Environment()
    net = Network(env)
    client, server = _connected_pair(env, net, client="n1", server="n1")
    log = []

    def cli(env):
        yield client.send(Message(kind="q", size_bytes=10))
        resp = yield client.recv()
        log.append(resp.kind)

    def srv(env):
        msg = yield server.recv()
        yield server.send(msg.reply("a", 10))

    env.process(cli(env))
    env.process(srv(env))
    env.run()
    assert log == ["a"]
    assert net.fabric.bytes_transferred == 0  # loopback


def test_socket_send_on_closed_raises():
    env = Environment()
    net = Network(env)
    client, server = _connected_pair(env, net)
    client.conn.close()
    with pytest.raises(RuntimeError, match="closed"):
        client.send(Message(kind="x", size_bytes=1))


def test_socket_listen_twice_rejected():
    env = Environment()
    net = Network(env)
    api = SocketAPI(net, "s")
    api.listen(1)
    with pytest.raises(ValueError):
        api.listen(1)


def test_endpoint_pending_probe():
    env = Environment()
    net = Network(env)
    client, server = _connected_pair(env, net)

    def cli(env):
        yield client.send(Message(kind="a", size_bytes=1))
        yield client.send(Message(kind="b", size_bytes=1))

    env.process(cli(env))
    env.run()
    assert server.pending() == 2
    assert client.pending() == 0


def test_endpoint_node_names():
    env = Environment()
    net = Network(env)
    client, server = _connected_pair(env, net, client="apple", server="pear")
    assert client.node == "apple" and client.peer_node == "pear"
    assert server.node == "pear" and server.peer_node == "apple"
