"""Unit tests for Resource / Lock / Store primitives."""

import pytest

from repro.sim import Environment, Lock, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def proc(env, tag):
        req = res.request()
        yield req
        grants.append((env.now, tag))
        yield env.timeout(10)
        res.release(req)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    # a and b at t=0, c only after one releases at t=10
    assert grants == [(0.0, "a"), (0.0, "b"), (10.0, "c")]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def proc(env, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in range(6):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_request_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)
        # released here

    env.process(proc(env))
    env.run()
    assert res.count == 0
    assert res.queue_length == 0


def test_release_unqueued_request_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # idempotent

    env.process(proc(env))
    env.run()
    assert res.count == 0


def test_cancel_waiting_request_dequeues():
    env = Environment()
    res = Resource(env, capacity=1)
    got_second = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5)
        res.release(req)

    def canceller(env):
        yield env.timeout(1)
        req = res.request()  # queued behind holder
        req.cancel()
        got_second.append("cancelled")

    def third(env):
        yield env.timeout(2)
        req = res.request()
        yield req
        got_second.append(("granted", env.now))
        res.release(req)

    env.process(holder(env))
    env.process(canceller(env))
    env.process(third(env))
    env.run()
    assert got_second == ["cancelled", ("granted", 5.0)]


def test_lock_mutual_exclusion():
    env = Environment()
    lock = Lock(env)
    inside = []
    max_inside = []

    def proc(env, tag):
        with lock.request() as req:
            yield req
            inside.append(tag)
            max_inside.append(len(inside))
            yield env.timeout(1)
            inside.remove(tag)

    for tag in range(4):
        env.process(proc(env, tag))
    env.run()
    assert max(max_inside) == 1
    assert lock.locked is False


def test_store_fifo_roundtrip():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(4)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(4.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")  # blocks until consumer takes "a"
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put-a", 0.0), ("got", "a", 5.0), ("put-b", 5.0)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_and_items_snapshot():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put(1)
        yield store.put(2)

    env.process(producer(env))
    env.run()
    assert len(store) == 2
    assert store.items == (1, 2)


def test_store_many_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1)
        for i in range(3):
            yield store.put(i)

    for tag in ("g0", "g1", "g2"):
        env.process(consumer(env, tag))
    env.process(producer(env))
    env.run()
    assert got == [("g0", 0), ("g1", 1), ("g2", 2)]


# ---------------------------------------------------------------------------
# Resource.acquire_now (macro-event fast path, DESIGN.md §14)
# ---------------------------------------------------------------------------


def test_acquire_now_grants_idle_capacity_without_events():
    env = Environment()
    res = Resource(env, capacity=1)
    depth_before = env.sched_stats()["queue_depth"]
    grant = res.acquire_now()
    assert grant is not None
    # Synchronous grant: nothing was scheduled.
    assert env.sched_stats()["queue_depth"] == depth_before
    assert res.acquire_now() is None  # at capacity
    res.release(grant)
    again = res.acquire_now()
    assert again is not None
    res.release(again)


def test_acquire_now_refuses_while_requests_wait():
    """FIFO fairness: a synchronous grant must never jump the queue."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        order.append(("released", env.now))

    def waiter(env):
        req = res.request()
        yield req
        order.append(("waiter", env.now))
        res.release(req)

    env.process(holder(env))
    env.process(waiter(env))

    def prober(env):
        yield env.timeout(0.5)
        order.append(("probe-held", res.acquire_now() is None))
        yield env.timeout(1.0)  # after release: the waiter must win
        order.append(("probe-after", res.acquire_now() is not None))

    env.process(prober(env))
    env.run()
    assert ("probe-held", True) in order
    assert ("waiter", 1.0) in order
    assert ("probe-after", True) in order


def test_acquire_now_respects_multi_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    first = res.acquire_now()
    second = res.acquire_now()
    assert first is not None and second is not None
    assert res.acquire_now() is None
    res.release(first)
    assert res.acquire_now() is not None
