"""Tests for the writeback daemon and the RPC channel."""

import pytest

from repro.disk import DiskModel
from repro.disk.writeback import WritebackDaemon, WritebackItem
from repro.net import Message, Network, SocketAPI
from repro.net.rpc import RpcChannel
from repro.sim import Environment


# -- WritebackDaemon -----------------------------------------------------------


def test_writeback_validation():
    env = Environment()
    disk = DiskModel(env)
    with pytest.raises(ValueError):
        WritebackDaemon(env, disk, max_dirty_bytes=0)


def test_writeback_submit_returns_before_disk():
    env = Environment()
    disk = DiskModel(env)
    wb = WritebackDaemon(env, disk)
    wb.start()
    submit_time = {}

    def proc(env):
        yield from wb.submit(WritebackItem(1, 0, 65536))
        submit_time["t"] = env.now

    env.process(proc(env))
    env.run()
    # submit returned immediately (enqueue only)...
    assert submit_time["t"] == 0.0
    # ...but the disk eventually wrote the bytes
    assert wb.bytes_written == 65536
    assert disk.writes == 1
    assert wb.idle()


def test_writeback_negative_size_rejected():
    env = Environment()
    wb = WritebackDaemon(env, DiskModel(env))
    wb.start()

    def proc(env):
        yield from wb.submit(WritebackItem(1, 0, -1))

    p = env.process(proc(env))
    env.run()
    assert not p.ok


def test_writeback_throttles_when_dirty_cap_exceeded():
    env = Environment()
    disk = DiskModel(env, transfer_bytes_per_s=1e6)  # slow disk
    wb = WritebackDaemon(env, disk, max_dirty_bytes=100_000)
    wb.start()
    times = []

    def proc(env):
        for _ in range(4):
            yield from wb.submit(WritebackItem(1, 0, 60_000))
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert wb.throttle_waits > 0
    assert times[0] == 0.0
    assert times[-1] > 0.0  # later submits waited for drain


def test_writeback_fifo_order():
    env = Environment()
    disk = DiskModel(env)
    wb = WritebackDaemon(env, disk)
    wb.start()

    def proc(env):
        yield from wb.submit(WritebackItem(1, 0, 4096))
        yield from wb.submit(WritebackItem(1, 4096, 4096))

    env.process(proc(env))
    env.run()
    # sequential items -> only the first seeks
    assert disk.seeks == 1
    assert wb.items_written == 2


# -- WritebackDaemon drain/stop semantics --------------------------------------


def _loaded_daemon(n_items=3, nbytes=60_000):
    """A daemon with ``n_items`` submitted against a slow disk."""
    env = Environment()
    disk = DiskModel(env, transfer_bytes_per_s=1e6)
    wb = WritebackDaemon(env, disk)
    wb.start()

    def submit(env):
        for i in range(n_items):
            yield from wb.submit(WritebackItem(1, i * nbytes, nbytes))

    env.process(submit(env))
    return env, disk, wb


def test_writeback_backlog_accounting():
    env, _disk, wb = _loaded_daemon(n_items=3, nbytes=60_000)
    assert wb.idle()  # nothing submitted yet at t=0
    env.run(until=0.001)
    # One item is in service (pulled off the mailbox), two queued; all
    # three are still counted dirty until their writes land.
    assert wb.backlog == 2
    assert wb.dirty_bytes == 180_000
    assert not wb.idle()
    env.run()
    assert wb.backlog == 0 and wb.dirty_bytes == 0
    assert wb.idle()
    assert wb.items_written == 3 and wb.bytes_written == 180_000


def test_writeback_stop_reports_dropped_backlog():
    env, disk, wb = _loaded_daemon(n_items=3, nbytes=60_000)
    env.run(until=0.001)  # first write still in flight
    report = wb.stop()
    assert report.dropped == {"queued_items": 2, "dirty_bytes": 180_000}
    assert report.total_dropped == 2 + 180_000
    assert wb.svc_stats.dropped == report.dropped
    # The killed pump never finished even the in-flight write.
    assert wb.items_written == 0
    assert disk.writes == 0


def test_writeback_stop_after_drain_drops_nothing():
    env, disk, wb = _loaded_daemon(n_items=3, nbytes=60_000)
    drained = env.process(wb.drain())
    env.run(until=drained)
    assert wb.idle()
    assert wb.items_written == 3 and disk.writes == 3
    report = wb.stop()
    assert report.dropped == {}
    assert report.total_dropped == 0


def test_writeback_drain_blocks_until_queue_and_dirty_empty():
    env, _disk, wb = _loaded_daemon(n_items=2, nbytes=60_000)
    seen = {}

    def drainer(env):
        yield from wb._drain()
        seen["t"] = env.now
        seen["idle"] = wb.idle()

    env.process(drainer(env))
    env.run()
    # Two 60 KB writes at 1 MB/s dominate: drain cannot return before
    # the second write lands (~0.12 s of media time plus a seek).
    assert seen["idle"] is True
    assert seen["t"] >= 0.12


def test_writeback_stop_is_idempotent_after_stop():
    env, _disk, wb = _loaded_daemon(n_items=1, nbytes=60_000)
    env.run()
    first = wb.stop()
    second = wb.stop()
    assert first.dropped == {} and second.dropped == {}


# -- RpcChannel ---------------------------------------------------------------


def _pair(env, net):
    api_s = SocketAPI(net, "s")
    api_c = SocketAPI(net, "c")
    listener = api_s.listen(1)
    out = {}

    def srv(env):
        out["server"] = yield listener.accept()

    def cli(env):
        out["client"] = yield env.process(api_c.connect("s", 1))

    env.process(srv(env))
    env.process(cli(env))
    env.run()
    return out["client"], out["server"]


def test_rpc_correlates_out_of_order_responses():
    env = Environment()
    net = Network(env)
    client, server = _pair(env, net)
    channel = RpcChannel(client)
    got = {}

    def cli(env):
        c1 = channel.call(Message(kind="q1", size_bytes=10))
        c2 = channel.call(Message(kind="q2", size_bytes=10))
        r2 = yield c2.response()
        r1 = yield c1.response()
        got["r1"], got["r2"] = r1.kind, r2.kind
        c1.close()
        c2.close()

    def srv(env):
        m1 = yield server.recv()
        m2 = yield server.recv()
        # answer in REVERSE order
        yield server.send(m2.reply("a2", 10))
        yield server.send(m1.reply("a1", 10))

    env.process(cli(env))
    env.process(srv(env))
    env.run()
    assert got == {"r1": "a1", "r2": "a2"}
    assert channel.outstanding == 0


def test_rpc_multiple_responses_per_call():
    env = Environment()
    net = Network(env)
    client, server = _pair(env, net)
    channel = RpcChannel(client)
    kinds = []

    def cli(env):
        call = channel.call(Message(kind="read", size_bytes=10))
        for _ in range(2):
            resp = yield call.response()
            kinds.append(resp.kind)
        call.close()

    def srv(env):
        req = yield server.recv()
        yield server.send(req.reply("ack", 8))
        yield server.send(req.reply("data", 4096))

    env.process(cli(env))
    env.process(srv(env))
    env.run()
    assert kinds == ["ack", "data"]


def test_rpc_orphan_responses_counted():
    env = Environment()
    net = Network(env)
    client, server = _pair(env, net)
    channel = RpcChannel(client)

    def srv(env):
        # unsolicited response correlated to nothing
        yield server.send(
            Message(kind="spam", size_bytes=1, reply_to=999999)
        )
        yield server.send(Message(kind="spam2", size_bytes=1))

    env.process(srv(env))
    env.run()
    assert channel.orphans == 2
