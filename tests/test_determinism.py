"""Determinism regression: same-seed runs are bit-identical.

The schedule trace hash folds every processed event (sequence number,
timestamp, event identity) into a BLAKE2b digest, so two runs agree on
the hash iff they executed the same schedule.  This must hold in one
process, across repeated runs, and through the parallel sweep's worker
processes — otherwise parallel figure sweeps would not be trustworthy
reproductions of serial ones.
"""

from repro.analysis.determinism import fig4_point_trace_hash, traced_run
from repro.experiments import parallel
from repro.sim import Environment


def test_engine_trace_hash_is_deterministic():
    def run(env):
        def ticker(env):
            for _ in range(10):
                yield env.timeout(0.5)

        proc = env.process(ticker(env), name="ticker")
        return env.run(until=proc)

    _, first = traced_run(run, Environment())
    _, second = traced_run(run, Environment())
    assert first == second


def test_quick_fig4_point_same_seed_same_hash():
    assert fig4_point_trace_hash(seed=4242) == fig4_point_trace_hash(
        seed=4242
    )


def test_different_seed_changes_the_schedule():
    assert fig4_point_trace_hash(seed=1) != fig4_point_trace_hash(seed=2)


def test_parallel_sweep_reproduces_serial_schedule(monkeypatch):
    serial = fig4_point_trace_hash(seed=4242)
    # force a real process pool: workers must not just be the serial
    # in-process fallback
    monkeypatch.delenv(parallel.WORKERS_ENV_VAR, raising=False)
    point = (4096, "read", 2, 8, 4242)
    hashes = parallel.sweep(
        [point, point], fig4_point_trace_hash, max_workers=2
    )
    assert hashes == [serial, serial]
