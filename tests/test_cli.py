"""Tests for the micro-benchmark command-line interface."""

import pytest

from repro.workload.__main__ import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.d == 65536
    assert args.p == 4
    assert args.mode == "read"
    assert not args.no_caching


def test_parser_aliases():
    args = build_parser().parse_args(
        ["--request-size", "4096", "--locality", "0.5", "--sharing", "0.25"]
    )
    assert args.d == 4096
    assert args.l == 0.5
    assert args.s == 0.25


def test_cli_read_run(capsys):
    rc = main(["--d", "16384", "--p", "2", "--iterations", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "caching version" in out
    assert "mean time per read" in out
    assert "cache hits/misses" in out


def test_cli_no_caching_run(capsys):
    rc = main(
        ["--d", "16384", "--p", "2", "--iterations", "4", "--no-caching"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "no caching version" in out
    assert "cache hits/misses" not in out


def test_cli_write_mode(capsys):
    rc = main(["--d", "8192", "--p", "1", "--iterations", "4",
               "--mode", "write"])
    assert rc == 0
    assert "mean time per write" in capsys.readouterr().out


def test_cli_sync_write_mode(capsys):
    rc = main(["--d", "8192", "--p", "1", "--iterations", "2",
               "--mode", "sync-write"])
    assert rc == 0
    assert "sync-write" in capsys.readouterr().out


def test_cli_two_instances(capsys):
    rc = main(["--d", "16384", "--p", "2", "--iterations", "4",
               "--instances", "2", "--s", "0.5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "instance 0 makespan" in out
    assert "instance 1 makespan" in out


def test_cli_extensions(capsys):
    rc = main(["--d", "16384", "--p", "2", "--iterations", "4",
               "--global-cache", "--readahead"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "peer-cache hits" in out
    assert "blocks prefetched" in out


def test_cli_hub_fabric(capsys):
    rc = main(["--d", "16384", "--p", "2", "--iterations", "2",
               "--fabric", "hub"])
    assert rc == 0


def test_cli_rejects_bad_counts(capsys):
    assert main(["--p", "0"]) == 2
    assert main(["--instances", "0"]) == 2


def test_cli_invalid_mode_exits():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--mode", "append"])


def test_cli_config_file(tmp_path, capsys):
    cfg = tmp_path / "cluster.json"
    cfg.write_text('{"compute_nodes": 2, "iod_nodes": 2, "caching": false}')
    rc = main(["--config", str(cfg), "--d", "8192", "--iterations", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "no caching version" in out
