"""End-to-end tests for the record/replay/transform/validate CLI."""

import pytest

from repro.workload.__main__ import SUBCOMMANDS, main
from repro.workload.trace import load_path

RECORD_ARGS = ["--d", "4096", "--p", "2", "--iterations", "4"]


def _record(tmp_path, name="run.jsonl", extra=()):
    out = tmp_path / name
    rc = main(["record", "--out", str(out), *RECORD_ARGS, *extra])
    assert rc == 0
    return out


def test_record_writes_a_loadable_trace(tmp_path, capsys):
    out = _record(tmp_path)
    trace = load_path(str(out))
    assert len(trace) == 2 * 4
    assert trace.meta["source"] == "microbench"
    assert "content hash" in capsys.readouterr().err


def test_validate_then_replay_round_trip(tmp_path, capsys):
    out = _record(tmp_path)
    assert main(["validate", "--trace", str(out)]) == 0
    captured = capsys.readouterr()
    assert "8 events" in captured.out
    assert "read=8" in captured.out

    assert main(["replay", "--trace", str(out), "--p", "2"]) == 0
    replay_out = capsys.readouterr().out
    assert "replayed 8 events" in replay_out
    assert "makespan" in replay_out


def test_replay_hash_is_deterministic(tmp_path, capsys):
    out = _record(tmp_path)

    def hash_line():
        assert main(["replay", "--trace", str(out), "--p", "2",
                     "--hash"]) == 0
        lines = capsys.readouterr().out.splitlines()
        return next(ln for ln in lines if "schedule trace hash" in ln)

    assert hash_line() == hash_line()


def test_transform_pipeline_then_replay(tmp_path, capsys):
    out = _record(tmp_path)
    big = tmp_path / "big.jsonl"
    rc = main([
        "transform", "--trace", str(out), "--out", str(big),
        "--scale-out", "2", "--remix-sharing", "0.5", "--seed", "5",
    ])
    assert rc == 0
    assert "passes" in capsys.readouterr().err
    trace = load_path(str(big))
    assert len(trace) == 16
    assert trace.meta["transforms"] == [
        "scale_out(2)", "remix_sharing(0.5, seed=5)"
    ]
    assert main(["replay", "--trace", str(big), "--p", "4"]) == 0
    assert "replayed 16 events" in capsys.readouterr().out


def test_transform_requires_a_pass_and_valid_remap(tmp_path, capsys):
    out = _record(tmp_path)
    assert main(["transform", "--trace", str(out)]) == 2
    assert "no transform" in capsys.readouterr().err
    assert main(["transform", "--trace", str(out), "--remap", "bogus"]) == 2
    assert "OLD=NEW" in capsys.readouterr().err


def test_validate_rejects_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"format": "repro-trace", "version": 99, "events": 0}\n')
    assert main(["validate", "--trace", str(bad)]) == 1
    assert "invalid trace" in capsys.readouterr().err


@pytest.mark.parametrize("sub", SUBCOMMANDS)
def test_every_subcommand_has_help(sub, capsys):
    with pytest.raises(SystemExit) as exc:
        main([sub, "--help"])
    assert exc.value.code == 0
    assert "--trace" in capsys.readouterr().out or sub == "record"


def test_legacy_invocation_unchanged(capsys):
    assert main(["--p", "0"]) == 2
    capsys.readouterr()
    assert main(["--d", "4096", "--p", "2", "--iterations", "2"]) == 0
    assert "micro-benchmark (caching version)" in capsys.readouterr().out
