"""Integration tests for the CacheModule inside a real cluster."""

import pytest

from repro.cache.block import BlockState
from tests.conftest import make_cluster, run_app


def test_read_miss_then_hit_counters():
    cluster = make_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 16384)
        assert m.count("cache.misses") == 4
        assert m.count("cache.hits") == 0
        yield from client.read(f, 0, 16384)
        assert m.count("cache.hits") == 4

    run_app(cluster, app(cluster.env))


def test_second_read_is_much_faster():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        t0 = env.now
        yield from client.read(f, 0, 65536)
        cold = env.now - t0
        t0 = env.now
        yield from client.read(f, 0, 65536)
        warm = env.now - t0
        assert warm < cold / 3

    run_app(cluster, app(cluster.env))


def test_inter_process_hit_on_same_node():
    """Process B hits on blocks process A fetched — the paper's core
    inter-application mechanism."""
    cluster = make_cluster()
    a = cluster.client("node0")
    b = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        fa = yield from a.open("/shared")
        fb = yield from b.open("/shared")
        yield from a.read(fa, 0, 32768)
        misses_after_a = m.count("cache.misses")
        yield from b.read(fb, 0, 32768)
        assert m.count("cache.misses") == misses_after_a  # all hits
        assert m.count("cache.hits") == 8

    run_app(cluster, app(cluster.env))


def test_concurrent_same_block_fetch_deduplicated():
    """Two processes missing the same block issue ONE iod fetch."""
    cluster = make_cluster()
    a = cluster.client("node0")
    b = cluster.client("node0")
    m = cluster.metrics
    done = []

    def reader(env, client, tag):
        f = yield from client.open("/shared")
        yield from client.read(f, 0, 8192)
        done.append(tag)

    env = cluster.env
    procs = [
        env.process(reader(env, a, "a")),
        env.process(reader(env, b, "b")),
    ]
    env.run(until=env.all_of(procs))
    assert sorted(done) == ["a", "b"]
    assert m.count("cache.allocations") == 2  # 2 blocks, not 4
    assert m.count("cache.pending_waits") >= 1


def test_request_splitting_on_cached_middle_block():
    """A cached block in the middle of a run splits the miss request."""
    cluster = make_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        # Cache only the middle block of a 3-block run.
        yield from client.read(f, 4096, 4096)
        splits_before = m.count("cache.split_requests")
        yield from client.read(f, 0, 12288)
        assert m.count("cache.split_requests") == splits_before + 1

    run_app(cluster, app(cluster.env))


def test_no_split_ablation_fetches_hull():
    cluster = make_cluster()
    for module in cluster.cache_modules.values():
        module.config.split_on_cached_block = False
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 4096, 4096)
        fetched_before = m.count("cache.fetched_bytes")
        yield from client.read(f, 0, 12288)
        # hull mode: requested ranges cover all 3 blocks' bytes even
        # though the middle one was cached
        assert m.count("cache.split_requests") == 0

    run_app(cluster, app(cluster.env))


def test_write_is_buffered_not_propagated():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 8192, b"w" * 8192)
        module = cluster.cache_modules["node0"]
        assert module.manager.n_dirty == 2
        # nothing has reached the iods yet
        assert cluster.metrics.count("iod.flush_batches") == 0

    run_app(cluster, app(cluster.env))


def test_flusher_cleans_dirty_blocks():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 8192, b"w" * 8192)
        module = cluster.cache_modules["node0"]
        # wait past a flush period
        yield env.timeout(module.config.flush_period_s * 3)
        assert module.manager.n_dirty == 0
        assert cluster.metrics.count("flusher.blocks_cleaned") == 2

    run_app(cluster, app(cluster.env))


def test_write_read_roundtrip_through_cache():
    cluster = make_cluster()
    client = cluster.client("node0")
    payload = bytes(range(256)) * 32  # 8192 bytes

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 100, 8192, payload)
        data = yield from client.read(f, 100, 8192, want_data=True)
        assert data == payload

    run_app(cluster, app(cluster.env))


def test_partial_block_write_then_full_read():
    """Sub-block write followed by a larger read: the gap-fetch path
    merges iod data with locally dirty bytes."""
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        raw = cluster.client("node0", use_cache=False)
        base = bytes([7]) * 8192
        yield from raw.write(f, 0, 8192, base)  # iod holds 0x07
        yield from client.write(f, 1000, 500, b"\xAA" * 500)
        data = yield from client.read(f, 0, 8192, want_data=True)
        assert data[:1000] == base[:1000]
        assert data[1000:1500] == b"\xAA" * 500
        assert data[1500:] == base[1500:]

    run_app(cluster, app(cluster.env))


def test_sync_write_propagates_and_cleans():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.sync_write(f, 0, 4096, b"s" * 4096)
        module = cluster.cache_modules["node0"]
        assert module.manager.n_dirty == 0  # written through
        assert cluster.metrics.count("iod.sync_writes") >= 1
        # data visible to a raw (uncached) reader immediately
        raw = cluster.client("node1", use_cache=False)
        data = yield from raw.read(f, 0, 4096, want_data=True)
        assert data == b"s" * 4096

    run_app(cluster, app(cluster.env))


def test_sync_write_invalidates_remote_cache():
    cluster = make_cluster()
    a = cluster.client("node0")
    b = cluster.client("node1")

    def app(env):
        f = yield from a.open("/f")
        yield from a.sync_write(f, 0, 4096, b"1" * 4096)
        d1 = yield from b.read(f, 0, 4096, want_data=True)  # node1 caches
        assert d1 == b"1" * 4096
        yield from a.sync_write(f, 0, 4096, b"2" * 4096)
        assert cluster.metrics.count("cache.invalidations_received") >= 1
        d2 = yield from b.read(f, 0, 4096, want_data=True)
        assert d2 == b"2" * 4096

    run_app(cluster, app(cluster.env))


def test_default_write_is_not_coherent():
    """The paper's default path: a remote cache holding an old copy
    keeps returning it after a plain write elsewhere."""
    cluster = make_cluster()
    a = cluster.client("node0")
    b = cluster.client("node1")

    def app(env):
        f = yield from a.open("/f")
        yield from a.sync_write(f, 0, 4096, b"1" * 4096)
        d1 = yield from b.read(f, 0, 4096, want_data=True)
        assert d1 == b"1" * 4096
        yield from a.write(f, 0, 4096, b"2" * 4096)  # non-coherent
        yield env.timeout(1.0)  # even after flushing
        d2 = yield from b.read(f, 0, 4096, want_data=True)
        assert d2 == b"1" * 4096  # stale by design

    run_app(cluster, app(cluster.env))


def test_eviction_under_capacity_pressure():
    cluster = make_cluster(cache_blocks=16)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        # touch 4x the cache size
        for i in range(16):
            yield from client.read(f, i * 16384, 16384)
        module = cluster.cache_modules["node0"]
        assert module.manager.n_resident <= 16
        assert cluster.metrics.count("cache.evictions") > 0

    run_app(cluster, app(cluster.env))


def test_write_blocks_when_cache_full_then_completes():
    """The paper: large writes block for cache space but progress as
    the flusher drains."""
    cluster = make_cluster(cache_blocks=8)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 32 * 4096, None)  # 4x cache
        return env.now

    t = run_app(cluster, app(cluster.env))
    assert t > 0
    assert cluster.metrics.count("cache.write_requests") == 1


def test_zero_byte_operations():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        data = yield from client.read(f, 0, 0, want_data=True)
        assert data == b""
        yield from client.write(f, 0, 0, b"")
        yield from client.sync_write(f, 0, 0, b"")

    run_app(cluster, app(cluster.env))


def test_segmentation_of_large_requests():
    cluster = make_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        seg = cluster.cache_modules["node0"].config.effective_segment_blocks
        nbytes = (seg * 3) * 4096
        yield from client.read(f, 0, nbytes)
        assert m.count("cache.read_segments") == 3

    run_app(cluster, app(cluster.env))


def test_fully_hit_segment_counter():
    cluster = make_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 4096)
        yield from client.read(f, 0, 4096)
        assert m.count("cache.fully_hit_segments") == 1

    run_app(cluster, app(cluster.env))


def test_faked_acks_recorded():
    cluster = make_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/f")
        yield from client.read(f, 0, 65536 * 2)  # spans both iods
        assert m.count("cache.faked_acks") >= 2

    run_app(cluster, app(cluster.env))


def test_large_unaligned_read_across_pipelined_segments():
    """A multi-segment, unaligned read must assemble bytes correctly
    through the depth-2 segment pipeline."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=2)
    client = cluster.client("node0")
    raw = cluster.client("node0", use_cache=False)
    seg_bytes = (
        cluster.cache_modules["node0"].config.effective_segment_blocks * 4096
    )
    span = 3 * seg_bytes + 5000  # several segments, ragged edges
    payload = bytes(range(256)) * ((1234 + span) // 256 + 1)

    def app(env):
        f = yield from client.open("/big")
        yield from raw.write(f, 0, len(payload), payload)
        got = yield from client.read(f, 1234, span, want_data=True)
        assert got == payload[1234 : 1234 + span]
        # and again, fully from cache
        got2 = yield from client.read(f, 1234, span, want_data=True)
        assert got2 == payload[1234 : 1234 + span]

    run_app(cluster, app(cluster.env))


def test_mixed_sync_and_buffered_writes_single_node():
    """sync_write then buffered overwrite then read: latest data wins
    locally regardless of path."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/mix")
        yield from client.sync_write(f, 0, 8192, b"A" * 8192)
        yield from client.write(f, 2000, 3000, b"B" * 3000)
        got = yield from client.read(f, 0, 8192, want_data=True)
        assert got[:2000] == b"A" * 2000
        assert got[2000:5000] == b"B" * 3000
        assert got[5000:] == b"A" * 3192
        # after draining, the iod agrees
        yield from cluster.drain_caches()
        raw = cluster.client("node0", use_cache=False)
        back = yield from raw.read(f, 0, 8192, want_data=True)
        assert back == got

    run_app(cluster, app(cluster.env))


def test_module_stats_snapshot():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/s")
        yield from client.write(f, 0, 8192, None)
        stats = cluster.cache_modules["node0"].stats()
        assert stats["dirty"] == 2
        assert stats["resident"] == 2
        assert stats["free"] == stats["n_blocks"] - 2
        assert stats["states"]["dirty"] == 2
        assert stats["gcache"] is False

    run_app(cluster, app(cluster.env))


def test_module_start_idempotent():
    cluster = make_cluster()
    module = cluster.cache_modules["node0"]
    module.start()  # second start must not double-listen
    module.start()
